"""Fault injection for the CBMA stack.

Deployed backscatter networks fail in ways the paper's bench never
sees: tags brown out mid-frame, RC clocks drift off the chip grid,
jammers stomp the band, front ends clip, ACKs vanish, impedance
switches wedge.  This package makes every one of those an injectable,
*deterministic* experiment:

- :mod:`repro.faults.models` -- the fault catalog (what can go wrong);
- :mod:`repro.faults.plan` -- :class:`FaultPlan`, the seed-driven
  schedule that resolves faults round by round, bit-reproducibly.

A plan threads through :class:`~repro.sim.network.CbmaNetwork` /
:class:`~repro.system.CbmaSystem` (``faults=``) and is honored by the
collision synthesizer, the unslotted driver, the ARQ layer and the tag
model.  Losses it causes are attributed as ``fault.*`` entries in the
:class:`~repro.obs.profile.RunProfile` error budget.  See
``docs/resilience.md`` for the catalog and the degradation contract.
"""

from repro.faults.models import (
    FAULT_REASONS,
    AckLoss,
    AdcSaturation,
    BurstInterferer,
    OscillatorDrift,
    StuckImpedance,
    TagBrownout,
    TagDropout,
)
from repro.faults.plan import FaultPlan, RoundFaults, TagTxFault

__all__ = [
    "FaultPlan",
    "RoundFaults",
    "TagTxFault",
    "TagDropout",
    "TagBrownout",
    "OscillatorDrift",
    "BurstInterferer",
    "AdcSaturation",
    "AckLoss",
    "StuckImpedance",
    "FAULT_REASONS",
]
