"""The fault model catalog.

Each model is a small frozen dataclass describing one *class* of
deployment failure, over a window of rounds and (where applicable) a
subset of tags.  The models are pure data: all randomness is drawn by
:class:`~repro.faults.plan.FaultPlan` from seeds derived per
``(plan seed, fault index, round index)``, so a plan resolves
bit-identically regardless of how, or how often, it is queried.

Windows are half-open round intervals ``[start_round, end_round)``;
``end_round=None`` means "until the end of the run".  ``tags=None``
means "every tag in the group".  Each model carries a ``reason`` slug;
frames lost to the fault surface in the observability error budget as
``fault.<reason>`` (see :mod:`repro.obs.profile`).

The catalog covers the failure classes a deployed backscatter network
actually meets:

================== ==================================================
:class:`TagDropout`       tag browns out and stays silent for a round
:class:`TagBrownout`      tag loses power *mid-frame* (truncated burst)
:class:`OscillatorDrift`  clock error beyond the chip-offset budget
:class:`BurstInterferer`  time-windowed jammer added at the channel
:class:`AdcSaturation`    receiver front-end clipping (ADC rails)
:class:`AckLoss`          downlink ACK never reaches the tag
:class:`StuckImpedance`   power-control commands are ignored
================== ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs.taxonomy import FAULT_KINDS
from repro.utils.db import dbm_to_watts

__all__ = [
    "TagDropout",
    "TagBrownout",
    "OscillatorDrift",
    "BurstInterferer",
    "AdcSaturation",
    "AckLoss",
    "StuckImpedance",
    "FAULT_REASONS",
]

#: Every loss-attribution slug a fault model can emit, in the priority
#: order used when several faults hit the same frame.  Derived from the
#: taxonomy's declared fault kinds (:data:`repro.obs.taxonomy.FAULT_KINDS`)
#: so the slugs and the ``errors.fault.<kind>`` counter family cannot
#: drift apart; ``ack_loss`` is excluded because a lost ACK never loses
#: the *data* frame (it surfaces as ``faults.ack_lost`` instead).
FAULT_REASONS = tuple(
    f"fault.{kind}" for kind in FAULT_KINDS if kind != "ack_loss"
)


def _check_window(start_round: int, end_round: Optional[int]) -> None:
    if start_round < 0:
        raise ValueError(f"start_round must be >= 0, got {start_round}")
    if end_round is not None and end_round <= start_round:
        raise ValueError(f"empty fault window [{start_round}, {end_round})")


def _check_probability(p: float, name: str = "probability") -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")


@dataclass(frozen=True)
class _WindowedFault:
    """Shared window/target fields of every fault model."""

    tags: Optional[Tuple[int, ...]] = None
    start_round: int = 0
    end_round: Optional[int] = None

    def __post_init__(self) -> None:
        _check_window(self.start_round, self.end_round)
        if self.tags is not None:
            object.__setattr__(self, "tags", tuple(int(t) for t in self.tags))

    def active(self, round_index: int) -> bool:
        """Whether the fault's window covers *round_index*."""
        if round_index < self.start_round:
            return False
        return self.end_round is None or round_index < self.end_round

    def targets(self, n_tags: int) -> Tuple[int, ...]:
        """The tag ids this fault may hit, within a group of *n_tags*."""
        if self.tags is None:
            return tuple(range(n_tags))
        return tuple(t for t in self.tags if 0 <= t < n_tags)


@dataclass(frozen=True)
class TagDropout(_WindowedFault):
    """A tag goes completely silent for a round (power brown-out,
    harvester starvation, or a hard reset).  Each targeted tag drops
    out independently with *probability* in every window round."""

    probability: float = 1.0
    reason = "fault.dropout"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_probability(self.probability)


@dataclass(frozen=True)
class TagBrownout(_WindowedFault):
    """A tag loses power *mid-frame*: it transmits only the leading
    fraction of its burst, drawn uniformly from
    ``[keep_min, keep_max]``, then goes dark for the rest of the
    round.  The truncated burst still trips the energy detector, so
    this exercises the receiver's malformed-input path, not just a
    miss."""

    probability: float = 1.0
    keep_min: float = 0.1
    keep_max: float = 0.6
    reason = "fault.brownout"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_probability(self.probability)
        if not 0.0 <= self.keep_min <= self.keep_max <= 1.0:
            raise ValueError(
                f"need 0 <= keep_min <= keep_max <= 1, got [{self.keep_min}, {self.keep_max}]"
            )


@dataclass(frozen=True)
class OscillatorDrift(_WindowedFault):
    """A tag's clock drifts far beyond the chip-offset budget -- the RC
    oscillator regime of the paper's clock ablation (~1% = 10^4 ppm
    loses chip alignment within a frame).  *drift_ppm* is added on top
    of whatever drift the config already models."""

    probability: float = 1.0
    drift_ppm: float = 10_000.0
    reason = "fault.clock_drift"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_probability(self.probability)
        if self.drift_ppm <= 0:
            raise ValueError("drift_ppm must be positive")


@dataclass(frozen=True)
class BurstInterferer(_WindowedFault):
    """A time-windowed wideband jammer added at the channel: every
    window round is jammed independently with probability *duty*, and a
    jammed round receives complex Gaussian interference at
    *power_dbm* across the whole buffer.  ``tags`` is ignored (the
    jammer hits the shared medium)."""

    probability: float = 1.0  # alias kept for uniformity; see ``duty``
    power_dbm: float = -55.0
    duty: float = 1.0

    reason = "fault.interference"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_probability(self.duty, "duty")

    @property
    def power_w(self) -> float:
        return dbm_to_watts(self.power_dbm)


@dataclass(frozen=True)
class AdcSaturation(_WindowedFault):
    """The receiver front end clips: both I and Q rails saturate at
    ``full_scale`` (linear amplitude).  Models an ADC driven past its
    reference by a nearby strong emitter; the resulting hard-limited
    buffer is exactly the malformed input the decode pipeline must
    survive."""

    full_scale: float = 1e-6

    reason = "fault.adc_clip"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")


@dataclass(frozen=True)
class AckLoss(_WindowedFault):
    """The downlink ACK never reaches the tag (or arrives corrupted and
    fails its check -- indistinguishable to the tag).  The frame *was*
    delivered; only the tag's bookkeeping is wrong, so the cost is
    retransmissions/duplicates, never data."""

    probability: float = 1.0
    reason = "fault.ack_loss"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_probability(self.probability)


@dataclass(frozen=True)
class StuckImpedance(_WindowedFault):
    """A tag's impedance switch wedges: power-control commands
    (``step_impedance`` / ``set_impedance``) are ignored while the
    fault is active.  The tag keeps transmitting on whatever state it
    was last in -- Algorithm 1 must converge around it."""

    reason = "fault.stuck_impedance"
