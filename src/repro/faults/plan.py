"""Deterministic, seed-driven fault injection plans.

A :class:`FaultPlan` bundles fault models (:mod:`repro.faults.models`)
with one root seed and resolves them round by round into a concrete
:class:`RoundFaults` -- *which* tags are silent, truncated, drifting or
deaf to ACKs this round, whether the jammer fires, and whether the ADC
clips.  Resolution is a pure function of ``(plan seed, fault index,
round index)``: the same plan queried twice, in any order, by any
consumer (the round simulator, the ARQ layer, the unslotted driver)
yields bit-identical faults.  That is what makes faulted experiments
reproducible and lets a sweep re-run a single crashed point.

Typical use::

    from repro.faults import BurstInterferer, FaultPlan, TagDropout

    plan = FaultPlan(
        [TagDropout(probability=0.2), BurstInterferer(start_round=10, end_round=20)],
        seed=42,
    )
    net = CbmaNetwork(config, deployment, faults=plan)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

import numpy as np

from repro.faults.models import (
    AckLoss,
    AdcSaturation,
    BurstInterferer,
    OscillatorDrift,
    StuckImpedance,
    TagBrownout,
    TagDropout,
)

__all__ = ["FaultPlan", "RoundFaults", "TagTxFault"]


@dataclass(frozen=True)
class TagTxFault:
    """Resolved transmit-side impairment of one tag for one round.

    Consumed by the waveform synthesizers
    (:func:`repro.sim.collision.simulate_round`,
    :func:`repro.sim.unslotted.simulate_unslotted`): a *silent* tag
    radiates nothing; a tag with ``keep_fraction`` transmits only the
    leading fraction of its burst.
    """

    silent: bool = False
    keep_fraction: Optional[float] = None


def _rng(seed: int, fault_index: int, round_index: int) -> np.random.Generator:
    """The deterministic stream for one (fault, round) cell."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=(seed, fault_index, round_index))
    )


@dataclass(frozen=True)
class RoundFaults:
    """Every fault resolved for one round.

    ``silent`` / ``brownout`` / ``drift_ppm`` / ``stuck`` / ``ack_lost``
    are tag-indexed; ``jammers`` is a tuple of ``(power_w, seed)``
    bursts to add at the channel and ``clip_level`` the ADC full-scale
    amplitude (``None`` = no clipping).
    """

    round_index: int
    silent: FrozenSet[int] = frozenset()
    brownout: Dict[int, float] = field(default_factory=dict)
    drift_ppm: Dict[int, float] = field(default_factory=dict)
    stuck: FrozenSet[int] = frozenset()
    ack_lost: FrozenSet[int] = frozenset()
    jammers: Tuple[Tuple[float, int], ...] = ()
    clip_level: Optional[float] = None

    @property
    def any_active(self) -> bool:
        return bool(
            self.silent
            or self.brownout
            or self.drift_ppm
            or self.stuck
            or self.ack_lost
            or self.jammers
            or self.clip_level is not None
        )

    # ------------------------------------------------------------------
    # Views for the consumers
    # ------------------------------------------------------------------

    def tx_faults(self) -> Dict[int, TagTxFault]:
        """Per-tag transmit impairments for the waveform synthesizer."""
        out: Dict[int, TagTxFault] = {}
        for tag in self.silent:
            out[tag] = TagTxFault(silent=True)
        for tag, keep in self.brownout.items():
            if tag not in out:  # full dropout wins over brownout
                out[tag] = TagTxFault(keep_fraction=keep)
        return out

    def loss_reason(self, tag_id: int) -> Optional[str]:
        """The fault slug that best explains losing *tag_id*'s frame.

        Priority follows causality: a silent tag cannot even be
        truncated; tag-local faults beat shared-medium ones.
        """
        if tag_id in self.silent:
            return "fault.dropout"
        if tag_id in self.brownout:
            return "fault.brownout"
        if tag_id in self.drift_ppm:
            return "fault.clock_drift"
        if self.clip_level is not None:
            return "fault.adc_clip"
        if self.jammers:
            return "fault.interference"
        return None

    def jammer_samples(self, n: int, sample_rate_hz: float) -> Optional[np.ndarray]:
        """The summed jammer contribution for an *n*-sample buffer.

        Each burst draws from its own seeded generator, so the jammer
        waveform never perturbs (and is never perturbed by) the
        simulation's main RNG stream.
        """
        if not self.jammers:
            return None
        total = np.zeros(n, dtype=np.complex128)
        for power_w, seed in self.jammers:
            gen = np.random.default_rng(seed)
            std = float(np.sqrt(power_w / 2.0))
            total += gen.normal(0.0, std, n) + 1j * gen.normal(0.0, std, n)
        return total

    def clip(self, iq: np.ndarray) -> np.ndarray:
        """Apply ADC saturation to a buffer (no-op when not clipping)."""
        if self.clip_level is None:
            return iq
        level = self.clip_level
        return np.clip(iq.real, -level, level) + 1j * np.clip(iq.imag, -level, level)


#: The no-fault singleton returned for rounds nothing touches.
_CLEAN = RoundFaults(round_index=-1)

#: Fault model classes a serialised plan may reference, by class name.
#: Keeping this an explicit registry (rather than getattr on the module)
#: means a checkpoint can never instantiate an arbitrary symbol.
_MODEL_REGISTRY = {
    cls.__name__: cls
    for cls in (
        TagDropout,
        TagBrownout,
        OscillatorDrift,
        BurstInterferer,
        AdcSaturation,
        AckLoss,
        StuckImpedance,
    )
}


class FaultPlan:
    """A deterministic schedule of faults for one run.

    Parameters
    ----------
    faults:
        Fault model instances from :mod:`repro.faults.models`.
    seed:
        Root seed of every stochastic draw the plan makes.  The same
        ``(faults, seed)`` pair resolves identically forever.
    """

    def __init__(self, faults: Sequence = (), seed: int = 0):
        faults = tuple(faults)
        for f in faults:
            if not isinstance(
                f,
                (
                    TagDropout,
                    TagBrownout,
                    OscillatorDrift,
                    BurstInterferer,
                    AdcSaturation,
                    AckLoss,
                    StuckImpedance,
                ),
            ):
                raise TypeError(
                    f"{f!r} is not a fault model (see repro.faults.models)"
                )
        self.faults = faults
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ", ".join(type(f).__name__ for f in self.faults)
        return f"FaultPlan([{kinds}], seed={self.seed})"

    @property
    def empty(self) -> bool:
        return not self.faults

    def describe(self) -> str:
        """One human-readable line per fault."""
        if not self.faults:
            return "(no faults)"
        lines = []
        for i, f in enumerate(self.faults):
            end = "inf" if f.end_round is None else str(f.end_round)
            tags = "all" if f.tags is None else ",".join(map(str, f.tags))
            lines.append(
                f"[{i}] {type(f).__name__} rounds [{f.start_round}, {end}) tags {tags}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Serialisation (checkpoints, shrunken-plan artifacts)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable form: ``{"seed": ..., "faults": [...]}``.

        Each fault is its class name plus its dataclass fields, so the
        round-trip through :meth:`from_dict` reconstructs a plan that
        resolves bit-identically -- what lets a chaos-soak artifact
        replay a shrunken fault schedule on another machine.
        """
        return {
            "seed": self.seed,
            "faults": [
                {
                    "kind": type(f).__name__,
                    "params": {
                        fld.name: (
                            list(value) if isinstance(value, tuple) else value
                        )
                        for fld in dataclasses.fields(f)
                        for value in (getattr(f, fld.name),)
                    },
                }
                for f in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; unknown kinds raise ValueError."""
        faults = []
        for rec in data.get("faults", []):
            kind = rec.get("kind")
            model = _MODEL_REGISTRY.get(kind)
            if model is None:
                raise ValueError(
                    f"unknown fault kind {kind!r} (known: {sorted(_MODEL_REGISTRY)})"
                )
            params = {
                key: tuple(value) if isinstance(value, list) else value
                for key, value in rec.get("params", {}).items()
            }
            faults.append(model(**params))
        return cls(faults, seed=int(data.get("seed", 0)))

    # ------------------------------------------------------------------

    def resolve(self, round_index: int, n_tags: int) -> RoundFaults:
        """Resolve every fault for *round_index* over *n_tags* tags."""
        if round_index < 0:
            raise ValueError("round_index must be >= 0")
        silent = set()
        brownout: Dict[int, float] = {}
        drift: Dict[int, float] = {}
        stuck = set()
        ack_lost = set()
        jammers = []
        clip_level: Optional[float] = None

        for idx, f in enumerate(self.faults):
            if not f.active(round_index):
                continue
            if isinstance(f, StuckImpedance):
                stuck.update(f.targets(n_tags))
                continue
            if isinstance(f, AdcSaturation):
                clip_level = (
                    f.full_scale if clip_level is None else min(clip_level, f.full_scale)
                )
                continue
            gen = _rng(self.seed, idx, round_index)
            if isinstance(f, BurstInterferer):
                if gen.random() < f.duty:
                    # An independent per-round seed keeps the burst
                    # waveform decoupled from this decision draw.
                    jammers.append((f.power_w, int(gen.integers(0, 2**63 - 1))))
                continue
            # Tag-targeted stochastic faults: one draw per target, in
            # tag order, so resolution is order-independent.
            for tag in f.targets(n_tags):
                hit = gen.random() < f.probability
                if isinstance(f, TagBrownout):
                    keep = float(gen.uniform(f.keep_min, f.keep_max))
                    if hit:
                        brownout[tag] = keep
                elif hit:
                    if isinstance(f, TagDropout):
                        silent.add(tag)
                    elif isinstance(f, OscillatorDrift):
                        drift[tag] = drift.get(tag, 0.0) + f.drift_ppm
                    elif isinstance(f, AckLoss):
                        ack_lost.add(tag)

        if not (silent or brownout or drift or stuck or ack_lost or jammers) and clip_level is None:
            return _CLEAN
        return RoundFaults(
            round_index=round_index,
            silent=frozenset(silent),
            brownout=brownout,
            drift_ppm=drift,
            stuck=frozenset(stuck),
            ack_lost=frozenset(ack_lost),
            jammers=tuple(jammers),
            clip_level=clip_level,
        )
