"""User detection: which tags are inside a detected frame collision.

Paper Sec. III-B: "we use each of the PN sequences to cross-correlate
with the preamble of the received frame.  If the correlation value of a
PN sequence is larger than a predetermined threshold, the user with
this PN sequence is determined to be in the frame with high
probability."

For each registered tag the detector builds the *spread preamble
template* (preamble bits encoded with that tag's PN code, upsampled),
slides it over a search window around the energy detection, and
declares the user present when the normalised correlation peak clears
the threshold.  The peak position doubles as the tag's timing estimate
and the complex projection at the peak as its channel estimate -- both
consumed by the decoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.tag.framing import FrameFormat
from repro.utils.contracts import array_contract
from repro.utils.correlation import correlation_peaks, sliding_correlation
from repro.utils.correlation_batch import TemplateBank, template_bank

__all__ = ["UserDetector", "UserDetection"]


@dataclass(frozen=True)
class UserDetection:
    """One detected user within a collision.

    ``offset``/``score``/``channel`` describe the best alignment;
    ``candidates`` lists up to a handful of near-maximal alignments
    (best first) for multi-hypothesis decoding.  The CBMA preamble is
    an alternating bit pattern and bit-0 chips are the negated code, so
    alignments shifted by whole bits *anti-correlate* at almost full
    magnitude -- phase-blind correlation cannot resolve them, but the
    frame CRC can: the receiver tries each candidate until one parses.
    """

    user_id: int
    offset: int
    """Sample index (within the search buffer) where the frame begins."""
    score: float
    """Normalised correlation peak in [0, 1]."""
    channel: complex
    """Estimated complex channel gain (amplitude of a unit chip)."""
    candidates: tuple = ()
    """((offset, score, channel), ...) alternative alignments, best first."""


class UserDetector:
    """Correlation-based multi-user detector.

    Parameters
    ----------
    codes:
        Mapping user id -> PN code (0/1 chips).
    fmt:
        Frame format (the preamble is the correlation anchor).
    samples_per_chip:
        Oversampling factor of the receive buffer.
    threshold:
        Normalised-correlation acceptance threshold.  The score of a
        present user scales as ``~0.7/sqrt(n_tags)`` (the window energy
        contains every tag), i.e. ~0.22 for a 10-tag collision, while
        an absent user's leakage stays below ~0.3x the strongest
        present score; 0.12 accepts all present users up to 10-tag
        collisions and lets near-far-suppressed users fail -- the
        behaviour power control exists to fix.  The user-detection
        benchmark sweeps this.
    """

    def __init__(
        self,
        codes: Dict[int, np.ndarray],
        fmt: Optional[FrameFormat] = None,
        samples_per_chip: int = 1,
        threshold: float = 0.12,
        max_hypotheses: int = 8,
    ):
        if not codes:
            raise ValueError("detector needs at least one user code")
        if samples_per_chip < 1:
            raise ValueError("samples_per_chip must be >= 1")
        self.fmt = fmt or FrameFormat()
        self.samples_per_chip = samples_per_chip
        self.threshold = threshold
        self.max_hypotheses = max_hypotheses
        self.codes = {int(uid): np.asarray(code, dtype=np.uint8) for uid, code in codes.items()}
        # Bipolar spread-preamble templates: zero-mean-ish, so the
        # correlation rejects the DC offset contributed by other tags'
        # unipolar chip activity.  The stacked bank is memoised per
        # (format, codes, oversampling) and feeds the batched FFT
        # kernel; a ragged code book (no supported family produces one)
        # falls back to the per-user direct loop.
        self._bank: Optional[TemplateBank] = None
        try:
            self._bank = template_bank(self.fmt, self.codes, samples_per_chip)
        except ValueError:
            self._bank = None
        if self._bank is not None:
            self._templates: Dict[int, np.ndarray] = {
                uid: self._bank.template(uid) for uid in self.codes
            }
        else:
            from repro.phy.modulation import spread_bits, upsample_chips
            from repro.utils.bits import bits_to_bipolar

            self._templates = {
                uid: upsample_chips(
                    bits_to_bipolar(spread_bits(self.fmt.preamble, code)), samples_per_chip
                )
                for uid, code in self.codes.items()
            }

    @property
    def bank(self) -> Optional[TemplateBank]:
        """The stacked template bank (``None`` for a ragged code book)."""
        return self._bank

    def template(self, user_id: int) -> np.ndarray:
        """The spread-preamble template for *user_id* (bipolar, upsampled)."""
        return self._templates[int(user_id)]

    def template_length(self, user_id: int) -> int:
        return self._templates[int(user_id)].size

    def correlation_rows(
        self, window: np.ndarray, backend: Optional[str] = None
    ) -> Iterable[Tuple[int, np.ndarray]]:
        """``(user_id, normalised sliding correlation)`` per user.

        One batched FFT pass over the stacked bank when available (the
        hot path: shared window FFT + shared window-energy cumsum),
        otherwise the legacy per-user direct loop.  Users whose
        template is longer than the window yield nothing.
        """
        x = np.asarray(window)
        if self._bank is not None:
            if x.size < self._bank.template_samples:
                return
            corr = self._bank.correlate(x, backend=backend)
            # Emit in this detector's code order (the cached bank may
            # have been built by a detector with another dict order).
            row_of = {uid: row for row, uid in enumerate(self._bank.user_ids)}
            for uid in self.codes:
                yield uid, corr[row_of[uid]]
            return
        for uid, template in self._templates.items():
            if x.size < template.size:
                continue
            yield uid, sliding_correlation(x, template, normalize=True)

    @array_contract(window="(n) complex128")
    def detect(self, window: np.ndarray, max_users: Optional[int] = None) -> List[UserDetection]:
        """Detect users inside *window* (complex samples).

        The window should start at (or slightly before) the energy
        detection and span at least one spread preamble plus the
        largest expected inter-tag offset.  Returns detections sorted
        by descending score, truncated to *max_users* when given.
        """
        x = np.asarray(window)
        out: List[UserDetection] = []
        for uid, corr in self.correlation_rows(x):
            template = self._templates[uid]
            if corr.size == 0:
                continue
            best = int(np.argmax(corr))
            score = float(corr[best])
            if score < self.threshold:
                continue
            # Near-maximal alternative alignments: the +/-k-bit
            # correlation images of the alternating preamble, plus any
            # payload stretch that happens to imitate the preamble
            # pattern.  Spaced at least half a bit block apart so
            # sub-sample neighbours of one peak are not counted as
            # separate hypotheses.  Hypotheses are ordered EARLIEST
            # FIRST: the true preamble always precedes payload content
            # that mimics it, and a too-early image simply fails its
            # CRC and falls through to the next candidate.
            block = self.samples_per_chip * int(self.codes[uid].size)
            peaks = correlation_peaks(
                corr, threshold=max(self.threshold, 0.5 * score), min_spacing=max(block // 2, 1)
            )
            ranked = sorted(int(k) for k in peaks)[: self.max_hypotheses - 1]
            # The global maximum is always kept as a hypothesis even
            # when many above-threshold leak peaks precede it -- it is
            # usually the true preamble (or a +/-1-bit image of it).
            if best not in ranked:
                ranked = sorted(ranked + [best])
            candidates = []
            for k in ranked:
                segment = x[k : k + template.size]
                # Least-squares complex gain of a unit-amplitude chip:
                # h = <x, t> / ||t||^2 with t the bipolar template.
                h = complex(np.vdot(template, segment) / float(np.vdot(template, template).real))
                candidates.append((int(k), float(corr[k]), h))
            if not candidates:
                segment = x[best : best + template.size]
                h = complex(np.vdot(template, segment) / float(np.vdot(template, template).real))
                candidates = [(best, score, h)]
            # Report the strongest candidate as the detection's headline
            # offset/score (used for ranking and ghost arbitration).
            peak, score, h = max(candidates, key=lambda c: c[1])
            out.append(
                UserDetection(
                    user_id=uid, offset=peak, score=score, channel=h, candidates=tuple(candidates)
                )
            )
        out.sort(key=lambda d: d.score, reverse=True)
        if max_users is not None:
            out = out[:max_users]
        return out
