"""Successive interference cancellation (SIC) receiver extension.

The paper's near-far analysis (Sec. IV) motivates *tag-side* power
control because its receiver decodes every tag against the raw
collision.  The classic *receiver-side* alternative is SIC: decode the
strongest tag first, re-synthesise its contribution from the decoded
bits and the channel estimate, subtract it, and repeat.  This module
implements that extension so the benchmarks can quantify how much of
the power-control benefit a smarter receiver could recover without
touching the tags -- and where tag-side control still wins (SIC needs a
*successful* decode to cancel; when the strong tag itself fails,
nothing improves).

The cancellation pipeline reuses the standard stages unchanged: only
the orchestration differs from :class:`repro.receiver.receiver.CbmaReceiver`.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.obs.taxonomy import C, decode_outcome
from repro.phy.modulation import spread_bits, upsample_chips
from repro.receiver.ack import AckMessage
from repro.receiver.decoder import DecodedFrame
from repro.receiver.failures import DecodeFailure
from repro.receiver.frame_sync import FrameSyncResult
from repro.receiver.receiver import CbmaReceiver, ReceptionReport
from repro.tag.framing import FrameFormat
from repro.utils.bits import pack_bits
from repro.utils.contracts import array_contract

__all__ = ["SicReceiver"]


class SicReceiver(CbmaReceiver):
    """CBMA receiver with successive interference cancellation.

    Parameters match :class:`CbmaReceiver`; *max_passes* bounds the
    number of decode-and-subtract iterations (each pass removes every
    newly decoded tag before re-detecting the rest).
    """

    def __init__(self, *args, max_passes: int = 3, **kwargs):
        super().__init__(*args, **kwargs)
        if max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        self.max_passes = max_passes

    def process(self, iq: np.ndarray, round_index: int = 0, skip_energy_gate: bool = False) -> ReceptionReport:
        """Iteratively decode and cancel until no new tag decodes.

        Honours the same degradation contract as
        :meth:`CbmaReceiver.process`: malformed input is sanitised, and
        a pass that blows up mid-cancellation is contained into a
        ``DecodeFailure`` while the frames already decoded stay on the
        report.
        """
        tracer = self.tracer
        report = ReceptionReport(sync=FrameSyncResult(detections=[]))
        x = self._front_end(iq, report.failures)
        try:
            with tracer.span("frame_sync"):
                report.sync = self.energy_detector.detect(x)
        except Exception as exc:
            self._contain(report, DecodeFailure("frame_sync", "exception", detail=str(exc)))
        if not report.sync.detected and not skip_energy_gate:
            tracer.count(C.FRAME_SYNC_MISSES)
            report.ack = AckMessage.for_ids([], round_index)
            return report

        succeeded: Dict[int, DecodedFrame] = {}
        failed: Dict[int, DecodedFrame] = {}
        best_detections: Dict[int, object] = {}
        residual = x
        for _pass in range(self.max_passes):
            try:
                residual, progressed = self._run_pass(
                    _pass, residual, succeeded, failed, best_detections, report
                )
            except Exception as exc:
                # A failed pass ends cancellation but keeps everything
                # decoded so far: SIC degrades to "fewer passes", never
                # to a crash.
                self._contain(
                    report, DecodeFailure("sic", "exception", detail=f"pass {_pass}: {exc}")
                )
                break
            if not progressed:
                break

        report.detections = sorted(
            best_detections.values(), key=lambda d: d.score, reverse=True
        )
        report.frames = list(succeeded.values()) + [
            f for uid, f in failed.items() if uid not in succeeded
        ]
        try:
            self._suppress_ghosts(report)
        except Exception as exc:
            self._contain(report, DecodeFailure("decode", "ghost_suppression", detail=str(exc)))
        report.ack = AckMessage.for_ids(
            (f.user_id for f in report.frames if f.success), round_index
        )
        return report

    def _run_pass(
        self,
        _pass: int,
        residual: np.ndarray,
        succeeded: Dict[int, DecodedFrame],
        failed: Dict[int, DecodedFrame],
        best_detections: Dict[int, object],
        report: ReceptionReport,
    ) -> tuple:
        """One detect-decode-cancel pass; returns ``(residual, progressed)``."""
        tracer = self.tracer
        with tracer.span("sic", sic_pass=_pass):
            tracer.count(C.SIC_PASSES)
            with tracer.span("detect"):
                detections = self.user_detector.detect(residual)
            for det in detections:
                if det.user_id not in succeeded:
                    best_detections[det.user_id] = det
            new_successes: List[tuple] = []
            for det in detections:
                if det.user_id in succeeded:
                    continue
                decoder = self._decoders[det.user_id]
                candidates = det.candidates or ((det.offset, det.score, det.channel),)
                frame = None
                used = None
                try:
                    with tracer.span("decode", user=det.user_id):
                        for offset, _score, channel in candidates:
                            attempt = decoder.decode_frame(residual, offset, channel, user_id=det.user_id)
                            if frame is None or (attempt.success and not frame.success):
                                frame = attempt
                                used = (offset, channel)
                            if attempt.success:
                                break
                except Exception as exc:
                    self._contain(
                        report,
                        DecodeFailure("decode", "exception", user_id=det.user_id, detail=str(exc)),
                    )
                    frame = DecodedFrame(
                        user_id=det.user_id, success=False, payload=None, reason="exception"
                    )
                tracer.count(decode_outcome(frame.reason))
                if frame.success:
                    new_successes.append((det, frame, used))
                else:
                    # Remember the latest failure, but keep the user
                    # eligible for the next pass: cancellation may be
                    # exactly what rescues it.
                    failed[det.user_id] = frame

            if not new_successes:
                return residual, False
            # Per-pass ghost dedup BEFORE committing: a wrong-code
            # correlator decodes the strongest frame bit-exact (see
            # _suppress_ghosts), and cancelling such a ghost with the
            # wrong code would corrupt the residual.  Keep only the
            # highest-scoring owner of each distinct payload; the
            # losers stay eligible -- once the true owner's frame is
            # cancelled, their own (weaker) frame becomes decodable.
            by_payload: Dict[bytes, list] = {}
            for entry in new_successes:
                by_payload.setdefault(entry[1].payload, []).append(entry)
            committed = [
                max(entries, key=lambda e: e[0].score) for entries in by_payload.values()
            ]
            for det, frame, (offset, channel) in committed:
                succeeded[det.user_id] = frame
                failed.pop(det.user_id, None)
                tracer.count(C.SIC_CANCELLATIONS)
                residual = self._cancel(residual, det.user_id, frame, offset, channel)
        return residual, True

    @array_contract(residual="(n) complex128", returns="(n) complex128")
    def _cancel(
        self,
        residual: np.ndarray,
        user_id: int,
        frame: DecodedFrame,
        preamble_offset: int,
        channel: complex,
    ) -> np.ndarray:
        """Subtract the reconstructed frame of *user_id* from *residual*.

        The frame is re-encoded exactly as the tag sent it (preamble +
        decoded body bits, spread, upsampled) and removed by a joint
        least-squares fit of its chip shape and a local constant over a
        small grid of sub-sample timing hypotheses -- see the inline
        comments for why each piece is needed.
        """
        fmt: FrameFormat = self.fmt
        if frame.raw_bits is None or preamble_offset < 0:
            return residual
        bits = pack_bits(fmt.preamble, frame.raw_bits)
        chips = spread_bits(bits, self.codes[user_id])
        unit = upsample_chips(chips, self.samples_per_chip).astype(np.float64)

        # Fractional-offset refinement: the detector's peak is integer,
        # but the tag's clock is not.  A residue of a few percent of
        # the strong tag's power (one fractional chip of rectangular
        # pulse mismatch) can still bury a 15-20 dB weaker tag, so the
        # canceller searches sub-sample offsets around the peak and
        # least-squares-fits the complex gain for each, keeping the
        # hypothesis with the smallest residual energy.
        from repro.phy.modulation import fractional_delay

        best = None
        base = max(preamble_offset - 1, 0)
        for frac in np.arange(0.0, 2.0, 0.25):
            start = base + frac
            delayed = fractional_delay(unit, start - base)
            end = min(base + delayed.size, residual.size)
            seg = delayed[: end - base]
            window = residual[base:end]
            energy = float(np.vdot(seg, seg).real)
            if energy <= 0 or seg.size == 0:
                continue
            # Two-basis least squares: the frame's chip shape plus a
            # local constant.  The receiver's DC blocker removed the
            # *global* mean, which included part of this frame's own
            # unipolar DC; fitting a local offset jointly with the gain
            # makes the cancellation exact again.
            ones = np.ones(seg.size)
            basis = np.stack([seg.astype(np.complex128), ones.astype(np.complex128)], axis=1)
            coeffs, *_ = np.linalg.lstsq(basis, window, rcond=None)
            synth = basis @ coeffs
            resid_energy = float(np.sum(np.abs(window - synth) ** 2))
            if best is None or resid_energy < best[0]:
                best = (resid_energy, synth, end)
        if best is None:
            return residual
        _, synth, end = best
        out = residual.copy()
        out[base:end] -= synth
        return out
