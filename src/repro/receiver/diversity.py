"""Multi-antenna (MRC) receiver extension.

The USRP RIO used by the paper has two receive chains; receive
diversity is the cheapest upgrade path the prototype leaves on the
table.  This module implements maximal-ratio combining:

- user detection runs per branch and combines correlation energies
  non-coherently (phases differ across antennas);
- each detected user's channel is estimated per branch;
- chip decisions slice ``sum_k Re(conj(h_k) * z_k)`` -- the matched
  combiner that is optimal for independent-branch AWGN.

Independent small-scale fading per antenna gives the usual diversity
gain against the deep-fade failures that dominate CBMA's error floor
at the knee.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from repro.receiver.ack import AckMessage
from repro.receiver.decoder import ChipDecoder, DecodedFrame
from repro.receiver.receiver import CbmaReceiver, ReceptionReport
from repro.receiver.user_detection import UserDetection
from repro.tag.framing import FrameError, FrameFormat, MAX_PAYLOAD_BYTES
from repro.utils.bits import bits_to_bytes, pack_bits
from repro.utils.correlation import correlation_peaks

__all__ = ["DiversityReceiver"]


class DiversityReceiver(CbmaReceiver):
    """MRC receiver over ``n_antennas`` independent branches.

    ``process_branches`` accepts a list of per-antenna sample buffers
    (equal length); the single-buffer :meth:`process` still works and
    degenerates to the base receiver.
    """

    def __init__(self, *args, n_antennas: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        if n_antennas < 1:
            raise ValueError("n_antennas must be >= 1")
        self.n_antennas = n_antennas

    # ------------------------------------------------------------------
    # Branch-combining pipeline
    # ------------------------------------------------------------------

    def _combined_correlations(
        self, branches: Sequence[np.ndarray]
    ) -> "OrderedDict[int, np.ndarray]":
        """Square-law-combined correlation per user, batched per branch.

        Each branch takes **one** batched FFT pass over the stacked
        template bank (shared branch FFT, shared window-energy cumsum)
        instead of one ``np.convolve`` per user per branch; the
        per-user rows are then combined non-coherently across branches.
        """
        combined: "OrderedDict[int, np.ndarray]" = OrderedDict()
        for x in branches:
            for uid, corr in self.user_detector.correlation_rows(x):
                prev = combined.get(uid)
                combined[uid] = corr**2 if prev is None else prev + corr**2
        # Root-SUM, not root-mean: a deeply faded branch must never
        # drag the detection statistic below what the good branch
        # alone would give (non-coherent square-law combining).
        return OrderedDict((uid, np.sqrt(acc)) for uid, acc in combined.items())

    def _detect_combined(self, branches: Sequence[np.ndarray]) -> List[UserDetection]:
        """User detection on non-coherently combined correlations."""
        out: List[UserDetection] = []
        for uid, combined in self._combined_correlations(branches).items():
            template = self.user_detector.template(uid)
            if combined.size == 0:
                continue
            best = int(np.argmax(combined))
            score = float(combined[best])
            if score < self.user_detector.threshold:
                continue
            block = self.samples_per_chip * int(self.codes[uid].size)
            peaks = correlation_peaks(
                combined,
                threshold=max(self.user_detector.threshold, 0.5 * score),
                min_spacing=max(block // 2, 1),
            )
            # Earliest-first hypothesis order with the global best
            # always retained (see UserDetector.detect).
            ranked = sorted(int(k) for k in peaks)[: self.user_detector.max_hypotheses - 1]
            if best not in ranked:
                ranked = sorted(ranked + [best])
            ranked = ranked or [best]
            candidates = []
            t_energy = float(np.vdot(template, template).real)
            for k in ranked:
                channels = tuple(
                    complex(np.vdot(template, x[k : k + template.size]) / t_energy)
                    for x in branches
                )
                candidates.append((int(k), float(combined[k]), channels))
            peak, score, channels = max(candidates, key=lambda c: c[1])
            out.append(
                UserDetection(
                    user_id=uid, offset=peak, score=score,
                    channel=channels[0], candidates=tuple(candidates),
                )
            )
        out.sort(key=lambda d: d.score, reverse=True)
        return out

    def _decode_mrc(
        self,
        branches: Sequence[np.ndarray],
        decoder: ChipDecoder,
        preamble_start: int,
        channels: Sequence[complex],
        user_id: int,
    ) -> DecodedFrame:
        """Progressive frame decode with per-bit MRC combining."""
        fmt: FrameFormat = self.fmt
        body_start = preamble_start + fmt.preamble_bits * decoder.block_samples

        def mrc_bits(start: int, n_bits: int) -> Optional[np.ndarray]:
            acc = None
            for x, h in zip(branches, channels):
                stats = decoder.decision_statistics(x, start, n_bits)
                if stats is None:
                    return None
                contrib = np.real(np.conj(h if h != 0 else 1.0) * stats)
                acc = contrib if acc is None else acc + contrib
            return (acc > 0).astype(np.uint8)

        length_bits = mrc_bits(body_start, 8)
        if length_bits is None:
            return DecodedFrame(user_id, False, None, "truncated")
        length = int(bits_to_bytes(length_bits)[0])
        if length > MAX_PAYLOAD_BYTES:
            return DecodedFrame(user_id, False, None, "length", raw_bits=length_bits)
        rest = mrc_bits(body_start + 8 * decoder.block_samples, 8 * length + 16)
        if rest is None:
            return DecodedFrame(user_id, False, None, "truncated", raw_bits=length_bits)
        frame_bits = pack_bits(fmt.preamble, length_bits, rest)
        try:
            frame = fmt.parse(frame_bits, check_preamble=False)
        except FrameError:
            return DecodedFrame(user_id, False, None, "crc", raw_bits=pack_bits(length_bits, rest))
        return DecodedFrame(user_id, True, frame.payload, "ok", raw_bits=pack_bits(length_bits, rest))

    def process_branches(self, branches: Sequence[np.ndarray], round_index: int = 0) -> ReceptionReport:
        """Full pipeline over per-antenna buffers."""
        branches = [np.asarray(b) for b in branches]
        if self.dc_block:
            branches = [b - np.mean(b) if b.size else b for b in branches]
        if len(branches) != self.n_antennas:
            raise ValueError(f"expected {self.n_antennas} branches, got {len(branches)}")
        if len({b.size for b in branches}) != 1:
            raise ValueError("branches must share one length")

        # Frame sync per branch, OR-combined: averaging the envelopes
        # would let a deeply faded branch dilute the relative 3 dB rise
        # the detector looks for on the healthy branch.
        detections: List[int] = []
        for b in branches:
            detections.extend(self.energy_detector.detect(b).detections)
        from repro.receiver.frame_sync import FrameSyncResult

        sync = FrameSyncResult(detections=sorted(set(detections)))
        report = ReceptionReport(sync=sync)
        if not sync.detected:
            report.ack = AckMessage.for_ids([], round_index)
            return report

        report.detections = self._detect_combined(branches)
        for det in report.detections:
            decoder = self._decoders[det.user_id]
            frame = None
            for offset, _score, channels in det.candidates:
                attempt = self._decode_mrc(branches, decoder, offset, channels, det.user_id)
                if frame is None or (attempt.success and not frame.success):
                    frame = attempt
                if attempt.success:
                    break
            report.frames.append(frame)

        self._suppress_ghosts(report)
        report.ack = AckMessage.for_ids(
            (f.user_id for f in report.frames if f.success), round_index
        )
        return report
