"""Phase-tracking receiver: surviving carrier frequency offset (CFO).

The baseband model usually assumes the tag's 20 MHz square wave sits
exactly where the receiver expects.  A real tag clock with ppm error
``e`` shifts the subcarrier by ``e * 20 MHz`` -- 400 Hz at crystal-grade
20 ppm -- which rotates the constellation continuously: over a 10 ms
frame that is several *full turns*, and a decoder that trusts the
preamble's single phase estimate decodes garbage beyond the first
fraction of a turn.

:class:`PhaseTrackingReceiver` adds the standard cure, decision-
directed phase tracking: after each bit decision the channel estimate
is updated from that bit's own correlation statistic, so the estimate
rotates along with the signal.  The loop bandwidth (``alpha``) trades
noise averaging against the maximum trackable CFO (~``alpha / (2 pi
T_bit)`` before the loop lags a turn).

Enable the matching impairment with ``CbmaConfig(cfo_hz_sigma=...)``;
both default off so the calibrated paper pipeline is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.receiver.decoder import DecodedFrame
from repro.receiver.receiver import CbmaReceiver
from repro.tag.framing import FrameError, MAX_PAYLOAD_BYTES
from repro.utils.bits import bits_to_bytes, pack_bits

__all__ = ["PhaseTrackingReceiver"]


class PhaseTrackingReceiver(CbmaReceiver):
    """CBMA receiver with decision-directed per-bit phase tracking.

    Parameters match :class:`CbmaReceiver` plus *alpha*, the tracking
    loop gain in (0, 1]: each decided bit pulls the channel estimate
    ``h`` toward that bit's measured phase by a factor *alpha*.
    """

    def __init__(self, *args, alpha: float = 0.35, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha

    # The base class's process() calls each decoder's decode_frame; we
    # intercept at that granularity by overriding the decode call.

    def process(self, iq, round_index: int = 0, skip_energy_gate: bool = False):
        # Reuse the whole base pipeline but swap the decode function.
        original_decoders = self._decoders
        try:
            self._decoders = {
                uid: _TrackingAdapter(dec, self.alpha) for uid, dec in original_decoders.items()
            }
            return super().process(iq, round_index=round_index, skip_energy_gate=skip_energy_gate)
        finally:
            self._decoders = original_decoders


class _TrackingAdapter:
    """Wraps a ChipDecoder with decision-directed phase tracking."""

    def __init__(self, decoder, alpha: float):
        self._decoder = decoder
        self.alpha = alpha

    def __getattr__(self, name):
        return getattr(self._decoder, name)

    def _tracked_bits(self, window, start, n_bits, h):
        """Decode *n_bits* updating ``h`` after every decision.

        Returns (bits, final_h) or (None, h) when truncated.
        """
        dec = self._decoder
        x = np.asarray(window)
        end = start + n_bits * dec.block_samples
        if start < 0 or end > x.size:
            return None, h
        template = dec._template
        w_eff = float(np.sum(np.abs(template) ** 2)) / 2.0  # ~ones count x spc
        bits = np.empty(n_bits, dtype=np.uint8)
        for k in range(n_bits):
            block = x[start + k * dec.block_samples : start + (k + 1) * dec.block_samples]
            z = complex(block @ np.conj(template))
            bit = 1 if np.real(np.conj(h) * z) > 0 else 0
            bits[k] = bit
            # The statistic of a correct decision is ~ h * W * (+/-1);
            # fold its phase back into h (decision-directed update).
            sign = 1.0 if bit else -1.0
            observed = z * sign / max(w_eff, 1e-30)
            h = (1.0 - self.alpha) * h + self.alpha * observed
        return bits, h

    def decode_frame(self, window, preamble_start, channel, user_id=-1):
        dec = self._decoder
        if channel == 0:
            channel = 1.0 + 0j
        body_start = preamble_start + dec.fmt.preamble_bits * dec.block_samples

        length_bits, h = self._tracked_bits(window, body_start, 8, channel)
        if length_bits is None:
            return DecodedFrame(user_id, False, None, "truncated")
        length = int(bits_to_bytes(length_bits)[0])
        if length > MAX_PAYLOAD_BYTES:
            return DecodedFrame(user_id, False, None, "length", raw_bits=length_bits)

        rest_start = body_start + 8 * dec.block_samples
        rest_bits, _h = self._tracked_bits(window, rest_start, 8 * length + 16, h)
        if rest_bits is None:
            return DecodedFrame(user_id, False, None, "truncated", raw_bits=length_bits)
        frame_bits = pack_bits(dec.fmt.preamble, length_bits, rest_bits)
        try:
            frame = dec.fmt.parse(frame_bits, check_preamble=False)
        except FrameError:
            return DecodedFrame(
                user_id, False, None, "crc", raw_bits=pack_bits(length_bits, rest_bits)
            )
        return DecodedFrame(
            user_id, True, frame.payload, "ok", raw_bits=pack_bits(length_bits, rest_bits)
        )
