"""Cross-correlation chip decoding (paper Sec. III-B).

"After user detection, we use the PN sequences of the detected users to
perform cross-correlation with each chip (the spread symbols to
represent one bit) from the synchronized frame.  If the correlation
with the PN sequence representing '1' is higher than that with the PN
sequence representing '0', the chip is decoded to '1', and vice versa."

Because CBMA's bit-0 chips are the exact negation of the bit-1 chips,
"correlate with both and compare" reduces to the sign of a single
coherent correlation against the bipolar code template, phase-aligned
with the channel estimate from user detection.  Decoding is
*progressive*: the 8-bit length field is decoded first, which bounds
how many further bits the frame contains, then payload + CRC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.taxonomy import C
from repro.obs.tracer import as_tracer
from repro.phy.modulation import upsample_chips
from repro.tag.framing import FrameError, FrameFormat, MAX_PAYLOAD_BYTES
from repro.utils.bits import bits_to_bipolar, bits_to_bytes, pack_bits
from repro.utils.contracts import array_contract

__all__ = ["ChipDecoder", "DecodedFrame"]


@dataclass(frozen=True)
class DecodedFrame:
    """Outcome of decoding one user's frame from a collision."""

    user_id: int
    success: bool
    payload: Optional[bytes]
    reason: str
    """"ok", "length" (implausible length field), "truncated", or "crc"."""
    raw_bits: Optional[np.ndarray] = None
    """Post-preamble bits as decoded (for BER analysis), if available."""


class ChipDecoder:
    """Decodes one user's bits from a synchronised sample window.

    Parameters
    ----------
    code:
        The user's PN code (0/1 chips).
    fmt:
        Frame format (for field geometry and CRC).
    samples_per_chip:
        Oversampling factor of the receive buffer.
    tracer:
        Optional :class:`repro.obs.Tracer`; the CRC check records a
        ``crc`` span and ``crc.ok`` / ``crc.fail`` counters.
    """

    def __init__(self, code: np.ndarray, fmt: Optional[FrameFormat] = None, samples_per_chip: int = 1, tracer=None):
        self.tracer = as_tracer(tracer)
        self.fmt = fmt or FrameFormat()
        self.samples_per_chip = int(samples_per_chip)
        if self.samples_per_chip < 1:
            raise ValueError("samples_per_chip must be >= 1")
        self.code = np.asarray(code, dtype=np.uint8)
        self._template = upsample_chips(bits_to_bipolar(self.code), self.samples_per_chip)
        self.block_samples = self._template.size

    def decision_statistics(self, window: np.ndarray, start: int, n_bits: int) -> Optional[np.ndarray]:
        """Raw complex correlation statistic per bit (no decision).

        Exposed for diversity combining: a multi-antenna receiver sums
        ``Re(conj(h_k) * stats_k)`` across branches before slicing.
        Returns ``None`` when the window is too short.
        """
        x = np.asarray(window)
        end = start + n_bits * self.block_samples
        if start < 0 or end > x.size:
            return None
        blocks = x[start:end].reshape(n_bits, self.block_samples)
        return blocks @ np.conj(self._template)

    def decode_bits(self, window: np.ndarray, start: int, n_bits: int, channel: complex) -> Optional[np.ndarray]:
        """Decode *n_bits* consecutive bits beginning at sample *start*.

        Returns ``None`` when the window is too short (truncated frame).
        Each bit's statistic is ``Re(conj(h) * <template, block>)``;
        the bit is 1 when the statistic is positive (bit-0 chips are
        the negated code, so the statistic is symmetric).
        """
        x = np.asarray(window)
        end = start + n_bits * self.block_samples
        if start < 0 or end > x.size:
            return None
        if channel == 0:
            channel = 1.0 + 0j
        blocks = x[start:end].reshape(n_bits, self.block_samples)
        stats = blocks @ np.conj(self._template)
        decisions = (np.real(np.conj(channel) * stats) > 0).astype(np.uint8)
        return decisions

    @array_contract(window="(n) complex128")
    def decode_frame(self, window: np.ndarray, preamble_start: int, channel: complex, user_id: int = -1) -> DecodedFrame:
        """Progressively decode a full frame.

        *preamble_start* is the sample where the spread preamble begins
        (the user-detection peak).  The preamble itself is not
        re-decoded -- it served as the synchronisation anchor -- so
        decoding starts at the length field.
        """
        body_start = preamble_start + self.fmt.preamble_bits * self.block_samples

        length_bits = self.decode_bits(window, body_start, 8, channel)
        if length_bits is None:
            return DecodedFrame(user_id, False, None, "truncated")
        length = int(bits_to_bytes(length_bits)[0])
        if length > MAX_PAYLOAD_BYTES:
            return DecodedFrame(user_id, False, None, "length", raw_bits=length_bits)

        rest_bits_n = 8 * length + 16
        rest_start = body_start + 8 * self.block_samples
        rest_bits = self.decode_bits(window, rest_start, rest_bits_n, channel)
        if rest_bits is None:
            return DecodedFrame(user_id, False, None, "truncated", raw_bits=length_bits)

        frame_bits = pack_bits(self.fmt.preamble, length_bits, rest_bits)
        tracer = self.tracer
        try:
            with tracer.span("crc"):
                frame = self.fmt.parse(frame_bits, check_preamble=False)
        except FrameError:
            tracer.count(C.CRC_FAIL)
            return DecodedFrame(
                user_id, False, None, "crc", raw_bits=pack_bits(length_bits, rest_bits)
            )
        tracer.count(C.CRC_OK)
        return DecodedFrame(
            user_id, True, frame.payload, "ok", raw_bits=pack_bits(length_bits, rest_bits)
        )
