"""Frame synchronisation by energy detection (paper Sec. III-B).

"The frame synchronization is achieved by energy detection with a
sliding window.  Concretely, a moving average filter is first performed
on the received energy level with a window size W_n.  The filtered
sequence is then passed through a comparator ... We use a decision
threshold P_th, which is configured as 3dB higher than that of filtered
power level."

The detector compares a short-window power estimate (the "current
power level") against a long moving-average baseline; a crossing of
baseline * 10^(3/10) marks a frame-start candidate.  Candidates closer
together than a guard interval are merged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs.taxonomy import C, G
from repro.phy.sampling import moving_average
from repro.utils.contracts import array_contract

__all__ = ["EnergyDetector", "FrameSyncResult"]


@dataclass(frozen=True)
class FrameSyncResult:
    """Output of the energy detector."""

    detections: List[int]
    """Sample indices where frame starts were declared."""

    @property
    def detected(self) -> bool:
        return bool(self.detections)


@dataclass
class EnergyDetector:
    """Sliding-window energy detector.

    Attributes
    ----------
    baseline_window:
        ``W_n``: taps of the long moving average tracking the noise
        floor.
    power_window:
        Taps of the short average estimating "current" power.
    threshold_db:
        Crossing margin over the baseline (the paper's 3 dB).
    guard_samples:
        Minimum spacing between two declared frame starts; detections
        within the guard of an earlier one are suppressed.
    """

    baseline_window: int = 512
    power_window: int = 16
    threshold_db: float = 3.0
    guard_samples: int = 64
    warmup_samples: int = 32
    """Detections are suppressed until the averages have warmed up;
    a cold-start baseline estimated from one or two samples would
    otherwise fire on ordinary noise fluctuations."""
    tracer: Optional[object] = None
    """Optional :class:`repro.obs.Tracer`; set automatically when the
    owning receiver is constructed with one."""

    @array_contract(iq="(n) any")
    def detect(self, iq: np.ndarray) -> FrameSyncResult:
        """Run the detector over a complex sample buffer."""
        x = np.asarray(iq)
        if x.size == 0:
            return FrameSyncResult(detections=[])
        energy = np.abs(x) ** 2
        current = moving_average(energy, self.power_window)
        baseline = moving_average(energy, self.baseline_window)
        # The baseline must trail the signal: delay it by the short
        # window so a rising edge is compared against *pre-edge* floor.
        lag = min(self.power_window, x.size)
        baseline_lagged = np.concatenate(
            (np.full(lag, baseline[0]), baseline[: x.size - lag])
        )
        factor = 10.0 ** (self.threshold_db / 10.0)
        above = current > baseline_lagged * factor

        detections: List[int] = []
        last = -(10**9)
        crossings = np.flatnonzero(above[1:] & ~above[:-1]) + 1
        if above[0]:
            crossings = np.concatenate(([0], crossings))
        for idx in crossings:
            if idx < self.warmup_samples:
                continue
            if idx - last >= self.guard_samples:
                detections.append(int(idx))
                last = int(idx)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.count(C.FRAME_SYNC_DETECTIONS, len(detections))
            tracer.count(C.FRAME_SYNC_CROSSINGS, int(crossings.size))
            for idx in detections:
                # Detection margin: how far above the 3 dB threshold the
                # short-window power actually crossed (dB).
                lead = current[idx] / max(baseline_lagged[idx] * factor, 1e-30)
                tracer.gauge(G.FRAME_SYNC_LEAD_DB, 10.0 * np.log10(max(lead, 1e-30)))
        return FrameSyncResult(detections=detections)
