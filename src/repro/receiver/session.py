"""Supervised long-run streaming sessions.

:class:`~repro.receiver.streaming.StreamingReceiver` is a one-shot
batch walk: hand it a complete capture, get the frames back.  A
deployed receiver instead listens for hours -- samples arrive in
chunks, the decoder occasionally falls behind, tags drift off the chip
grid, and the process hosting the receiver gets killed and restarted.
:class:`SessionSupervisor` wraps the streaming walk with the
operational machinery such a deployment needs:

- **Chunked ingestion with a bounded backlog.**  ``feed(chunk)``
  accepts arbitrarily sized sample chunks; complete windows are
  processed as they become available.  When processing is
  rate-limited (``max_windows_per_feed``) and the backlog exceeds
  ``max_backlog_windows``, the *oldest* pending windows are shed --
  an explicit, counted policy (``session.windows_shed``) instead of
  unbounded buffering.

- **A health state machine** (:class:`HealthState`)::

      HEALTHY ⇄ DEGRADED        (decode-failure rate, latency watchdog)
         │          │
         └────┬─────┘  sustained live-but-undecodable streak
              ▼
           RESYNC ──(recovers)──▶ HEALTHY
              │
              └──(fail_after_resyncs exhausted)──▶ FAILED

  Transitions are driven by the decode-failure rate over recent
  *attempts* (windows where a user detection scored strongly -- see
  ``SessionConfig.attempt_score``) and a per-window latency watchdog.
  The watchdog uses wall-clock time and therefore only ever influences
  the HEALTHY/DEGRADED distinction -- never which frames are decoded --
  so session output stays bit-deterministic.

- **Automatic re-synchronisation.**  A sustained run of windows where
  a user detects strongly but nothing decodes (the signature of
  accumulated timing drift) enters RESYNC: the next acquisition re-runs the
  :class:`~repro.receiver.user_detection.UserDetector` over a window
  widened by ``resync_widen_factor`` so the correlation search covers
  offsets far beyond the normal hop.  Corrupt ingest (NaN/Inf samples,
  wrong rank) is quarantined at the boundary through
  :func:`repro.receiver.failures.sanitize_buffer` and counted.

- **Checkpoint/restore.**  :meth:`checkpoint` serialises the full
  session state -- stream position, bounded dedup table, health
  machine, pending frames, counters -- as JSONL behind a validated
  header line (the same header-validated resume format
  :mod:`repro.sim.sweep` uses for sweep checkpoints).
  :meth:`restore` refuses a checkpoint whose geometry does not match
  the receiver it is being attached to.  A killed session restored
  from its checkpoint and re-fed from ``position`` emits exactly the
  frames the uninterrupted run would have.

Frames are emitted in globally non-decreasing ``start_sample`` order:
a decoded frame is held in a small reorder buffer until the walk
position has passed it, at which point no later window can decode an
earlier frame.  The chaos-soak harness
(:mod:`repro.sim.experiments.soak`) checks that ordering -- along with
duplicate-freedom, bounded memory and shed/quarantine accounting -- as
machine-verifiable invariants over multi-thousand-window fault
campaigns.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.taxonomy import C, G, session_transition
from repro.obs.tracer import as_tracer
from repro.receiver.failures import sanitize_buffer
from repro.receiver.streaming import DedupTable, StreamFrame, StreamingReceiver

__all__ = ["HealthState", "SessionConfig", "SessionSupervisor", "CHECKPOINT_FORMAT"]

#: ``format`` field of the checkpoint header line.
CHECKPOINT_FORMAT = "cbma-session"
#: Version 2 added the buffer dtype to the geometry header (the
#: complex64 fast path must not resume onto a complex128 stack).
_CHECKPOINT_VERSION = 2


class HealthState(Enum):
    """Operational state of a supervised session."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    RESYNC = "resync"
    FAILED = "failed"


@dataclass(frozen=True)
class SessionConfig:
    """Tuning knobs of a :class:`SessionSupervisor`.

    Attributes
    ----------
    max_backlog_windows:
        Pending (complete, unprocessed) windows tolerated before the
        shedding policy drops the oldest.
    max_windows_per_feed:
        Windows processed per :meth:`SessionSupervisor.feed` call
        (``None`` = drain everything available).  Modelling a
        real-time budget; anything beyond it accumulates as backlog.
    health_window:
        Sliding window (in decode *attempts*, not raw windows -- soak
        traffic is sparse, and a window-indexed rate would never
        accumulate a sample) over which the failure rate is estimated.
    attempt_score:
        Detection score above which a window counts as an *attempt*: a
        user looked strongly present, so decoding nothing is a decode
        failure.  Deliberately above the detector's acceptance
        threshold -- short templates false-alarm on pure noise just
        over the threshold, and a health machine keyed to those would
        spiral on silence.
    min_attempts:
        Attempts required in the sliding window before rate-based
        transitions fire (avoids flapping on tiny samples).
    degrade_failure_rate / recover_failure_rate:
        Fraction of recent attempts decoding nothing above which
        HEALTHY degrades, and at-or-below which DEGRADED heals.
    resync_after:
        Consecutive failed attempts (strong detection, no decode --
        the signature of accumulated timing drift) that trigger RESYNC.
    fail_after_resyncs:
        RESYNC acquisitions allowed (without a successful decode)
        before the session declares FAILED.
    resync_widen_factor:
        Window-length multiplier for the widened RESYNC acquisition.
    watchdog_budget_s:
        Per-window wall-clock latency budget; a live window exceeding
        it trips the watchdog (``session.watchdog_trips``) and
        degrades health, but never alters decode output.
    """

    max_backlog_windows: int = 64
    max_windows_per_feed: Optional[int] = None
    health_window: int = 16
    attempt_score: float = 0.3
    min_attempts: int = 4
    degrade_failure_rate: float = 0.5
    recover_failure_rate: float = 0.25
    resync_after: int = 3
    fail_after_resyncs: int = 3
    resync_widen_factor: int = 2
    watchdog_budget_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_backlog_windows < 1:
            raise ValueError("max_backlog_windows must be >= 1")
        if self.max_windows_per_feed is not None and self.max_windows_per_feed < 1:
            raise ValueError("max_windows_per_feed must be >= 1 (or None)")
        if not 0.0 < self.attempt_score <= 1.0:
            raise ValueError("attempt_score must be in (0, 1]")
        if self.health_window < 1 or self.min_attempts < 1:
            raise ValueError("health_window and min_attempts must be >= 1")
        if not 0.0 <= self.recover_failure_rate <= self.degrade_failure_rate <= 1.0:
            raise ValueError(
                "need 0 <= recover_failure_rate <= degrade_failure_rate <= 1"
            )
        if self.resync_after < 1 or self.fail_after_resyncs < 1:
            raise ValueError("resync_after and fail_after_resyncs must be >= 1")
        if self.resync_widen_factor < 1:
            raise ValueError("resync_widen_factor must be >= 1")
        if self.watchdog_budget_s <= 0:
            raise ValueError("watchdog_budget_s must be positive")


#: One entry per decode attempt in the sliding health window: did it
#: yield a successful decode?
_Outcome = bool


class SessionSupervisor:
    """Long-run supervisor around a :class:`StreamingReceiver`.

    Parameters
    ----------
    streaming:
        The window-sliding receiver to supervise.
    config:
        Supervision policy (:class:`SessionConfig`).
    tracer:
        Optional :class:`repro.obs.Tracer`; session counters and
        gauges land under the ``session.*`` taxonomy family.
    clock:
        Monotonic time source for the latency watchdog (injectable for
        tests; defaults to :func:`time.perf_counter`).
    """

    def __init__(
        self,
        streaming: StreamingReceiver,
        config: Optional[SessionConfig] = None,
        tracer=None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.streaming = streaming
        self.config = config or SessionConfig()
        self.tracer = as_tracer(tracer)
        self.clock = clock

        # The ingest buffer follows the streaming stack's dtype (the
        # complex64 fast path must not silently widen here); stand-in
        # streams without a dtype attribute get the default.
        self._dtype = np.dtype(getattr(streaming, "dtype", np.complex128))
        self._buf = np.zeros(0, dtype=self._dtype)
        self._base = 0  # absolute sample index of _buf[0]
        self._pos = 0  # absolute sample index of the next window
        self._fed = 0  # absolute samples ingested so far
        self._finished = False
        self._gate_primed: Optional[bool] = None

        self.dedup = streaming.make_dedup()
        self._pending: List[StreamFrame] = []
        self._window_index = 0

        self._state = HealthState.HEALTHY
        self._recent: Deque[_Outcome] = deque(maxlen=self.config.health_window)
        self._nodecode_streak = 0
        self._resync_attempts = 0
        self.health_history: List[Tuple[int, str]] = [(0, HealthState.HEALTHY.value)]

        #: Session accounting, independent of the tracer (the soak
        #: invariants reconcile against these even with tracing off).
        self.stats: Dict[str, int] = {
            "windows": 0,
            "windows_live": 0,
            "windows_skipped": 0,
            "windows_shed": 0,
            "frames": 0,
            "duplicates": 0,
            "dedup_evictions": 0,
            "resyncs": 0,
            "watchdog_trips": 0,
            "quarantined": 0,
        }
        self.peak_backlog_windows = 0

    @classmethod
    def from_config(
        cls,
        config,
        *,
        codes=None,
        session: Optional[SessionConfig] = None,
        window_frames: float = 2.0,
        dtype=np.complex128,
        tracer=None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "SessionSupervisor":
        """Build a supervised session from one :class:`~repro.sim.network.CbmaConfig`.

        The full construction chain -- ``CbmaConfig`` ->
        :meth:`CbmaReceiver.from_config` ->
        :meth:`StreamingReceiver.from_config` -> supervisor -- in one
        call.  *session* is the supervision policy
        (:class:`SessionConfig`), *dtype* the ingest-buffer dtype
        (``complex64`` opts into the fast path).
        """
        streaming = StreamingReceiver.from_config(
            config,
            codes=codes,
            window_frames=window_frames,
            dtype=dtype,
            tracer=tracer,
        )
        return cls(streaming, config=session, tracer=tracer, clock=clock)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> HealthState:
        return self._state

    @property
    def position(self) -> int:
        """Absolute sample index of the next window to process.

        After :meth:`restore`, re-feed the capture from this index.
        """
        return self._pos

    @property
    def samples_fed(self) -> int:
        return self._fed

    @property
    def backlog_windows(self) -> int:
        """Complete windows buffered but not yet processed."""
        available = self._base + self._buf.size - self._pos
        if available < self.streaming.window_samples:
            return 0
        return 1 + (available - self.streaming.window_samples) // self.streaming.hop_samples

    @property
    def pending_frames(self) -> int:
        """Decoded frames held back for ordered emission."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def feed(self, chunk) -> List[StreamFrame]:
        """Ingest *chunk* and return the frames whose order is final.

        Corrupt chunks (NaN/Inf, wrong rank, uninterpretable) are
        quarantined through :func:`sanitize_buffer` -- repaired where
        possible, counted under ``session.quarantined`` -- so poisoned
        samples can never silently dark out the pre-gate.  In FAILED
        state the session stops decoding: everything fed is shed (and
        counted), never silently buffered.

        ``feed`` is exactly :meth:`ingest` followed by a full
        :meth:`pump`; the farm worker calls the two halves separately
        so it can co-schedule the window walk across sessions.
        """
        self.ingest(chunk)
        return self.pump()

    def ingest(self, chunk) -> int:
        """Sanitise and buffer *chunk* without processing any windows.

        Returns the number of samples accepted.  The chunk is always
        **copied** into the session's own buffer (never aliased), so
        callers may hand in views of shared or reused memory -- the
        farm's shared-memory ring slots -- and recycle them as soon as
        this returns.
        """
        if self._finished:
            raise RuntimeError("session is finished; create a new supervisor")
        x, failures = sanitize_buffer(chunk, dtype=self._dtype)
        if failures:
            self._count("quarantined", C.SESSION_QUARANTINED)
        self._buf = np.concatenate([self._buf, x])
        self._fed += x.size
        return int(x.size)

    def pump(
        self,
        max_windows: Optional[int] = None,
        drain_tail: bool = False,
        housekeep: bool = True,
    ) -> List[StreamFrame]:
        """Process buffered windows; return frames whose order is final.

        *max_windows* caps this call (``None`` defers to
        ``config.max_windows_per_feed``; ``0`` processes nothing, which
        with *housekeep* runs only shedding/trim/gauges).  *housekeep*
        =False skips backlog shedding and buffer trimming -- the farm's
        co-schedule loop pumps one window at a time across sessions and
        runs a single housekeeping pass per cycle, which is equivalent
        because shedding only looks at the backlog after the walk has
        drained every window it is allowed to.
        """
        if self._state is HealthState.FAILED:
            return self._shed_all() if housekeep else []
        emitted = self._process_available(drain_tail=drain_tail, limit=max_windows)
        if housekeep:
            self._shed_backlog()
            self._trim_buffer()
            if self.tracer.enabled:
                self.tracer.gauge(G.SESSION_BACKLOG_WINDOWS, self.backlog_windows)
            if self.backlog_windows > self.peak_backlog_windows:
                self.peak_backlog_windows = self.backlog_windows
        return emitted

    def peek_window(self) -> Optional[np.ndarray]:
        """The next complete window the walk would process, or ``None``.

        A view into the internal buffer (do not mutate), exactly the
        slice :meth:`pump` would hand the pre-gate next.  ``None`` when
        the session is finished, FAILED, or lacks a complete window --
        the farm uses this to stack gate-ready windows across sessions.
        """
        if self._finished or self._state is HealthState.FAILED:
            return None
        available = self._base + self._buf.size - self._pos
        if available < self._required_samples():
            return None
        lo = self._pos - self._base
        return self._buf[lo : lo + self._required_samples()]

    def prime_gate(self, live: bool) -> None:
        """Pre-supply the next window's pre-gate decision.

        The next window processed consumes *live* instead of calling
        ``streaming.window_is_live`` -- one-shot, cleared on use.  Only
        correct when the caller computed the decision over exactly the
        window :meth:`peek_window` returned (the farm's batched gate is
        bit-identical per row, so priming never changes output).
        """
        self._gate_primed = bool(live)

    def finish(self) -> List[StreamFrame]:
        """End of capture: process the truncated tail window (if any)
        and flush every frame still held for ordering."""
        if self._finished:
            return []
        self._finished = True
        emitted: List[StreamFrame] = []
        if self._state is not HealthState.FAILED:
            emitted.extend(self._process_available(drain_tail=True))
        remaining = sorted(self._pending, key=lambda f: (f.start_sample, f.user_id))
        self._pending.clear()
        return emitted + remaining

    # ------------------------------------------------------------------
    # The window walk
    # ------------------------------------------------------------------

    def _required_samples(self) -> int:
        """Samples the next acquisition wants available past ``_pos``.

        RESYNC widens the window so the correlation search covers
        offsets far beyond one hop.  Making the walk wait for the full
        span (instead of processing whatever happens to be buffered)
        keeps decode output independent of chunking cadence -- the
        property checkpoint/restore equality rests on.
        """
        widen = self.config.resync_widen_factor if self._state is HealthState.RESYNC else 1
        return self.streaming.window_samples * widen

    def _process_available(
        self, drain_tail: bool, limit: Optional[int] = None
    ) -> List[StreamFrame]:
        emitted: List[StreamFrame] = []
        processed = 0
        if limit is None:
            limit = self.config.max_windows_per_feed
        while self._state is not HealthState.FAILED:
            if limit is not None and processed >= limit:
                break
            available = self._base + self._buf.size - self._pos
            if available < self._required_samples() and not drain_tail:
                break
            if available <= 0:
                break
            self._process_one_window()
            processed += 1
            emitted.extend(self._release_ordered())
        return emitted

    def _process_one_window(self) -> None:
        lo = self._pos - self._base
        window = self._buf[lo : lo + self._required_samples()]
        self._count("windows", C.SESSION_WINDOWS)
        t0 = self.clock()
        if self._gate_primed is not None:
            live = self._gate_primed
            self._gate_primed = None
        else:
            live = self.streaming.window_is_live(window)
        decoded_any = False
        attempted = False
        if live:
            self._count("windows_live", C.SESSION_WINDOWS_LIVE)
            with self.tracer.span("session_window", index=self._window_index):
                new_frames, report = self.streaming.decode_window(window, self._pos, self.dedup)
            # Health judges the *pipeline*, not emission novelty: a
            # window that re-decodes a frame already emitted through
            # the previous (overlapping) window decoded fine -- the
            # dedup suppressing it is correct operation, not failure.
            decoded_any = any(f.success for f in report.frames)
            # And it only counts as a decode *attempt* when some user
            # looked strongly present (short templates false-alarm on
            # noise just above the acceptance threshold), at an offset
            # whose frame fits inside the window (a frame straddling
            # the trailing edge is the next window's job), and without
            # a just-decoded frame of the same user still overlapping
            # this window -- whose payload correlation images would
            # otherwise read as failures on every healthy decode.
            fs = self.streaming.frame_samples
            attempted = any(
                d.score >= self.config.attempt_score
                and d.offset + fs <= window.size
                and not self.dedup.user_active_since(d.user_id, self._pos - fs)
                for d in report.detections
            )
            duplicates = sum(1 for f in report.frames if f.success) - len(new_frames)
            if duplicates > 0:
                self._count("duplicates", C.SESSION_DUPLICATES, duplicates)
            if new_frames:
                self._count("frames", C.SESSION_FRAMES, len(new_frames))
                self._pending.extend(new_frames)
        else:
            self._count("windows_skipped", C.SESSION_WINDOWS_SKIPPED)
        latency = self.clock() - t0
        watchdog_tripped = live and latency > self.config.watchdog_budget_s
        if watchdog_tripped:
            self._count("watchdog_trips", C.SESSION_WATCHDOG_TRIPS)
        if self.tracer.enabled:
            if live:
                self.tracer.gauge(G.SESSION_WINDOW_LATENCY_S, latency)
            self.tracer.gauge(G.SESSION_DEDUP_SIZE, len(self.dedup))

        self._advance()
        self._update_health(attempted, decoded_any, watchdog_tripped)

    def _advance(self) -> None:
        self._pos += self.streaming.hop_samples
        self._window_index += 1
        evicted = self.dedup.evict_before(self._pos - self.streaming.window_samples)
        if evicted:
            self._count("dedup_evictions", C.SESSION_DEDUP_EVICTIONS, evicted)

    def _release_ordered(self) -> List[StreamFrame]:
        """Frames whose global order is now final (start < ``_pos``).

        Every future decode starts at or after ``_pos``, so releasing
        the pending frames below it -- sorted -- yields a globally
        non-decreasing ``start_sample`` emission order.
        """
        ready = [f for f in self._pending if f.start_sample < self._pos]
        if not ready:
            return []
        self._pending = [f for f in self._pending if f.start_sample >= self._pos]
        ready.sort(key=lambda f: (f.start_sample, f.user_id))
        return ready

    # ------------------------------------------------------------------
    # Backlog shedding
    # ------------------------------------------------------------------

    def _shed_backlog(self) -> None:
        while self.backlog_windows > self.config.max_backlog_windows:
            self._pos += self.streaming.hop_samples
            self._window_index += 1
            self._count("windows_shed", C.SESSION_WINDOWS_SHED)
            self.dedup.evict_before(self._pos - self.streaming.window_samples)

    def _shed_all(self) -> List[StreamFrame]:
        """FAILED state: count every pending window as shed, keep nothing."""
        while self.backlog_windows > 0:
            self._pos += self.streaming.hop_samples
            self._window_index += 1
            self._count("windows_shed", C.SESSION_WINDOWS_SHED)
        self._trim_buffer()
        return []

    def _trim_buffer(self) -> None:
        """Drop samples before ``_pos`` (never needed again)."""
        cut = self._pos - self._base
        if cut > 0:
            self._buf = self._buf[cut:]
            self._base = self._pos

    # ------------------------------------------------------------------
    # Health state machine
    # ------------------------------------------------------------------

    def _update_health(self, attempted: bool, decoded_any: bool, watchdog_tripped: bool) -> None:
        if attempted or decoded_any:
            self._recent.append(decoded_any)
        if attempted and not decoded_any:
            self._nodecode_streak += 1
        elif decoded_any:
            self._nodecode_streak = 0

        state = self._state
        if state is HealthState.FAILED:
            return

        if state is HealthState.RESYNC:
            if decoded_any:
                self._resync_attempts = 0
                self._transition(HealthState.HEALTHY)
            elif attempted:
                self._resync_attempts += 1
                if self._resync_attempts >= self.config.fail_after_resyncs:
                    self._transition(HealthState.FAILED)
            return

        if self._nodecode_streak >= self.config.resync_after:
            self._resync_attempts = 0
            self._count("resyncs", C.SESSION_RESYNCS)
            self._transition(HealthState.RESYNC)
            return

        n_attempts = len(self._recent)
        failure_rate = (
            sum(1 for ok in self._recent if not ok) / n_attempts if n_attempts else 0.0
        )
        if watchdog_tripped or (
            n_attempts >= self.config.min_attempts
            and failure_rate >= self.config.degrade_failure_rate
        ):
            if state is HealthState.HEALTHY:
                self._transition(HealthState.DEGRADED)
        elif (
            state is HealthState.DEGRADED
            and n_attempts >= self.config.min_attempts
            and failure_rate <= self.config.recover_failure_rate
        ):
            self._transition(HealthState.HEALTHY)

    def _transition(self, to: HealthState) -> None:
        if to is self._state:
            return
        self._state = to
        self.health_history.append((self._window_index, to.value))
        if self.tracer.enabled:
            self.tracer.count(session_transition(to.value))

    def _count(self, stat: str, counter: str, n: int = 1) -> None:
        self.stats[stat] += n
        if self.tracer.enabled:
            self.tracer.count(counter, n)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def _geometry(self) -> Dict[str, object]:
        return {
            "window_samples": self.streaming.window_samples,
            "hop_samples": self.streaming.hop_samples,
            "max_frame_bits": self.streaming.max_frame_bits,
            "n_users": len(self.streaming.receiver.codes),
            "dtype": self._dtype.name,
        }

    def checkpoint_records(self) -> List[dict]:
        """The full session state as JSON-serialisable records.

        Layout (same pattern as :mod:`repro.sim.sweep` checkpoints): a
        ``header`` record pinning format, version and receiver
        geometry; one ``state`` record with position, health machine
        and counters; one ``dedup`` record per live dedup entry; one
        ``pending`` record per frame held for ordered emission; one
        ``history`` record per health transition.  This is the
        farm's migration payload -- records travel over a queue and
        rebuild bit-identically on another worker through
        :meth:`from_checkpoint_records` without touching disk;
        :meth:`checkpoint` is the same records written to a file.
        """
        lines: List[dict] = [
            {
                "type": "header",
                "format": CHECKPOINT_FORMAT,
                "version": _CHECKPOINT_VERSION,
                **self._geometry(),
            },
            {
                "type": "state",
                "pos": self._pos,
                "window_index": self._window_index,
                "samples_fed": self._fed,
                "health": self._state.value,
                "recent": [bool(v) for v in self._recent],
                "nodecode_streak": self._nodecode_streak,
                "resync_attempts": self._resync_attempts,
                "stats": dict(self.stats),
                "peak_dedup": self.dedup.peak_size,
                "dedup_evictions": self.dedup.evictions,
                "peak_backlog_windows": self.peak_backlog_windows,
            },
        ]
        lines.extend({"type": "dedup", **rec} for rec in self.dedup.to_records())
        lines.extend(
            {
                "type": "pending",
                "user": f.user_id,
                "payload": f.payload.hex(),
                "start": f.start_sample,
            }
            for f in self._pending
        )
        lines.extend(
            {"type": "history", "window": w, "state": s} for w, s in self.health_history
        )
        if self.tracer.enabled:
            self.tracer.count(C.SESSION_CHECKPOINTS)
        return lines

    def checkpoint(self, path) -> Path:
        """Write :meth:`checkpoint_records` as header-validated JSONL.

        The write is atomic (temp file + rename), so a kill
        mid-checkpoint leaves the previous checkpoint intact.
        """
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as fh:
            for rec in self.checkpoint_records():
                fh.write(json.dumps(rec) + "\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def from_checkpoint_records(
        cls,
        records: List[dict],
        streaming: StreamingReceiver,
        config: Optional[SessionConfig] = None,
        tracer=None,
        clock: Callable[[], float] = time.perf_counter,
        source: str = "checkpoint records",
    ) -> "SessionSupervisor":
        """Rebuild a supervisor from :meth:`checkpoint_records` output.

        The header is validated against *streaming*'s geometry --
        restoring onto a receiver with a different window/hop/code-book
        shape (or buffer dtype) is a :class:`ValueError`, exactly like
        resuming a mismatched sweep checkpoint.  Resume by re-feeding
        the capture from :attr:`position`.
        """
        if not records or records[0].get("type") != "header":
            raise ValueError(f"{source} has no header line; refusing to restore")
        header = records[0]
        if header.get("format") != CHECKPOINT_FORMAT:
            raise ValueError(
                f"{source} is not a session checkpoint "
                f"(format={header.get('format')!r})"
            )
        if header.get("version") != _CHECKPOINT_VERSION:
            raise ValueError(
                f"{source} has version {header.get('version')}, "
                f"expected {_CHECKPOINT_VERSION}"
            )
        session = cls(streaming, config=config, tracer=tracer, clock=clock)
        geometry = session._geometry()
        for key, expected in geometry.items():
            got = header.get(key)
            if got != expected:
                raise ValueError(
                    f"{source} belongs to a different session geometry "
                    f"({key}={got}, this receiver has {key}={expected})"
                )

        states = [rec for rec in records if rec.get("type") == "state"]
        if len(states) != 1:
            raise ValueError(f"{source} has {len(states)} state records, expected 1")
        state = states[0]
        session._pos = int(state["pos"])
        session._base = session._pos
        session._fed = int(state["samples_fed"])
        session._window_index = int(state["window_index"])
        session._state = HealthState(state["health"])
        session._recent = deque(
            (bool(v) for v in state.get("recent", [])),
            maxlen=session.config.health_window,
        )
        session._nodecode_streak = int(state.get("nodecode_streak", 0))
        session._resync_attempts = int(state.get("resync_attempts", 0))
        session.stats.update({k: int(v) for k, v in state.get("stats", {}).items()})
        session.peak_backlog_windows = int(state.get("peak_backlog_windows", 0))

        session.dedup = DedupTable.from_records(
            streaming.frame_samples // 2,
            (rec for rec in records if rec.get("type") == "dedup"),
            evictions=int(state.get("dedup_evictions", 0)),
            peak_size=int(state.get("peak_dedup", 0)),
        )
        session._pending = [
            StreamFrame(
                user_id=int(rec["user"]),
                payload=bytes.fromhex(rec["payload"]),
                start_sample=int(rec["start"]),
            )
            for rec in records
            if rec.get("type") == "pending"
        ]
        session.health_history = [
            (int(rec["window"]), str(rec["state"]))
            for rec in records
            if rec.get("type") == "history"
        ] or [(0, HealthState.HEALTHY.value)]
        tr = session.tracer
        if tr.enabled:
            tr.count(C.SESSION_RESTORES)
        return session

    @classmethod
    def restore(
        cls,
        path,
        streaming: StreamingReceiver,
        config: Optional[SessionConfig] = None,
        tracer=None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "SessionSupervisor":
        """Rebuild a supervisor from a :meth:`checkpoint` file."""
        path = Path(path)
        with open(path, "r") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        return cls.from_checkpoint_records(
            records,
            streaming,
            config=config,
            tracer=tracer,
            clock=clock,
            source=f"checkpoint {path}",
        )
