"""Acknowledgement messages (paper Sec. III-B).

"The receiver broadcasts the acknowledgement message to the backscatter
tags to indicate the ID of the successfully decoded tags."  The ACK is
the only feedback a tag ever receives and is what drives Algorithm 1's
power control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

__all__ = ["AckMessage"]


@dataclass(frozen=True)
class AckMessage:
    """One broadcast ACK: the set of tag ids decoded this round."""

    decoded_ids: FrozenSet[int] = field(default_factory=frozenset)
    round_index: int = 0

    @classmethod
    def for_ids(cls, ids: Iterable[int], round_index: int = 0) -> "AckMessage":
        return cls(decoded_ids=frozenset(int(i) for i in ids), round_index=round_index)

    def acknowledges(self, tag_id: int) -> bool:
        """True when *tag_id* was decoded this round."""
        return int(tag_id) in self.decoded_ids

    def __len__(self) -> int:
        return len(self.decoded_ids)
