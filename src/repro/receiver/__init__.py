"""The CBMA receiver: frame sync, user detection, decoding, ACK.

- :mod:`repro.receiver.frame_sync` -- sliding-window energy detection.
- :mod:`repro.receiver.user_detection` -- per-PN-code preamble
  correlation with timing and channel estimation.
- :mod:`repro.receiver.decoder` -- coherent chip-correlation decoding.
- :mod:`repro.receiver.ack` -- acknowledgement broadcast.
- :mod:`repro.receiver.receiver` -- the composed pipeline.
- :mod:`repro.receiver.sic` -- successive interference cancellation
  extension (receiver-side near-far mitigation).
- :mod:`repro.receiver.diversity` -- multi-antenna MRC extension.
- :mod:`repro.receiver.streaming` -- continuous-stream reception.
- :mod:`repro.receiver.session` -- supervised long-run sessions
  (health state machine, checkpoint/restore).
- :mod:`repro.receiver.phase_tracking` -- CFO-tolerant decoding.
"""

from repro.receiver.ack import AckMessage
from repro.receiver.decoder import ChipDecoder, DecodedFrame
from repro.receiver.failures import DecodeFailure, sanitize_buffer
from repro.receiver.frame_sync import EnergyDetector, FrameSyncResult
from repro.receiver.diversity import DiversityReceiver
from repro.receiver.receiver import CbmaReceiver, ReceptionReport
from repro.receiver.phase_tracking import PhaseTrackingReceiver
from repro.receiver.session import HealthState, SessionConfig, SessionSupervisor
from repro.receiver.sic import SicReceiver
from repro.receiver.streaming import DedupTable, StreamFrame, StreamingReceiver
from repro.receiver.user_detection import UserDetection, UserDetector

__all__ = [
    "AckMessage",
    "ChipDecoder",
    "DecodedFrame",
    "DecodeFailure",
    "sanitize_buffer",
    "EnergyDetector",
    "FrameSyncResult",
    "CbmaReceiver",
    "ReceptionReport",
    "SicReceiver",
    "PhaseTrackingReceiver",
    "DiversityReceiver",
    "StreamFrame",
    "StreamingReceiver",
    "DedupTable",
    "HealthState",
    "SessionConfig",
    "SessionSupervisor",
    "UserDetection",
    "UserDetector",
]
