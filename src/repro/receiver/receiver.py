"""The full CBMA receiver pipeline.

Chains the four stages of paper Sec. III-B over a raw sample buffer:

1. frame synchronisation (energy detection),
2. user detection (preamble cross-correlation per PN code),
3. chip decoding (coherent correlation, progressive length parsing),
4. acknowledgement (broadcast of decoded tag ids).

The receiver owns no ground truth: everything -- timing, channel
gains, who transmitted -- is estimated from the samples, so simulated
error rates reflect the real algorithmic weaknesses (asynchrony and
near-far) the paper sets out to fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.obs.taxonomy import C, G, decode_outcome
from repro.obs.tracer import as_tracer
from repro.receiver.ack import AckMessage
from repro.receiver.decoder import ChipDecoder, DecodedFrame
from repro.receiver.failures import DecodeFailure, sanitize_buffer
from repro.receiver.frame_sync import EnergyDetector, FrameSyncResult
from repro.receiver.user_detection import UserDetection, UserDetector
from repro.tag.framing import FrameFormat

__all__ = ["CbmaReceiver", "ReceptionReport"]


@dataclass
class ReceptionReport:
    """Everything the receiver concluded about one buffer."""

    sync: FrameSyncResult
    detections: List[UserDetection] = field(default_factory=list)
    frames: List[DecodedFrame] = field(default_factory=list)
    ack: AckMessage = field(default_factory=AckMessage)
    failures: List[DecodeFailure] = field(default_factory=list)
    """Contained pipeline failures (degradation contract: the pipeline
    never raises; it records what went wrong here instead)."""

    @property
    def degraded(self) -> bool:
        """True when any stage had to degrade instead of completing."""
        return bool(self.failures)

    def frame_for(self, user_id: int) -> Optional[DecodedFrame]:
        """The decode outcome for *user_id*, if it was detected."""
        for frame in self.frames:
            if frame.user_id == user_id:
                return frame
        return None

    def decoded_payloads(self) -> Dict[int, bytes]:
        """Mapping user id -> payload for successful decodes."""
        return {f.user_id: f.payload for f in self.frames if f.success}


class CbmaReceiver:
    """Multi-user backscatter receiver.

    Parameters
    ----------
    codes:
        Mapping tag id -> PN code for every tag in the group ("the
        receiver uses all the PN codes of the tags in the group").
    fmt:
        Frame format shared with the tags.
    samples_per_chip:
        Oversampling factor of the incoming buffer.
    detector:
        Energy detector (frame sync); defaults tuned for the
        simulator's buffer sizes.
    user_threshold:
        Normalised-correlation threshold for user detection.
    dc_block:
        Subtract the buffer mean before processing.  Off by default
        (the calibrated paper pipeline assumes a tone-free shifted
        band); enable when the excitation carrier leaks into the
        capture as a constant offset.
    tracer:
        Optional :class:`repro.obs.Tracer`; when given, every pipeline
        stage records spans, counters and gauges.  ``None`` (default)
        keeps the hot path free of observation cost.

    Prefer :meth:`from_config` over passing loose keyword arguments:
    it derives everything from a :class:`~repro.sim.network.CbmaConfig`
    so the config fields are not duplicated at each call site.
    """

    def __init__(
        self,
        codes: Dict[int, np.ndarray],
        fmt: Optional[FrameFormat] = None,
        samples_per_chip: int = 1,
        detector: Optional[EnergyDetector] = None,
        user_threshold: float = 0.12,
        dc_block: bool = False,
        tracer=None,
    ):
        self.dc_block = dc_block
        self.tracer = as_tracer(tracer)
        self.fmt = fmt or FrameFormat()
        self.samples_per_chip = int(samples_per_chip)
        self.codes = {int(uid): np.asarray(c, dtype=np.uint8) for uid, c in codes.items()}
        self.energy_detector = detector or EnergyDetector()
        if getattr(self.energy_detector, "tracer", None) is None and self.tracer.enabled:
            self.energy_detector.tracer = self.tracer
        self.user_detector = UserDetector(
            self.codes, self.fmt, samples_per_chip=self.samples_per_chip, threshold=user_threshold
        )
        self._decoders = {
            uid: ChipDecoder(code, self.fmt, self.samples_per_chip, tracer=self.tracer)
            for uid, code in self.codes.items()
        }

    @classmethod
    def from_config(
        cls,
        config,
        *,
        codes: Optional[Dict[int, np.ndarray]] = None,
        tracer=None,
        detector: Optional[EnergyDetector] = None,
        dc_block: bool = False,
        **kwargs,
    ) -> "CbmaReceiver":
        """Build a receiver from a :class:`~repro.sim.network.CbmaConfig`.

        This is the one supported construction path: frame format,
        oversampling and detection threshold come straight from the
        config instead of being re-typed as loose kwargs at every call
        site.  *codes* defaults to the config's code family over
        tag ids ``0..n_tags-1``; subclass-specific options (e.g.
        ``max_passes`` for :class:`~repro.receiver.sic.SicReceiver`)
        pass through ``**kwargs``.
        """
        if codes is None:
            from repro.codes.registry import make_codes

            generated = make_codes(config.code_family, config.n_tags, config.code_length)
            codes = {i: generated[i] for i in range(config.n_tags)}
        return cls(
            codes,
            fmt=config.frame_format(),
            samples_per_chip=config.samples_per_chip,
            detector=detector,
            user_threshold=config.user_threshold,
            dc_block=dc_block,
            tracer=tracer,
            **kwargs,
        )

    def _contain(self, report: ReceptionReport, failure: DecodeFailure) -> None:
        """Record a contained pipeline failure (degradation contract)."""
        report.failures.append(failure)
        if self.tracer.enabled:
            self.tracer.count(failure.counter)

    def _front_end(self, iq, report_failures: List[DecodeFailure]) -> np.ndarray:
        """Input hygiene shared with :class:`~repro.receiver.sic.SicReceiver`."""
        x, failures = sanitize_buffer(iq)
        for failure in failures:
            report_failures.append(failure)
            if self.tracer.enabled:
                self.tracer.count(failure.counter)
        if self.dc_block and x.size:
            # Carrier-leak blocker (opt-in): a constant offset would
            # swamp the energy detector's baseline and the correlators'
            # local energy normalisation.
            x = x - np.mean(x)
        return x

    def process(self, iq: np.ndarray, round_index: int = 0, skip_energy_gate: bool = False) -> ReceptionReport:
        """Run the full pipeline over a complex sample buffer.

        When *skip_energy_gate* is set the user detector scans the
        whole buffer even without an energy detection -- used by
        experiments that isolate later stages (paper Sec. VII-B2
        "adopt the best parameters obtained in the above section").

        Degradation contract: this method never raises on malformed or
        pathological input.  Bad samples are sanitised at the front
        end, and a stage that blows up is contained into a
        :class:`DecodeFailure` on ``report.failures`` (counted under
        ``errors.pipeline.*``) while the rest of the pipeline carries
        on with whatever the earlier stages produced.
        """
        tracer = self.tracer
        report = ReceptionReport(sync=FrameSyncResult(detections=[]))
        x = self._front_end(iq, report.failures)
        try:
            with tracer.span("frame_sync"):
                report.sync = self.energy_detector.detect(x)
        except Exception as exc:
            self._contain(report, DecodeFailure("frame_sync", "exception", detail=str(exc)))
        sync = report.sync
        if not sync.detected and not skip_energy_gate:
            tracer.count(C.FRAME_SYNC_MISSES)
            report.ack = AckMessage.for_ids([], round_index)
            return report

        try:
            with tracer.span("detect"):
                report.detections = self.user_detector.detect(x)
        except Exception as exc:
            self._contain(report, DecodeFailure("user_detection", "exception", detail=str(exc)))
        if tracer.enabled:
            tracer.count(C.DETECT_USERS, len(report.detections))
            for det in report.detections:
                tracer.gauge(G.DETECT_SCORE, det.score)
                if det.candidates and len(det.candidates) > 1:
                    # Margin of the chosen correlation peak over the
                    # runner-up alignment hypothesis.
                    scores = sorted((s for _o, s, _c in det.candidates), reverse=True)
                    tracer.gauge(G.DETECT_PEAK_MARGIN, scores[0] - scores[1])
        for det in report.detections:
            decoder = self._decoders[det.user_id]
            # Multi-hypothesis decoding: the alternating preamble has
            # +/-k-bit correlation images the detector cannot resolve
            # by magnitude, so each near-maximal alignment is tried
            # (earliest first) until one yields a CRC-valid frame
            # (false-accept is 2^-16 per attempt, negligible across
            # the handful of hypotheses).
            candidates = det.candidates or ((det.offset, det.score, det.channel),)
            frame = None
            try:
                with tracer.span("decode", user=det.user_id):
                    for offset, _score, channel in candidates:
                        attempt = decoder.decode_frame(x, offset, channel, user_id=det.user_id)
                        if frame is None or (attempt.success and not frame.success):
                            frame = attempt
                        if attempt.success:
                            break
            except Exception as exc:
                # Contain a decoder blow-up as a per-user failed frame:
                # the report still accounts for the detection, and the
                # other users' decodes proceed untouched.
                self._contain(
                    report,
                    DecodeFailure("decode", "exception", user_id=det.user_id, detail=str(exc)),
                )
                frame = DecodedFrame(
                    user_id=det.user_id, success=False, payload=None, reason="exception"
                )
            tracer.count(decode_outcome(frame.reason))
            report.frames.append(frame)

        try:
            self._suppress_ghosts(report)
        except Exception as exc:
            self._contain(report, DecodeFailure("decode", "ghost_suppression", detail=str(exc)))

        try:
            report.ack = AckMessage.for_ids(
                (f.user_id for f in report.frames if f.success), round_index
            )
        except Exception as exc:
            self._contain(report, DecodeFailure("ack", "exception", detail=str(exc)))
            report.ack = AckMessage.for_ids([], round_index)
        return report

    def _suppress_ghosts(self, report: ReceptionReport) -> None:
        """Deduplicate identical frames decoded under several codes.

        With antipodal encoding, correlating a strong tag's signal
        against a *wrong* code is merely a scaled matched filter: both
        the per-bit statistic and the channel estimate pick up the same
        cross-correlation factor, so the strong frame decodes bit-exact
        (CRC and all) under other tags' identities.  A real receiver
        resolves this exactly as done here: frames with identical
        content are collapsed onto the correlator with the highest
        detection score, and the rest are rejected as correlation
        ghosts.
        """
        scores = {d.user_id: d.score for d in report.detections}
        by_payload: Dict[bytes, List[int]] = {}
        for idx, frame in enumerate(report.frames):
            if frame.success and frame.payload is not None:
                by_payload.setdefault(frame.payload, []).append(idx)
        for indices in by_payload.values():
            if len(indices) < 2:
                continue
            keep = max(indices, key=lambda i: scores.get(report.frames[i].user_id, 0.0))
            for i in indices:
                if i == keep:
                    continue
                self.tracer.count(C.DECODE_GHOST)
                ghost = report.frames[i]
                report.frames[i] = DecodedFrame(
                    user_id=ghost.user_id,
                    success=False,
                    payload=None,
                    reason="ghost",
                    raw_bits=ghost.raw_bits,
                )
