"""Graceful-degradation support for the receiver pipeline.

The degradation contract (docs/resilience.md): no exception may escape
:meth:`CbmaReceiver.process`.  A malformed buffer or a stage blowing up
on pathological input degrades into a :class:`DecodeFailure` recorded
on the :class:`~repro.receiver.receiver.ReceptionReport` -- the report
always comes back, losses stay attributable, and the MAC loop above
keeps running.

Two pieces live here:

- :class:`DecodeFailure`, the structured record of one contained
  failure (which stage, a short reason code, optional user id);
- :func:`sanitize_buffer`, the receiver front end's input hygiene:
  whatever the caller hands in is coerced to a 1-D complex array and
  non-finite samples (a saturated/faulted ADC emitting NaN/Inf) are
  zeroed rather than poisoning every correlation downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.taxonomy import pipeline_failure

__all__ = ["DecodeFailure", "sanitize_buffer"]


@dataclass(frozen=True)
class DecodeFailure:
    """One contained failure inside the receiver pipeline.

    Attributes
    ----------
    stage:
        Pipeline stage that failed: ``"input"``, ``"frame_sync"``,
        ``"user_detection"``, ``"decode"``, ``"sic"`` or ``"ack"``.
    reason:
        Short machine-readable code (``"non_finite"``, ``"not_1d"``,
        ``"exception"``, ...); the tracer counter is
        ``errors.pipeline.<stage>.<reason>``.
    user_id:
        The affected user when the failure is per-user, else ``None``.
    detail:
        Free-form human-readable context (exception text, counts).
    """

    stage: str
    reason: str
    user_id: Optional[int] = None
    detail: str = ""

    @property
    def counter(self) -> str:
        """The tracer/error-budget counter slug for this failure.

        Built via the taxonomy's checked constructor, so a stage or
        reason the registry does not declare raises here instead of
        opening an unaccounted error-budget bucket.
        """
        return pipeline_failure(self.stage, self.reason)


def sanitize_buffer(iq, dtype=np.complex128) -> Tuple[np.ndarray, List[DecodeFailure]]:
    """Coerce *iq* into a finite 1-D complex buffer of *dtype*.

    Returns the cleaned buffer plus the :class:`DecodeFailure` records
    describing what had to be repaired (empty list for healthy input).
    Inputs that cannot be interpreted as samples at all (wrong dtype,
    wrong rank) degrade to an empty buffer rather than raising.
    *dtype* defaults to ``complex128``; a session running the
    ``complex64`` fast path passes its own dtype so hygiene does not
    silently widen the buffer at the ingest boundary.
    """
    dtype = np.dtype(dtype)
    failures: List[DecodeFailure] = []
    try:
        x = np.asarray(iq)
        if x.ndim != 1:
            failures.append(
                DecodeFailure("input", "not_1d", detail=f"ndim={x.ndim}, coerced via ravel")
            )
            x = x.ravel()
        x = np.asarray(x, dtype=dtype)
    except (TypeError, ValueError) as exc:
        failures.append(DecodeFailure("input", "uninterpretable", detail=str(exc)))
        return np.zeros(0, dtype=dtype), failures

    bad = ~np.isfinite(x.real) | ~np.isfinite(x.imag)
    if bad.any():
        n_bad = int(bad.sum())
        failures.append(
            DecodeFailure("input", "non_finite", detail=f"{n_bad} non-finite samples zeroed")
        )
        x = x.copy()
        x[bad] = 0.0
    return x, failures
