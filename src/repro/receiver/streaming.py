"""Streaming reception: many frames per tag in one continuous buffer.

The round-based simulator hands the receiver one collision at a time,
but a deployed receiver listens *continuously*: frames from different
tags start whenever their tags please and overlap partially or not at
all.  :class:`StreamingReceiver` walks a long buffer with overlapping
windows, decodes every frame it can, and deduplicates decodes of the
same frame seen through neighbouring windows.

This is what makes fully **unslotted** CBMA (``repro.sim.unslotted``)
measurable: the paper's "distributed manner" requirement taken to its
logical end, where not even round boundaries are shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.receiver.receiver import CbmaReceiver

__all__ = ["StreamingReceiver", "StreamFrame"]

#: Live-window pre-gate margin: a window is handed to the full
#: pipeline when any user's batched correlation reaches this fraction
#: of the detection threshold.  Kept fractionally below 1.0 so FFT
#: rounding (~1e-12 relative) can never gate out a window the direct
#: per-user path would have decoded.
_PREGATE_MARGIN = 0.999


@dataclass(frozen=True)
class StreamFrame:
    """One frame decoded from the stream."""

    user_id: int
    payload: bytes
    start_sample: int
    """Absolute sample index where the frame's preamble begins."""


@dataclass
class StreamingReceiver:
    """Window-sliding wrapper around a :class:`CbmaReceiver`.

    Parameters
    ----------
    receiver:
        The underlying single-window receiver (plain, SIC...).
    window_frames:
        Window length in units of the *maximum expected frame airtime*;
        2.0 guarantees any frame lies wholly inside at least one window
        when the hop is one frame.
    max_frame_bits:
        Upper bound on frame length in bits (sets the window size).
    """

    receiver: CbmaReceiver
    max_frame_bits: int = 160
    window_frames: float = 2.0

    def __post_init__(self) -> None:
        if self.max_frame_bits < 1:
            raise ValueError("max_frame_bits must be >= 1")
        if self.window_frames < 1.5:
            raise ValueError("window must cover at least 1.5 frames")
        code_len = next(iter(self.receiver.codes.values())).size
        self._frame_samples = (
            self.max_frame_bits * code_len * self.receiver.samples_per_chip
        )

    @property
    def window_samples(self) -> int:
        return int(self._frame_samples * self.window_frames)

    @property
    def hop_samples(self) -> int:
        return self._frame_samples

    def _window_is_live(self, window: np.ndarray) -> bool:
        """Cheap batched pre-gate: could any user clear the detection
        threshold inside *window*?

        One batched FFT pass over the stacked template bank replaces
        the full per-window pipeline for silent stretches -- the
        common case of a sparse unslotted stream.  The gate uses the
        same kernel and normalisation as the detector itself (margin
        :data:`_PREGATE_MARGIN` below threshold), so a window it skips
        is one the detector would have returned no users for.
        """
        threshold = self.receiver.user_detector.threshold * _PREGATE_MARGIN
        for _uid, corr in self.receiver.user_detector.correlation_rows(window):
            if corr.size and float(corr.max()) >= threshold:
                return True
        return False

    def process_stream(self, iq: np.ndarray) -> List[StreamFrame]:
        """Decode every recoverable frame in *iq* (absolute positions).

        The window walk is two-tier: every hop first runs the batched
        correlation pre-gate (:meth:`_window_is_live`), and only live
        windows pay for the full detect/decode pipeline.  With a
        tracer attached to the underlying receiver, each live window
        is timed under a ``stream_decode`` span.
        """
        x = np.asarray(iq)
        tracer = self.receiver.tracer
        frames: List[StreamFrame] = []
        seen: Dict[tuple, int] = {}
        pos = 0
        while pos < x.size:
            window = x[pos : pos + self.window_samples]
            if window.size < self.window_samples // 4:
                break
            if not self._window_is_live(window):
                pos += self.hop_samples
                continue
            with tracer.span("stream_decode"):
                report = self.receiver.process(window, skip_energy_gate=True)
            det_offsets = {d.user_id: d.offset for d in report.detections}
            for frame in report.frames:
                if not frame.success:
                    continue
                offset = det_offsets.get(frame.user_id, 0)
                start = pos + offset
                # The same frame decoded through two overlapping windows
                # lands at (nearly) the same absolute start: dedup on
                # (user, payload) within half a frame of a previous hit.
                key = (frame.user_id, frame.payload)
                prev = seen.get(key)
                if prev is not None and abs(start - prev) < self._frame_samples // 2:
                    continue
                seen[key] = start
                frames.append(
                    StreamFrame(
                        user_id=frame.user_id, payload=frame.payload, start_sample=start
                    )
                )
            pos += self.hop_samples
        frames.sort(key=lambda f: f.start_sample)
        return frames
