"""Streaming reception: many frames per tag in one continuous buffer.

The round-based simulator hands the receiver one collision at a time,
but a deployed receiver listens *continuously*: frames from different
tags start whenever their tags please and overlap partially or not at
all.  :class:`StreamingReceiver` walks a long buffer with overlapping
windows, decodes every frame it can, and deduplicates decodes of the
same frame seen through neighbouring windows.

This is what makes fully **unslotted** CBMA (``repro.sim.unslotted``)
measurable: the paper's "distributed manner" requirement taken to its
logical end, where not even round boundaries are shared.

:class:`StreamingReceiver.process_stream` remains the one-shot batch
walk over a complete capture; long-run *supervised* operation (chunked
ingestion, health state machine, checkpoint/restore) lives in
:mod:`repro.receiver.session`, which builds on the shared
:meth:`StreamingReceiver.decode_window` and :class:`DedupTable`
primitives defined here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.receiver.receiver import CbmaReceiver, ReceptionReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import CbmaConfig

__all__ = ["StreamingReceiver", "StreamFrame", "DedupTable"]

#: Complex dtypes a streaming stack may buffer samples in.  complex128
#: is the default and the decode oracle; complex64 is the opt-in fast
#: path (half the memory bandwidth through the ingest ring and gate).
_STREAM_DTYPES = (np.dtype(np.complex128), np.dtype(np.complex64))

#: Live-window pre-gate margin: a window is handed to the full
#: pipeline when any user's batched correlation reaches this fraction
#: of the detection threshold.  Kept fractionally below 1.0 so FFT
#: rounding (~1e-12 relative) can never gate out a window the direct
#: per-user path would have decoded.
_PREGATE_MARGIN = 0.999


@dataclass(frozen=True)
class StreamFrame:
    """One frame decoded from the stream."""

    user_id: int
    payload: bytes
    start_sample: int
    """Absolute sample index where the frame's preamble begins."""


@dataclass
class DedupTable:
    """Bounded ``(user, payload) -> last start`` dedup table.

    The same frame decoded through two overlapping windows lands at
    (nearly) the same absolute start; the table rejects a decode whose
    key was already seen within *tolerance* samples of its start.

    Unlike the plain dict it replaces, the table is **bounded**: once
    the window walk has advanced past an entry by more than the
    eviction horizon, no future window can produce a duplicate of it
    (every future decode starts at or after the walk position), so
    :meth:`evict_before` drops it.  ``peak_size`` tracks the high-water
    mark so long-run memory stays provably flat.
    """

    tolerance: int
    """Maximum |start - previous| (samples) still considered the same frame."""

    entries: Dict[Tuple[int, bytes], int] = field(default_factory=dict)
    evictions: int = 0
    peak_size: int = 0

    def seen(self, user_id: int, payload: bytes, start: int) -> bool:
        """True (duplicate) when the frame was already recorded nearby;
        otherwise records it and returns False."""
        key = (int(user_id), bytes(payload))
        prev = self.entries.get(key)
        if prev is not None and abs(int(start) - prev) < self.tolerance:
            return True
        self.entries[key] = int(start)
        if len(self.entries) > self.peak_size:
            self.peak_size = len(self.entries)
        return False

    def user_active_since(self, user_id: int, watermark: int) -> bool:
        """Whether *user_id* has a recorded frame starting after *watermark*.

        Lets a supervisor tell correlation residue of an
        already-decoded frame (still overlapping the current window)
        from a genuinely failed decode attempt.
        """
        uid = int(user_id)
        return any(
            user == uid and start > watermark
            for (user, _payload), start in self.entries.items()
        )

    def evict_before(self, watermark: int) -> int:
        """Drop entries whose start lies before *watermark*; returns count."""
        stale = [key for key, start in self.entries.items() if start < watermark]
        for key in stale:
            del self.entries[key]
        self.evictions += len(stale)
        return len(stale)

    def __len__(self) -> int:
        return len(self.entries)

    # --- checkpoint plumbing (repro.receiver.session) -------------------

    def to_records(self) -> List[dict]:
        """JSON-serialisable entry records (payloads hex-encoded)."""
        return [
            {"user": user, "payload": payload.hex(), "start": start}
            for (user, payload), start in sorted(self.entries.items())
        ]

    @classmethod
    def from_records(
        cls, tolerance: int, records, evictions: int = 0, peak_size: int = 0
    ) -> "DedupTable":
        table = cls(tolerance=int(tolerance), evictions=int(evictions), peak_size=int(peak_size))
        for rec in records:
            table.entries[(int(rec["user"]), bytes.fromhex(rec["payload"]))] = int(rec["start"])
        table.peak_size = max(table.peak_size, len(table.entries))
        return table


@dataclass
class StreamingReceiver:
    """Window-sliding wrapper around a :class:`CbmaReceiver`.

    Parameters
    ----------
    receiver:
        The underlying single-window receiver (plain, SIC...).
    window_frames:
        Window length in units of the *maximum expected frame airtime*;
        2.0 guarantees any frame lies wholly inside at least one window
        when the hop is one frame.
    max_frame_bits:
        Upper bound on frame length in bits (sets the window size).
    dtype:
        Complex dtype sample buffers are kept in upstream of the full
        decode (ingest, backlog, pre-gate).  ``complex128`` (default)
        or ``complex64`` -- the opt-in fast path.  The decode pipeline
        itself always runs in ``complex128`` (the receiver front end
        widens at its boundary), so the fast path trades gate-score
        precision (~1e-7 relative, absorbed by the pre-gate margin)
        for ingest bandwidth without touching decode numerics.
    """

    receiver: CbmaReceiver
    max_frame_bits: int = 160
    window_frames: float = 2.0
    dtype: np.dtype = np.complex128

    def __post_init__(self) -> None:
        if self.max_frame_bits < 1:
            raise ValueError("max_frame_bits must be >= 1")
        if self.window_frames < 1.5:
            raise ValueError("window must cover at least 1.5 frames")
        self.dtype = np.dtype(self.dtype)
        if self.dtype not in _STREAM_DTYPES:
            raise ValueError(
                f"dtype must be one of {[d.name for d in _STREAM_DTYPES]}, "
                f"got {self.dtype.name}"
            )
        code_len = next(iter(self.receiver.codes.values())).size
        self._frame_samples = (
            self.max_frame_bits * code_len * self.receiver.samples_per_chip
        )
        #: Dedup table of the most recent :meth:`process_stream` call
        #: (exposed so long-stream tests can assert bounded memory).
        self.last_dedup: Optional[DedupTable] = None

    @classmethod
    def from_config(
        cls,
        config: "CbmaConfig",
        *,
        codes: Optional[Dict[int, np.ndarray]] = None,
        receiver: Optional[CbmaReceiver] = None,
        window_frames: float = 2.0,
        dtype=np.complex128,
        tracer=None,
    ) -> "StreamingReceiver":
        """Build a streaming receiver from one :class:`CbmaConfig`.

        The single construction path from config to stream: the
        underlying :class:`CbmaReceiver` comes from
        :meth:`CbmaReceiver.from_config` (pass *receiver* to reuse an
        existing one), and ``max_frame_bits`` is pinned to the config's
        actual frame length so the window geometry matches the
        waveforms the config synthesises.
        """
        if receiver is None:
            receiver = CbmaReceiver.from_config(config, codes=codes, tracer=tracer)
        return cls(
            receiver=receiver,
            max_frame_bits=config.frame_bits(),
            window_frames=window_frames,
            dtype=dtype,
        )

    @property
    def window_samples(self) -> int:
        return int(self._frame_samples * self.window_frames)

    @property
    def hop_samples(self) -> int:
        return self._frame_samples

    @property
    def frame_samples(self) -> int:
        """Samples per maximum-length frame (the hop unit)."""
        return self._frame_samples

    def make_dedup(self) -> DedupTable:
        """A dedup table with this receiver's duplicate tolerance."""
        return DedupTable(tolerance=self._frame_samples // 2)

    def window_is_live(self, window: np.ndarray) -> bool:
        """Cheap batched pre-gate: could any user clear the detection
        threshold inside *window*?

        One batched FFT pass over the stacked template bank replaces
        the full per-window pipeline for silent stretches -- the
        common case of a sparse unslotted stream.  The gate uses the
        same kernel and normalisation as the detector itself (margin
        :data:`_PREGATE_MARGIN` below threshold), so a window it skips
        is one the detector would have returned no users for.
        """
        threshold = self.receiver.user_detector.threshold * _PREGATE_MARGIN
        for _uid, corr in self.receiver.user_detector.correlation_rows(window):
            if corr.size and float(corr.max()) >= threshold:
                return True
        return False

    # Backwards-compatible private alias (pre-session internal name).
    _window_is_live = window_is_live

    def windows_are_live(self, windows: np.ndarray) -> np.ndarray:
        """Vectorised pre-gate over a stack of equal-length windows.

        *windows* is ``(S, n)``; returns a boolean ``(S,)`` array where
        ``out[s] == self.window_is_live(windows[s])`` **bit-identically**
        -- the stacked FFT kernel computes each row independently
        (:func:`repro.utils.correlation_batch.sliding_correlation_many`),
        so the farm's cross-session batched gating can never flip a
        decision the per-window gate would have made.  Falls back to
        the per-window gate when the detector has no stacked bank
        (ragged code book).
        """
        windows = np.asarray(windows)
        if windows.ndim != 2:
            raise ValueError(f"windows must be a 2-D stack, got shape {windows.shape}")
        detector = self.receiver.user_detector
        bank = detector.bank
        if bank is None:
            return np.array([self.window_is_live(w) for w in windows], dtype=bool)
        if windows.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        if windows.shape[1] < bank.template_samples:
            # correlation_rows yields nothing for sub-template windows.
            return np.zeros(windows.shape[0], dtype=bool)
        threshold = detector.threshold * _PREGATE_MARGIN
        corr = bank.correlate_many(windows)
        if corr.shape[2] == 0:
            return np.zeros(windows.shape[0], dtype=bool)
        return corr.max(axis=(1, 2)) >= threshold

    def decode_window(
        self, window: np.ndarray, pos: int, dedup: DedupTable
    ) -> Tuple[List[StreamFrame], ReceptionReport]:
        """Full-pipeline decode of one live window starting at absolute
        sample *pos*.

        Returns the newly decoded (non-duplicate) frames plus the raw
        :class:`~repro.receiver.receiver.ReceptionReport`, and records
        every accepted frame in *dedup*.  Shared by the batch walk
        (:meth:`process_stream`) and the supervised session
        (:class:`repro.receiver.session.SessionSupervisor`) so the two
        paths can never drift apart.
        """
        report = self.receiver.process(window, skip_energy_gate=True)
        det_offsets = {d.user_id: d.offset for d in report.detections}
        frames: List[StreamFrame] = []
        for frame in report.frames:
            if not frame.success:
                continue
            start = pos + det_offsets.get(frame.user_id, 0)
            if dedup.seen(frame.user_id, frame.payload, start):
                continue
            frames.append(
                StreamFrame(user_id=frame.user_id, payload=frame.payload, start_sample=start)
            )
        return frames, report

    def process_stream(self, iq: np.ndarray) -> List[StreamFrame]:
        """Decode every recoverable frame in *iq* (absolute positions).

        The window walk is two-tier: every hop first runs the batched
        correlation pre-gate (:meth:`window_is_live`), and only live
        windows pay for the full detect/decode pipeline.  With a
        tracer attached to the underlying receiver, each live window
        is timed under a ``stream_decode`` span.

        Tail windows truncated by the capture edge are processed like
        any other (a frame ending at the edge of a short capture is
        still a frame; the pipeline tolerates short buffers, and the
        pre-gate keeps sub-template tails free).  Cross-window
        duplicates are tracked in a bounded :class:`DedupTable`:
        entries more than one window behind the walk are evicted, so
        memory stays flat however long the stream.
        """
        x = np.asarray(iq)
        tracer = self.receiver.tracer
        frames: List[StreamFrame] = []
        dedup = self.make_dedup()
        self.last_dedup = dedup
        pos = 0
        while pos < x.size:
            window = x[pos : pos + self.window_samples]
            if self.window_is_live(window):
                with tracer.span("stream_decode"):
                    new_frames, _report = self.decode_window(window, pos, dedup)
                frames.extend(new_frames)
            pos += self.hop_samples
            # No future decode can start before pos, so entries more
            # than one window behind it can never match again.
            dedup.evict_before(pos - self.window_samples)
        frames.sort(key=lambda f: f.start_sample)
        return frames
