"""Streaming reception: many frames per tag in one continuous buffer.

The round-based simulator hands the receiver one collision at a time,
but a deployed receiver listens *continuously*: frames from different
tags start whenever their tags please and overlap partially or not at
all.  :class:`StreamingReceiver` walks a long buffer with overlapping
windows, decodes every frame it can, and deduplicates decodes of the
same frame seen through neighbouring windows.

This is what makes fully **unslotted** CBMA (``repro.sim.unslotted``)
measurable: the paper's "distributed manner" requirement taken to its
logical end, where not even round boundaries are shared.

:class:`StreamingReceiver.process_stream` remains the one-shot batch
walk over a complete capture; long-run *supervised* operation (chunked
ingestion, health state machine, checkpoint/restore) lives in
:mod:`repro.receiver.session`, which builds on the shared
:meth:`StreamingReceiver.decode_window` and :class:`DedupTable`
primitives defined here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.receiver.receiver import CbmaReceiver, ReceptionReport

__all__ = ["StreamingReceiver", "StreamFrame", "DedupTable"]

#: Live-window pre-gate margin: a window is handed to the full
#: pipeline when any user's batched correlation reaches this fraction
#: of the detection threshold.  Kept fractionally below 1.0 so FFT
#: rounding (~1e-12 relative) can never gate out a window the direct
#: per-user path would have decoded.
_PREGATE_MARGIN = 0.999


@dataclass(frozen=True)
class StreamFrame:
    """One frame decoded from the stream."""

    user_id: int
    payload: bytes
    start_sample: int
    """Absolute sample index where the frame's preamble begins."""


@dataclass
class DedupTable:
    """Bounded ``(user, payload) -> last start`` dedup table.

    The same frame decoded through two overlapping windows lands at
    (nearly) the same absolute start; the table rejects a decode whose
    key was already seen within *tolerance* samples of its start.

    Unlike the plain dict it replaces, the table is **bounded**: once
    the window walk has advanced past an entry by more than the
    eviction horizon, no future window can produce a duplicate of it
    (every future decode starts at or after the walk position), so
    :meth:`evict_before` drops it.  ``peak_size`` tracks the high-water
    mark so long-run memory stays provably flat.
    """

    tolerance: int
    """Maximum |start - previous| (samples) still considered the same frame."""

    entries: Dict[Tuple[int, bytes], int] = field(default_factory=dict)
    evictions: int = 0
    peak_size: int = 0

    def seen(self, user_id: int, payload: bytes, start: int) -> bool:
        """True (duplicate) when the frame was already recorded nearby;
        otherwise records it and returns False."""
        key = (int(user_id), bytes(payload))
        prev = self.entries.get(key)
        if prev is not None and abs(int(start) - prev) < self.tolerance:
            return True
        self.entries[key] = int(start)
        if len(self.entries) > self.peak_size:
            self.peak_size = len(self.entries)
        return False

    def user_active_since(self, user_id: int, watermark: int) -> bool:
        """Whether *user_id* has a recorded frame starting after *watermark*.

        Lets a supervisor tell correlation residue of an
        already-decoded frame (still overlapping the current window)
        from a genuinely failed decode attempt.
        """
        uid = int(user_id)
        return any(
            user == uid and start > watermark
            for (user, _payload), start in self.entries.items()
        )

    def evict_before(self, watermark: int) -> int:
        """Drop entries whose start lies before *watermark*; returns count."""
        stale = [key for key, start in self.entries.items() if start < watermark]
        for key in stale:
            del self.entries[key]
        self.evictions += len(stale)
        return len(stale)

    def __len__(self) -> int:
        return len(self.entries)

    # --- checkpoint plumbing (repro.receiver.session) -------------------

    def to_records(self) -> List[dict]:
        """JSON-serialisable entry records (payloads hex-encoded)."""
        return [
            {"user": user, "payload": payload.hex(), "start": start}
            for (user, payload), start in sorted(self.entries.items())
        ]

    @classmethod
    def from_records(
        cls, tolerance: int, records, evictions: int = 0, peak_size: int = 0
    ) -> "DedupTable":
        table = cls(tolerance=int(tolerance), evictions=int(evictions), peak_size=int(peak_size))
        for rec in records:
            table.entries[(int(rec["user"]), bytes.fromhex(rec["payload"]))] = int(rec["start"])
        table.peak_size = max(table.peak_size, len(table.entries))
        return table


@dataclass
class StreamingReceiver:
    """Window-sliding wrapper around a :class:`CbmaReceiver`.

    Parameters
    ----------
    receiver:
        The underlying single-window receiver (plain, SIC...).
    window_frames:
        Window length in units of the *maximum expected frame airtime*;
        2.0 guarantees any frame lies wholly inside at least one window
        when the hop is one frame.
    max_frame_bits:
        Upper bound on frame length in bits (sets the window size).
    """

    receiver: CbmaReceiver
    max_frame_bits: int = 160
    window_frames: float = 2.0

    def __post_init__(self) -> None:
        if self.max_frame_bits < 1:
            raise ValueError("max_frame_bits must be >= 1")
        if self.window_frames < 1.5:
            raise ValueError("window must cover at least 1.5 frames")
        code_len = next(iter(self.receiver.codes.values())).size
        self._frame_samples = (
            self.max_frame_bits * code_len * self.receiver.samples_per_chip
        )
        #: Dedup table of the most recent :meth:`process_stream` call
        #: (exposed so long-stream tests can assert bounded memory).
        self.last_dedup: Optional[DedupTable] = None

    @property
    def window_samples(self) -> int:
        return int(self._frame_samples * self.window_frames)

    @property
    def hop_samples(self) -> int:
        return self._frame_samples

    @property
    def frame_samples(self) -> int:
        """Samples per maximum-length frame (the hop unit)."""
        return self._frame_samples

    def make_dedup(self) -> DedupTable:
        """A dedup table with this receiver's duplicate tolerance."""
        return DedupTable(tolerance=self._frame_samples // 2)

    def window_is_live(self, window: np.ndarray) -> bool:
        """Cheap batched pre-gate: could any user clear the detection
        threshold inside *window*?

        One batched FFT pass over the stacked template bank replaces
        the full per-window pipeline for silent stretches -- the
        common case of a sparse unslotted stream.  The gate uses the
        same kernel and normalisation as the detector itself (margin
        :data:`_PREGATE_MARGIN` below threshold), so a window it skips
        is one the detector would have returned no users for.
        """
        threshold = self.receiver.user_detector.threshold * _PREGATE_MARGIN
        for _uid, corr in self.receiver.user_detector.correlation_rows(window):
            if corr.size and float(corr.max()) >= threshold:
                return True
        return False

    # Backwards-compatible private alias (pre-session internal name).
    _window_is_live = window_is_live

    def decode_window(
        self, window: np.ndarray, pos: int, dedup: DedupTable
    ) -> Tuple[List[StreamFrame], ReceptionReport]:
        """Full-pipeline decode of one live window starting at absolute
        sample *pos*.

        Returns the newly decoded (non-duplicate) frames plus the raw
        :class:`~repro.receiver.receiver.ReceptionReport`, and records
        every accepted frame in *dedup*.  Shared by the batch walk
        (:meth:`process_stream`) and the supervised session
        (:class:`repro.receiver.session.SessionSupervisor`) so the two
        paths can never drift apart.
        """
        report = self.receiver.process(window, skip_energy_gate=True)
        det_offsets = {d.user_id: d.offset for d in report.detections}
        frames: List[StreamFrame] = []
        for frame in report.frames:
            if not frame.success:
                continue
            start = pos + det_offsets.get(frame.user_id, 0)
            if dedup.seen(frame.user_id, frame.payload, start):
                continue
            frames.append(
                StreamFrame(user_id=frame.user_id, payload=frame.payload, start_sample=start)
            )
        return frames, report

    def process_stream(self, iq: np.ndarray) -> List[StreamFrame]:
        """Decode every recoverable frame in *iq* (absolute positions).

        The window walk is two-tier: every hop first runs the batched
        correlation pre-gate (:meth:`window_is_live`), and only live
        windows pay for the full detect/decode pipeline.  With a
        tracer attached to the underlying receiver, each live window
        is timed under a ``stream_decode`` span.

        Tail windows truncated by the capture edge are processed like
        any other (a frame ending at the edge of a short capture is
        still a frame; the pipeline tolerates short buffers, and the
        pre-gate keeps sub-template tails free).  Cross-window
        duplicates are tracked in a bounded :class:`DedupTable`:
        entries more than one window behind the walk are evicted, so
        memory stays flat however long the stream.
        """
        x = np.asarray(iq)
        tracer = self.receiver.tracer
        frames: List[StreamFrame] = []
        dedup = self.make_dedup()
        self.last_dedup = dedup
        pos = 0
        while pos < x.size:
            window = x[pos : pos + self.window_samples]
            if self.window_is_live(window):
                with tracer.span("stream_decode"):
                    new_frames, _report = self.decode_window(window, pos, dedup)
                frames.extend(new_frames)
            pos += self.hop_samples
            # No future decode can start before pos, so entries more
            # than one window behind it can never match again.
            dedup.evict_before(pos - self.window_samples)
        frames.sort(key=lambda f: f.start_sample)
        return frames
