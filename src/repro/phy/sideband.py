"""Double- vs single-sideband backscatter (paper footnote 1, ref. [10]).

A square-wave-driven switch multiplies the excitation tone by a real
waveform, so the backscatter appears at *both* ``f_c - delta_f`` and
``f_c + delta_f``: half the reflected power lands in an image band the
receiver never looks at, and -- worse -- anything already occupying the
image band folds onto the wanted band in a real-mixer receiver.  The
paper sidesteps the analysis ("we can use the method proposed in [10]
to generate single sideband backscatter") -- ref. [10] drives *two*
switches in quadrature so the two sidebands cancel on one side.

This module provides both models:

- :func:`dsb_components` -- the two sideband amplitudes of a
  square-wave modulator (each carries 1/2 of the fundamental's
  amplitude, i.e. -6 dB per sideband relative to the total);
- :func:`ssb_components` -- the quadrature (Hartley) modulator with a
  configurable phase error: perfect quadrature puts everything in one
  sideband; phase/amplitude error leaks back into the image;
- :func:`image_rejection_db` -- the classic IRR formula, so hardware
  tolerances translate into residual image level;
- :func:`sideband_efficiency` -- fraction of backscattered power in
  the wanted band, the number that multiplies the link budget.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = [
    "dsb_components",
    "ssb_components",
    "image_rejection_db",
    "sideband_efficiency",
]


def dsb_components(amplitude: float = 1.0) -> Tuple[complex, complex]:
    """(wanted, image) sideband amplitudes of a plain square-wave mixer.

    A real modulating waveform ``m(t) = A cos(2 pi df t)`` splits as
    ``A/2 e^{+j 2 pi df t} + A/2 e^{-j 2 pi df t}``: each sideband
    carries half the amplitude (a quarter of the power).
    """
    half = amplitude / 2.0
    return complex(half), complex(half)


def ssb_components(
    amplitude: float = 1.0,
    phase_error_rad: float = 0.0,
    amplitude_imbalance_db: float = 0.0,
) -> Tuple[complex, complex]:
    """(wanted, image) amplitudes of a quadrature (Hartley) modulator.

    Two switch networks driven by ``cos`` and ``sin`` square waves
    synthesise ``m(t) = A e^{j 2 pi df t}`` -- all power in one
    sideband -- when the branches are perfectly matched.  A phase error
    ``phi`` between the branches and an amplitude imbalance ``g``
    (linear, from dB) leave a residual image:

    ``wanted = A (1 + g e^{j phi}) / 2``,
    ``image  = A (1 - g e^{-j phi}) / 2``.
    """
    g = 10.0 ** (amplitude_imbalance_db / 20.0)
    rot = complex(math.cos(phase_error_rad), math.sin(phase_error_rad))
    wanted = amplitude * (1.0 + g * rot) / 2.0
    image = amplitude * (1.0 - g * rot.conjugate()) / 2.0
    return wanted, image


def image_rejection_db(phase_error_rad: float, amplitude_imbalance_db: float = 0.0) -> float:
    """Image rejection ratio of a quadrature modulator, in dB.

    ``IRR = |wanted|^2 / |image|^2``; with small errors this follows
    the classic ``(4 / (phi^2 + (dg)^2))`` approximation, but the exact
    expression is used here.
    """
    wanted, image = ssb_components(1.0, phase_error_rad, amplitude_imbalance_db)
    p_wanted = abs(wanted) ** 2
    p_image = abs(image) ** 2
    if p_image == 0:
        return float("inf")
    return 10.0 * math.log10(p_wanted / p_image)


def sideband_efficiency(
    single_sideband: bool,
    phase_error_rad: float = 0.0,
    amplitude_imbalance_db: float = 0.0,
) -> float:
    """Fraction of backscattered power landing in the wanted band.

    Multiplies the ``|delta Gamma|^2 / 4`` factor in the link budget:
    0.5 for the paper's plain square-wave (DSB) tag, approaching 1.0
    for an ideal quadrature (SSB) tag, in between for an imperfect one.
    """
    if single_sideband:
        wanted, image = ssb_components(1.0, phase_error_rad, amplitude_imbalance_db)
    else:
        wanted, image = dsb_components(1.0)
    p_wanted = abs(wanted) ** 2
    p_image = abs(image) ** 2
    total = p_wanted + p_image
    return p_wanted / total if total else 0.0
