"""Spreading, OOK modulation and the tag's baseband chip pipeline.

The tag-side transmit chain (paper Sec. III-A, V-A, Fig. 4) is:

1. *Encoding*: each frame bit is replaced by the tag's PN code (bit 1)
   or its bitwise negation (bit 0) -- the paper's modified 2NC rule,
   illustrated by its own example ``data "10" + PN "01001" ->
   "0100110110"``.
2. *Upsampling*: each chip is held for an integer number of samples.
3. *On/Off keying*: a chip value of 1 enables the 20 MHz square wave
   driving the antenna switch, 0 leaves the antenna in the reference
   state.  In complex baseband at the shifted frequency this is an
   amplitude of ``(4/pi) * |delta Gamma|/2`` with the channel's phase,
   versus zero.

Asynchrony (the paper's first challenge) appears here as a per-tag
fractional-sample delay applied to the chip waveform.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.phy.waveform import FIRST_HARMONIC_AMPLITUDE
from repro.utils.bits import as_bit_array
from repro.utils.contracts import array_contract

__all__ = [
    "spread_bits",
    "despread_reference",
    "upsample_chips",
    "ook_baseband",
    "fractional_delay",
    "chips_per_frame",
]

#: Fractional delays below this are treated as integer shifts.  Delays
#: arrive as ``offset_chips * samples_per_chip`` products, so exact
#: integers can carry ~1 ulp of rounding dust that must not flip the
#: fast path (or grow the default output by a spurious sample).
_FRAC_EPS = 1e-12


def spread_bits(bits, code: np.ndarray) -> np.ndarray:
    """Encode *bits* with PN *code*: 1 -> code, 0 -> negation of code.

    Reproduces the paper's example: data ``10`` with PN ``01001``
    yields ``0100110110``.  Returns a 0/1 uint8 chip array of length
    ``len(bits) * len(code)``.
    """
    b = as_bit_array(bits)
    c = as_bit_array(code)
    if c.size == 0:
        raise ValueError("code must be non-empty")
    # Outer XNOR: chip = code when bit==1, 1-code when bit==0.
    out = np.bitwise_xor(c[None, :], 1 - b[:, None].astype(np.uint8))
    return out.reshape(-1).astype(np.uint8)


def despread_reference(code: np.ndarray) -> np.ndarray:
    """Bipolar template for one bit: +1 where the code is 1, -1 where 0.

    Correlating a received chip block against this template yields a
    positive statistic for bit 1 and a negative one for bit 0 (because
    the bit-0 chips are the exact negation), which is what the
    receiver's chip decoder thresholds.
    """
    c = as_bit_array(code).astype(np.float64)
    return c * 2.0 - 1.0


def upsample_chips(chips, samples_per_chip: int) -> np.ndarray:
    """Hold each chip for *samples_per_chip* samples (rectangular pulse)."""
    if samples_per_chip < 1:
        raise ValueError("samples_per_chip must be >= 1")
    arr = np.asarray(chips)
    return np.repeat(arr, samples_per_chip)


@array_contract(returns="(n) complex128")
def ook_baseband(
    chip_samples: np.ndarray,
    amplitude: Union[float, complex] = 1.0,
    include_harmonic_gain: bool = True,
) -> np.ndarray:
    """Complex-baseband OOK signal from an upsampled 0/1 chip stream.

    The receiver tunes to ``f_c - delta_f``; in its baseband the tag's
    square-wave fundamental appears as a complex gain.  *amplitude*
    carries the composite channel (path loss x delta-Gamma x phase).
    When *include_harmonic_gain* is set the square-wave fundamental
    factor 4/pi (paper eq. 2) is applied; disable it when the caller
    already folded that into *amplitude*.
    """
    samples = np.asarray(chip_samples, dtype=np.float64)
    gain = FIRST_HARMONIC_AMPLITUDE if include_harmonic_gain else 1.0
    return samples * (complex(amplitude) * gain)


def fractional_delay(signal: np.ndarray, delay_samples: float, total_length: int = None) -> np.ndarray:
    """Delay *signal* by a possibly fractional number of samples.

    Integer part shifts; fractional part linearly interpolates between
    neighbouring samples (adequate for rectangular chip pulses and
    cheap enough for thousand-packet sweeps).  Output is zero-padded to
    *total_length* (default: ``len(signal) + ceil(delay)``).
    """
    if delay_samples < 0:
        raise ValueError("delay must be non-negative")
    sig = np.asarray(signal)
    n_int = int(np.floor(delay_samples))
    frac = float(delay_samples - n_int)
    if total_length is None:
        total_length = sig.size + n_int + (1 if frac > _FRAC_EPS else 0)
    out = np.zeros(total_length, dtype=np.result_type(sig.dtype, np.float64))
    if frac <= _FRAC_EPS:
        # Integer-delay fast path; a sub-epsilon fractional residue
        # (floating-point dust from e.g. `offset * spc`) would otherwise
        # trigger a full interpolation that only smears rounding noise.
        end = min(n_int + sig.size, total_length)
        out[n_int:end] = sig[: end - n_int]
        return out
    # Linear interpolation: y[k] = (1-frac)*x[k - n_int] + frac*x[k - n_int - 1]
    shifted = np.zeros(sig.size + 1, dtype=out.dtype)
    shifted[: sig.size] += (1.0 - frac) * sig
    shifted[1:] += frac * sig
    end = min(n_int + shifted.size, total_length)
    out[n_int:end] = shifted[: end - n_int]
    return out


def chips_per_frame(n_bits: int, code_length: int) -> int:
    """Total chips occupied by a frame of *n_bits* spread by a code."""
    if n_bits < 0 or code_length < 1:
        raise ValueError("invalid frame geometry")
    return n_bits * code_length


def waveform_from_edges(chips, edges_chips: np.ndarray, samples_per_chip: int, total_length: int = None) -> np.ndarray:
    """Synthesise a 0/1 chip waveform with *arbitrary* chip edges.

    The ideal pipeline (:func:`upsample_chips` + :func:`fractional_delay`)
    assumes a perfectly regular chip clock; a drifting or jittering tag
    oscillator places every edge differently.  Here chip *k* occupies
    the fractional-sample interval ``[edges[k], edges[k+1]) * spc`` and
    each output sample integrates the chips overlapping it -- exact for
    rectangular pulses, fully vectorised (difference-array + cumsum).

    Parameters
    ----------
    chips:
        0/1 chip values (length ``n``).
    edges_chips:
        ``n + 1`` monotonically non-decreasing edge positions in *chip*
        units (e.g. from :meth:`TagOscillator.chip_edges`).
    samples_per_chip:
        Sample grid density.
    """
    values = np.asarray(chips, dtype=np.float64)
    edges = np.asarray(edges_chips, dtype=np.float64) * samples_per_chip
    if edges.size != values.size + 1:
        raise ValueError(
            f"need {values.size + 1} edges for {values.size} chips, got {edges.size}"
        )
    if np.any(np.diff(edges) < 0):
        raise ValueError("edges must be non-decreasing")
    if np.any(edges < 0):
        raise ValueError("edges must be non-negative")
    n_out = int(np.ceil(edges[-1])) + 1 if total_length is None else int(total_length)
    # Accumulate d(step)/dn impulses with linear fractional splitting,
    # then integrate: a unit step rising at fractional position p adds
    # (1-frac) at floor(p) and frac at floor(p)+1 of the *difference*
    # of the sample-integrated waveform.
    grad = np.zeros(n_out + 2, dtype=np.float64)
    starts = edges[:-1]
    ends = edges[1:]
    for sign, positions in ((+1.0, starts), (-1.0, ends)):
        pos = np.clip(positions, 0.0, n_out)
        idx = np.floor(pos).astype(np.int64)
        frac = pos - idx
        np.add.at(grad, idx, sign * values * (1.0 - frac))
        np.add.at(grad, idx + 1, sign * values * frac)
    return np.cumsum(grad)[:n_out]
