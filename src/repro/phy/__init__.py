"""Physical-layer substrate: waveforms, modulation, impedance, sampling.

Everything between "the tag has bits to send" and "the receiver has
complex samples" lives here:

- :mod:`repro.phy.waveform` -- square waves and the harmonic model.
- :mod:`repro.phy.modulation` -- PN spreading, OOK, fractional delay.
- :mod:`repro.phy.impedance` -- the SPDT/termination reflection model
  behind tag-side power control.
- :mod:`repro.phy.sampling` -- receiver sampling operators.
- :mod:`repro.phy.snr` -- signal-quality estimators.
"""

from repro.phy.impedance import (
    CARRIER_HZ,
    DEFAULT_ANTENNA_IMPEDANCE,
    SHIFT_HZ,
    ImpedanceCodebook,
    ImpedanceState,
    Termination,
    default_codebook,
    reflection_coefficient,
)
from repro.phy.modulation import (
    chips_per_frame,
    despread_reference,
    fractional_delay,
    ook_baseband,
    spread_bits,
    upsample_chips,
)
from repro.phy.sampling import (
    chip_matched_filter,
    decimate,
    instantaneous_power,
    integrate_and_dump,
    moving_average,
)
from repro.phy.snr import estimate_snr_db, evm, relative_power_difference, snr_from_amplitudes
from repro.phy.waveform import (
    FIRST_HARMONIC_AMPLITUDE,
    harmonic_power_db,
    square_wave,
    square_wave_harmonics,
    tone,
)

__all__ = [
    "CARRIER_HZ",
    "DEFAULT_ANTENNA_IMPEDANCE",
    "SHIFT_HZ",
    "ImpedanceCodebook",
    "ImpedanceState",
    "Termination",
    "default_codebook",
    "reflection_coefficient",
    "chips_per_frame",
    "despread_reference",
    "fractional_delay",
    "ook_baseband",
    "spread_bits",
    "upsample_chips",
    "chip_matched_filter",
    "decimate",
    "instantaneous_power",
    "integrate_and_dump",
    "moving_average",
    "estimate_snr_db",
    "evm",
    "relative_power_difference",
    "snr_from_amplitudes",
    "FIRST_HARMONIC_AMPLITUDE",
    "harmonic_power_db",
    "square_wave",
    "square_wave_harmonics",
    "tone",
]
