"""Tag antenna impedance and reflection-coefficient model.

CBMA's key hardware novelty (paper Sec. V-B, VI) is *power control at a
passive tag*: an HMC190B SPDT switch network terminates the antenna
with one of four components -- a 3 pF capacitor, a 1 pF capacitor, an
open circuit, or a 2 nH inductor -- and the choice changes the
backscatter reflection coefficient and therefore the backscattered
power (the ``|delta Gamma|^2 / 4`` factor in Friis eq. (1)).

This module reproduces that mechanism from first principles:

- each termination is converted to a complex load impedance at the
  operating frequency (2 GHz carrier shifted by 20 MHz);
- the reflection coefficient against the tag antenna is
  ``Gamma = (Z_load - conj(Z_ant)) / (Z_load + Z_ant)``;
- the square-wave modulator toggles the antenna between a fixed
  *reference* state (the switch's shorted port) and the selected
  termination, so the quantity entering Friis eq. (1) is the
  differential coefficient ``delta Gamma = Gamma_load - Gamma_ref``.

All four of the paper's terminations are (nearly) pure reactances, so
each ``|Gamma_load| ~ 1``: the power ladder does *not* come from
absorption but from *phase* -- each termination parks the reflection at
a different angle on the Smith chart, and the distance to the reference
state's point sets the modulation depth ``|delta Gamma|``.  With the
short reference this yields four clearly separated backscatter powers
spanning several dB, the operating range Algorithm 1 cycles through.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "Termination",
    "ImpedanceState",
    "ImpedanceCodebook",
    "reflection_coefficient",
    "default_codebook",
    "DEFAULT_ANTENNA_IMPEDANCE",
    "CARRIER_HZ",
    "SHIFT_HZ",
]

CARRIER_HZ = 2.0e9
SHIFT_HZ = 20.0e6

#: Default tag antenna impedance.  A 2.5 x 2.5 cm PCB loop antenna is
#: electrically small: strongly inductive with a modest radiation
#: resistance.  This value makes the paper's four terminations form a
#: monotone backscatter-gain ladder of roughly 6 dB steps spanning
#: ~18.7 dB (-18.7, -12.7, -6.4, 0 dB) -- the span Algorithm 1's power
#: control cycles through.
DEFAULT_ANTENNA_IMPEDANCE = complex(30.0, 65.0)

_SWITCH_ESR_OHM = 1.8  # HMC190B on-resistance + component ESR


@dataclass(frozen=True)
class Termination:
    """A physical termination component behind the SPDT switch.

    At most one of *capacitance_f*, *inductance_h*, *resistance_ohm*
    may be set; none set means an open circuit.
    """

    name: str
    capacitance_f: float = None
    inductance_h: float = None
    resistance_ohm: float = None
    esr_ohm: float = _SWITCH_ESR_OHM

    def impedance(self, freq_hz: float) -> complex:
        """Complex load impedance at *freq_hz*."""
        set_kinds = sum(
            x is not None for x in (self.capacitance_f, self.inductance_h, self.resistance_ohm)
        )
        if set_kinds > 1:
            raise ValueError(f"termination {self.name!r} must be a single component")
        w = 2.0 * math.pi * freq_hz
        if self.capacitance_f is not None:
            return complex(self.esr_ohm, -1.0 / (w * self.capacitance_f))
        if self.inductance_h is not None:
            return complex(self.esr_ohm, w * self.inductance_h)
        if self.resistance_ohm is not None:
            return complex(self.resistance_ohm + self.esr_ohm, 0.0)
        # Open circuit: very large but finite impedance (fringing
        # capacitance of the open switch port, ~0.1 pF).
        return complex(self.esr_ohm, -1.0 / (w * 0.1e-12))


def reflection_coefficient(z_load: complex, z_antenna: complex) -> complex:
    """Power-wave reflection coefficient of *z_load* against *z_antenna*.

    Uses the conjugate-match convention
    ``Gamma = (Z_l - conj(Z_a)) / (Z_l + Z_a)`` standard in RFID
    backscatter analysis; ``Gamma = 0`` iff the load conjugate-matches
    the antenna (full absorption).
    """
    denom = z_load + z_antenna
    if denom == 0:
        raise ValueError("degenerate load/antenna combination")
    return (z_load - z_antenna.conjugate()) / denom


@dataclass(frozen=True)
class ImpedanceState:
    """One selectable tag power state.

    Attributes
    ----------
    index:
        Position in the codebook (what Algorithm 1 increments).
    termination:
        The physical component selected by the SPDT switch.
    gamma:
        Complex differential reflection coefficient (selected
        termination minus the reference state) at the operating
        frequency.
    """

    index: int
    termination: Termination
    gamma: complex

    @property
    def amplitude_gain(self) -> float:
        """|delta Gamma| / 2 -- linear amplitude factor entering the link."""
        return abs(self.gamma) / 2.0

    @property
    def power_gain_db(self) -> float:
        """Backscatter power factor 10*log10(|dG|^2/4) in dB."""
        return 20.0 * math.log10(max(abs(self.gamma) / 2.0, 1e-12))


class ImpedanceCodebook:
    """The ordered set of impedance states a tag can switch among.

    Algorithm 1 treats the codebook as a cyclic ladder (``Z <- Z + 1``,
    wrapping at ``Z_max``); the default codebook is sorted by ascending
    backscatter power so "increment Z" means "try more power".
    """

    def __init__(
        self,
        terminations: Sequence[Termination],
        antenna_impedance: complex = DEFAULT_ANTENNA_IMPEDANCE,
        freq_hz: float = CARRIER_HZ + SHIFT_HZ,
        reference: Termination = None,
        sort_by_power: bool = True,
    ):
        if not terminations:
            raise ValueError("codebook needs at least one termination")
        if reference is None:
            reference = Termination("short", resistance_ohm=0.0)
        gamma_ref = reflection_coefficient(reference.impedance(freq_hz), antenna_impedance)
        states = []
        for term in terminations:
            gamma = reflection_coefficient(term.impedance(freq_hz), antenna_impedance)
            states.append((term, gamma - gamma_ref))
        if sort_by_power:
            states.sort(key=lambda tg: abs(tg[1]))
        self.antenna_impedance = antenna_impedance
        self.freq_hz = freq_hz
        self.reference = reference
        self.gamma_reference = gamma_ref
        self.states: List[ImpedanceState] = [
            ImpedanceState(index=i, termination=t, gamma=g) for i, (t, g) in enumerate(states)
        ]

    def __len__(self) -> int:
        return len(self.states)

    def __getitem__(self, index: int) -> ImpedanceState:
        return self.states[index]

    def state_by_name(self, name: str) -> ImpedanceState:
        """Look up a state by its termination name."""
        for state in self.states:
            if state.termination.name == name:
                return state
        raise KeyError(name)

    def amplitude_gains(self) -> np.ndarray:
        """Array of |dG|/2 per state, in codebook order."""
        return np.array([s.amplitude_gain for s in self.states])

    def power_range_db(self) -> float:
        """Total dB span between the weakest and strongest state."""
        gains = self.amplitude_gains()
        return 20.0 * math.log10(gains.max() / max(gains.min(), 1e-12))

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """Mapping name -> (|Gamma|, power gain dB) for reporting."""
        return {
            s.termination.name: (abs(s.gamma), s.power_gain_db) for s in self.states
        }


#: The paper's four terminations (Sec. VI).
PAPER_TERMINATIONS = (
    Termination("3pF", capacitance_f=3e-12),
    Termination("1pF", capacitance_f=1e-12),
    Termination("open"),
    Termination("2nH", inductance_h=2e-9),
)


def default_codebook(antenna_impedance: complex = DEFAULT_ANTENNA_IMPEDANCE) -> ImpedanceCodebook:
    """The 4-state codebook built from the paper's components."""
    return ImpedanceCodebook(PAPER_TERMINATIONS, antenna_impedance=antenna_impedance)
