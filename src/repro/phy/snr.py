"""SNR estimation and related signal-quality metrics.

Table II of the paper characterises two-tag collisions by each tag's
SNR and by the *relative power difference*
``(P_max - P_min) / P_max`` -- the quantity its power-control loop
drives below 10%.  These estimators compute the same statistics from
simulated receptions.
"""

from __future__ import annotations

import numpy as np

from repro.utils.db import linear_to_db

__all__ = [
    "estimate_snr_db",
    "snr_from_amplitudes",
    "relative_power_difference",
    "evm",
]


def estimate_snr_db(signal_plus_noise: np.ndarray, noise_only: np.ndarray) -> float:
    """SNR in dB from a signal-bearing segment and a noise-only segment.

    Standard practice on an energy-detecting receiver: measure power in
    a window known to contain the frame and in a quiet window before
    it, then ``SNR = (P_total - P_noise) / P_noise``.
    """
    p_total = float(np.mean(np.abs(signal_plus_noise) ** 2))
    p_noise = float(np.mean(np.abs(noise_only) ** 2))
    if p_noise <= 0:
        raise ValueError("noise segment has zero power")
    return linear_to_db(max(p_total - p_noise, 0.0) / p_noise)


def snr_from_amplitudes(signal_amplitude: float, noise_std: float) -> float:
    """SNR in dB of a constant-envelope signal in complex AWGN.

    ``noise_std`` is the per-component (I or Q) standard deviation, so
    total noise power is ``2 * noise_std^2``.
    """
    if noise_std <= 0:
        raise ValueError("noise_std must be positive")
    return linear_to_db(signal_amplitude**2 / (2.0 * noise_std**2))


def relative_power_difference(powers) -> float:
    """Paper Table II's "Difference": (max - min) / max over tag powers.

    0 means perfectly balanced tags; the paper observes error rates
    collapse when this drops below ~10%.
    """
    arr = np.asarray(powers, dtype=np.float64)
    if arr.size < 2:
        return 0.0
    if (arr < 0).any():
        raise ValueError("powers must be non-negative")
    p_max = float(arr.max())
    if p_max == 0:
        return 0.0
    return float((p_max - arr.min()) / p_max)


def evm(received: np.ndarray, reference: np.ndarray) -> float:
    """Error vector magnitude (RMS, normalised to reference RMS)."""
    rx = np.asarray(received)
    ref = np.asarray(reference)
    if rx.shape != ref.shape:
        raise ValueError(f"shape mismatch: {rx.shape} vs {ref.shape}")
    ref_rms = np.sqrt(np.mean(np.abs(ref) ** 2))
    if ref_rms == 0:
        raise ValueError("reference has zero power")
    return float(np.sqrt(np.mean(np.abs(rx - ref) ** 2)) / ref_rms)
