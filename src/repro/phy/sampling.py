"""Receiver-side sampling primitives.

The CBMA receiver samples the shifted band at ``f_s`` and runs simple,
FPGA-friendly operators: moving-average filtering for the energy
detector, integrate-and-dump downsampling to chip rate, and signal
power estimation (paper Sec. III-B, V-B: ``P = sqrt(I^2 + Q^2)`` then
downsample).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "moving_average",
    "integrate_and_dump",
    "instantaneous_power",
    "decimate",
    "chip_matched_filter",
]


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Causal moving average with *window* taps (same length as input).

    The first ``window - 1`` outputs average over the partial history,
    matching a streaming hardware implementation that starts cold.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    arr = np.asarray(x, dtype=np.float64)
    csum = np.concatenate(([0.0], np.cumsum(arr)))
    idx = np.arange(1, arr.size + 1)
    lo = np.maximum(idx - window, 0)
    return (csum[idx] - csum[lo]) / (idx - lo)


def instantaneous_power(iq: np.ndarray) -> np.ndarray:
    """Per-sample magnitude ``sqrt(I^2 + Q^2)`` of a complex signal.

    This is the paper's ``P(t)`` (Sec. V-B); note it is an amplitude,
    kept under the paper's name for fidelity.
    """
    return np.abs(np.asarray(iq))


def integrate_and_dump(samples: np.ndarray, samples_per_chip: int, offset: int = 0) -> np.ndarray:
    """Average consecutive groups of *samples_per_chip* samples.

    The optimal receiver for rectangular chips: integrate over each
    chip interval, starting at *offset* samples, dropping any trailing
    partial chip.
    """
    if samples_per_chip < 1:
        raise ValueError("samples_per_chip must be >= 1")
    arr = np.asarray(samples)[offset:]
    n_chips = arr.size // samples_per_chip
    if n_chips == 0:
        return arr[:0]
    trimmed = arr[: n_chips * samples_per_chip]
    return trimmed.reshape(n_chips, samples_per_chip).mean(axis=1)


def decimate(samples: np.ndarray, factor: int, offset: int = 0) -> np.ndarray:
    """Keep every *factor*-th sample starting at *offset* (no filtering)."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    return np.asarray(samples)[offset::factor]


def chip_matched_filter(samples: np.ndarray, samples_per_chip: int) -> np.ndarray:
    """Sliding rectangular matched filter of one chip duration.

    Unlike :func:`integrate_and_dump` the output keeps sample rate, so
    a synchroniser can search for the best chip timing.
    """
    if samples_per_chip < 1:
        raise ValueError("samples_per_chip must be >= 1")
    arr = np.asarray(samples)
    kernel = np.ones(samples_per_chip) / samples_per_chip
    return np.convolve(arr, kernel, mode="valid")
