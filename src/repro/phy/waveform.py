"""Waveform generation: square waves, harmonics and tones.

The CBMA tag has no RF front end: it creates its transmit signal by
driving the antenna switch with a square wave at ``delta_f`` (20 MHz),
which mixes with the excitation tone and shifts the backscatter to
``f_c +/- delta_f`` (paper Sec. II-A, VI).  The paper approximates the
square wave by its first Fourier harmonic ``(4/pi) sin(2 pi delta_f t)``
(eq. 2); this module provides both the exact square wave and the
truncated harmonic expansion so the approximation error is itself
testable (the 3rd/5th harmonics sit 9.5 dB / 14 dB down, as the paper
states).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "square_wave",
    "square_wave_harmonics",
    "tone",
    "harmonic_power_db",
    "FIRST_HARMONIC_AMPLITUDE",
]

#: Amplitude of the fundamental of a unit square wave: 4/pi.
FIRST_HARMONIC_AMPLITUDE = 4.0 / math.pi


def square_wave(freq_hz: float, sample_rate_hz: float, n_samples: int, phase: float = 0.0) -> np.ndarray:
    """Unit-amplitude (+/-1) square wave sampled at *sample_rate_hz*.

    *phase* is in radians of the fundamental.
    """
    if sample_rate_hz <= 0 or freq_hz <= 0:
        raise ValueError("frequencies must be positive")
    t = np.arange(n_samples) / sample_rate_hz
    # Phase-fraction form rather than sign(sin(...)): exact half/half
    # duty with no bias at the zero crossings.
    frac = np.mod(freq_hz * t + phase / (2.0 * math.pi), 1.0)
    return np.where(frac < 0.5, 1.0, -1.0)


def square_wave_harmonics(
    freq_hz: float,
    sample_rate_hz: float,
    n_samples: int,
    n_harmonics: int = 1,
    phase: float = 0.0,
) -> np.ndarray:
    """Fourier synthesis of a square wave truncated to *n_harmonics* odd terms.

    ``n_harmonics=1`` is the paper's approximation (eq. 2): a pure
    sinusoid of amplitude 4/pi.  As ``n_harmonics`` grows the waveform
    converges to :func:`square_wave`.
    """
    if n_harmonics < 1:
        raise ValueError("n_harmonics must be >= 1")
    t = np.arange(n_samples) / sample_rate_hz
    out = np.zeros(n_samples)
    for k in range(n_harmonics):
        n = 2 * k + 1
        out += (FIRST_HARMONIC_AMPLITUDE / n) * np.sin(2.0 * math.pi * n * freq_hz * t + n * phase)
    return out


def tone(freq_hz: float, sample_rate_hz: float, n_samples: int, phase: float = 0.0) -> np.ndarray:
    """Complex exponential tone exp(j(2 pi f t + phase)).

    The excitation source broadcasts ``sin(2 pi f_c t)``; in complex
    baseband the receiver-side representation of any residual offset is
    this tone.
    """
    t = np.arange(n_samples) / sample_rate_hz
    return np.exp(1j * (2.0 * math.pi * freq_hz * t + phase))


def harmonic_power_db(n: int) -> float:
    """Power of the *n*-th odd square-wave harmonic relative to the first.

    ``n`` must be odd.  The paper quotes -9.5 dB for n=3 and -14 dB for
    n=5; this is simply ``20 log10(1/n)``.
    """
    if n < 1 or n % 2 == 0:
        raise ValueError("square waves contain only odd harmonics")
    return 20.0 * math.log10(1.0 / n)
