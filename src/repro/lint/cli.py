"""The ``repro lint`` subcommand (also ``python -m repro.lint``).

Exit codes: 0 clean, 1 new violations found, 2 parse/internal errors.
Output is one ``path:line:col: LNTxxx message`` line per finding -- the
format editors and CI annotations already understand -- or a machine
document via ``--format json|sarif``.  With ``--baseline FILE`` only
findings absent from the baseline count; ``--write-baseline FILE``
records the current findings and exits clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import load_baseline, partition, write_baseline
from repro.lint.core import find_project_root, iter_rules, lint_paths
from repro.lint.sarif import to_sarif

__all__ = ["main", "add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to *parser* (shared with the repro CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        dest="output_format",
        help="finding output format",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline; fail only on new ones",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        dest="write_baseline",
        help="record the current findings as the accepted baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.rule_id}  {rule.name:<18} {rule.rationale}")
        return 0
    select = None
    if args.select:
        select = [s.strip().upper() for s in args.select.split(",") if s.strip()]
    try:
        violations, errors = lint_paths(args.paths, select=select)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    for err in errors:
        print(f"repro lint: {err}", file=sys.stderr)

    if getattr(args, "write_baseline", None):
        write_baseline(violations, Path(args.write_baseline))
        print(
            f"repro lint: wrote baseline with {len(violations)} finding(s)"
            f" to {args.write_baseline}"
        )
        return 2 if errors else 0

    baselined = 0
    if getattr(args, "baseline", None):
        try:
            accepted = load_baseline(Path(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        violations, old = partition(violations, accepted)
        baselined = len(old)

    if args.output_format == "json":
        print(
            json.dumps(
                [
                    {
                        "path": v.path,
                        "line": v.line,
                        "col": v.col,
                        "rule": v.rule_id,
                        "message": v.message,
                    }
                    for v in violations
                ],
                indent=2,
            )
        )
    elif args.output_format == "sarif":
        root = None
        for p in args.paths:
            root = find_project_root(Path(p))
            if root is not None:
                break
        print(json.dumps(to_sarif(violations, iter_rules(), root=root), indent=2))
    else:
        for v in violations:
            print(v.format())
        if violations or errors or baselined:
            summary = f"\n{len(violations)} finding(s), {len(errors)} error(s)"
            if baselined:
                summary += f" ({baselined} baselined)"
            print(summary)
    if errors:
        return 2
    return 1 if violations else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="domain-aware static analysis (LNT001..LNT012)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
