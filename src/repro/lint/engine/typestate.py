"""Typestate checking over a CFG: state machines on tracked values.

A :class:`StateMachine` declares the legal lifecycle of one kind of
value -- for the ``ShmRing`` slot protocol: ``claimed -> written ->
released`` with an ``escaped`` state for ownership hand-offs.  The
:class:`TypestateChecker` runs the machine over every path of a
function's CFG via the shared forward solver
(:mod:`repro.lint.engine.dataflow`): a variable may be in *several*
states where paths merge, an event legal in none of them is a
bad-transition issue, and a variable that can leave the function in a
non-accepting state is a leak.

The checker is syntax-driven and rule-parameterised: the rule supplies
``births(stmt)`` (which names this statement binds to a fresh tracked
value) and ``events(stmt)`` (``(name, event, node)`` triples the
statement performs).  Simple renames (``a = b``) transfer tracking to
the new name; rebinding or ``del`` of a tracked name in a
non-accepting state is reported as a leak at that statement.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lint.engine.cfg import CFG, Block
from repro.lint.engine.dataflow import ForwardAnalysis, assigned_names

__all__ = ["StateMachine", "TypestateIssue", "TypestateChecker"]


@dataclass(frozen=True)
class StateMachine:
    """One value lifecycle: states, event transitions, accepting set."""

    initial: str
    transitions: Mapping[Tuple[str, str], str]
    accepting: FrozenSet[str]

    def on(self, state: str, event: str) -> Optional[str]:
        """Destination state, or ``None`` when *event* is illegal in *state*."""
        return self.transitions.get((state, event))


@dataclass(frozen=True, order=True)
class TypestateIssue:
    """One lifecycle violation, anchored to a source location."""

    line: int
    col: int
    kind: str  # "bad-transition" | "leak"
    name: str
    state: str
    event: Optional[str] = None


#: Checker state: tracked name -> set of possible machine states.
_State = Tuple[Tuple[str, FrozenSet[str]], ...]


def _freeze(mapping: Dict[str, FrozenSet[str]]) -> _State:
    return tuple(sorted(mapping.items()))


def _thaw(state: _State) -> Dict[str, FrozenSet[str]]:
    return dict(state)


class TypestateChecker(ForwardAnalysis):
    """Run one :class:`StateMachine` over a function CFG.

    Parameters
    ----------
    machine:
        The lifecycle to enforce.
    births:
        ``stmt -> iterable of names`` this statement binds to a fresh
        tracked value (e.g. the target of ``slot = ring.claim()``).
    events:
        ``stmt -> iterable of (name, event, node)`` the statement
        performs, in evaluation order.  Events on untracked names are
        ignored, so the callback may over-report.
    """

    def __init__(
        self,
        machine: StateMachine,
        births: Callable[[ast.stmt], Iterable[str]],
        events: Callable[[ast.stmt], Iterable[Tuple[str, str, ast.AST]]],
    ) -> None:
        self.machine = machine
        self._births = births
        self._events = events
        self._issues: Set[TypestateIssue] = set()

    # -- lattice -------------------------------------------------------

    def initial(self) -> _State:
        return ()

    def join(self, states: Sequence[_State]) -> _State:
        merged: Dict[str, FrozenSet[str]] = {}
        for state in states:
            for name, machine_states in state:
                merged[name] = merged.get(name, frozenset()) | machine_states
        return _freeze(merged)

    # -- transfer ------------------------------------------------------

    def transfer(self, block: Block, state: _State) -> _State:
        tracked = _thaw(state)
        for stmt in block.statements:
            for name, event, node in self._events(stmt):
                current = tracked.get(name)
                if current is None:
                    continue
                nxt: Set[str] = set()
                for machine_state in current:
                    dest = self.machine.on(machine_state, event)
                    if dest is None:
                        self._issues.add(
                            TypestateIssue(
                                line=getattr(node, "lineno", 1),
                                col=getattr(node, "col_offset", 0) + 1,
                                kind="bad-transition",
                                name=name,
                                state=machine_state,
                                event=event,
                            )
                        )
                    else:
                        nxt.add(dest)
                if nxt:
                    tracked[name] = frozenset(nxt)
                else:
                    del tracked[name]
            born = set(self._births(stmt))
            killed = set(assigned_names(stmt)) | born
            if isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        killed.add(target.id)
            # A plain rename `a = b` transfers tracking to `a`.
            rename = self._rename(stmt)
            for name in killed:
                old = tracked.pop(name, None)
                if old is not None and name not in born:
                    self._report_leak(stmt, name, old)
            if rename is not None and rename[1] in tracked:
                tracked[rename[0]] = tracked.pop(rename[1])
            for name in born:
                tracked[name] = frozenset({self.machine.initial})
        return _freeze(tracked)

    @staticmethod
    def _rename(stmt: ast.stmt) -> Optional[Tuple[str, str]]:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Name)
        ):
            return stmt.targets[0].id, stmt.value.id
        return None

    def _report_leak(self, node: ast.AST, name: str, states: FrozenSet[str]) -> None:
        for machine_state in sorted(states - self.machine.accepting):
            self._issues.add(
                TypestateIssue(
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0) + 1,
                    kind="leak",
                    name=name,
                    state=machine_state,
                )
            )

    # -- entry point ---------------------------------------------------

    def check(self, cfg: CFG, fn: Optional[ast.AST] = None) -> List[TypestateIssue]:
        """All issues over *cfg*; leaks are anchored to the function
        definition line (*fn*) when given, else line 1."""
        self._issues.clear()
        in_states, _out = self.solve(cfg)
        exit_state = in_states.get(cfg.exit, ())
        anchor = fn if fn is not None else ast.Pass()
        for name, states in exit_state:
            self._report_leak(anchor, name, states)
        return sorted(self._issues)
