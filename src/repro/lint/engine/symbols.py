"""Cross-module project index: symbols, imports, calls, reachability.

Per-file :class:`ModuleSummary` objects record what a module *exports
and touches* -- classes with their methods and ``self.*`` attribute
assignments, module-level functions, ``__all__``, module-level global
bindings, and every import edge.  Summaries are derived once per file
content (:func:`summarize` caches on a sha256 of the source), so
repeated project passes only re-analyse files that changed.

:class:`ProjectIndex` stitches summaries into the project-wide views
the cross-module rules (LNT007..LNT012) consume:

- the **import graph** and its transitive closure
  (:meth:`ProjectIndex.reachable_modules`) -- what code is pulled in
  when ``repro.farm.worker`` is imported into a fork;
- **class resolution across modules** (bases followed through
  ``from x import Base``) with a linearised MRO for method lookup;
- an **approximate call graph**: bare names resolve through local
  definitions and ``from``-imports, ``alias.attr`` through module
  aliases, ``self.m`` through the enclosing class's MRO, and
  ``obj.m`` falls back to the project-unique bare method name when
  exactly one exists.  Calling a class marks all of its methods
  reachable (constructor plus virtual dispatch, conservatively);
- **entry-point reachability** (:meth:`ProjectIndex.reachable_functions`)
  -- the closure the fork-safety and queue-discipline rules restrict
  themselves to, so violations are reported only where a worker can
  actually execute them.

The resolution is deliberately approximate (no type inference): it
over-approximates dispatch targets for reachability-style rules while
staying precise enough that the unique-name fallback does not invent
edges between unrelated helpers.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.utils.contracts import ArraySpec

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleSummary",
    "ProjectIndex",
    "summarize",
    "call_target",
    "contract_specs",
]

#: Call-target shapes produced by :func:`call_target`:
#: ``("name", f)`` | ``("self", m)`` | ``("dotted", base, m)`` |
#: ``("method", m)`` (attribute call on a non-Name expression).
CallTarget = Tuple[str, ...]


def call_target(node: ast.Call) -> Optional[CallTarget]:
    """Normalise a call expression into a resolvable target tuple."""
    func = node.func
    if isinstance(func, ast.Name):
        return ("name", func.id)
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                return ("self", func.attr)
            return ("dotted", base.id, func.attr)
        # self.attr.m() -- resolvable through the attribute's annotation
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            return ("selfattr", base.attr, func.attr)
        # self.table[key].m() -- through the container's element type
        if isinstance(base, ast.Subscript):
            inner = base.value
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
            ):
                return ("selfelem", inner.attr, func.attr)
        return ("method", func.attr)
    return None


def contract_specs(fn: ast.AST) -> Optional[Dict[str, str]]:
    """``param -> dtype`` from an ``@array_contract(...)`` decorator.

    Shared between LNT004 (per-file widening) and LNT012 (cross-module
    dtype flow).  Returns ``None`` when *fn* carries no contract.
    """
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    for dec in fn.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        target = dec.func
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name != "array_contract":
            continue
        specs: Dict[str, str] = {}
        for kw in dec.keywords:
            if kw.arg is None or not isinstance(kw.value, ast.Constant):
                continue
            if not isinstance(kw.value.value, str):
                continue
            try:
                parsed = ArraySpec.parse(kw.value.value)
            except (ValueError, TypeError):
                continue  # the decorator itself raises at import time
            if kw.arg != "returns":
                specs[kw.arg] = parsed.dtype
        return specs
    return None


@dataclass
class FunctionInfo:
    """One function or method definition, with its outgoing calls."""

    name: str
    qualname: str  # "fn" or "Class.fn"
    module: Optional[str]
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    params: List[str] = field(default_factory=list)
    calls: List[CallTarget] = field(default_factory=list)

    @property
    def key(self) -> str:
        """Project-unique handle (used as the reachability set element)."""
        return f"{self.module or self.path}:{self.qualname}"


@dataclass
class ClassInfo:
    """One class definition: bases as written, methods, ``self.*`` stores."""

    name: str
    module: Optional[str]
    path: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    self_attrs: Set[str] = field(default_factory=set)
    #: ``self.x`` -> class name, from annotations (``self.x: T``) or
    #: constructor-shaped assignments (``self.x = T(...)`` /
    #: ``self.x = T.from_config(...)``).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: ``self.x[...]`` -> element class name, from ``Dict[...]``/
    #: ``List[...]`` annotations.
    attr_elem_types: Dict[str, str] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.module or self.path}:{self.name}"


@dataclass
class ModuleSummary:
    """Everything the project index needs to know about one module."""

    path: str
    module: Optional[str]
    content_hash: str
    tree: ast.Module
    imports: Set[str] = field(default_factory=set)
    #: local alias -> imported module (``import numpy as np`` -> np).
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (module, symbol) for ``from m import s [as n]``.
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: qualname -> info, module-level functions AND ``Class.method``s.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level name -> the statement that binds it.
    module_globals: Dict[str, ast.stmt] = field(default_factory=dict)
    dunder_all: Optional[List[str]] = None


def _expand_name(expr: ast.expr) -> Optional[str]:
    """Dotted text of a Name/Attribute chain (``a.b.C`` -> ``"a.b.C"``)."""
    parts: List[str] = []
    node: ast.expr = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve_relative(module: Optional[str], level: int, target: Optional[str]) -> Optional[str]:
    """Absolute dotted name of a relative import, given the importer."""
    if level == 0:
        return target
    if module is None:
        return target  # best effort: keep the tail for display
    package = module.split(".")
    # level=1 strips the module's own name; deeper levels climb further.
    if len(package) < level:
        return target
    base = package[:-level]
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


def _function_info(
    fn: ast.AST,
    module: Optional[str],
    path: str,
    class_name: Optional[str] = None,
) -> FunctionInfo:
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = fn.args
    params = [a.arg for a in (*args.posonlyargs, *args.args)]
    if class_name is not None and params and params[0] in ("self", "cls"):
        params = params[1:]
    calls: List[CallTarget] = []
    seen: Set[CallTarget] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            target = call_target(node)
            if target is not None and target not in seen:
                seen.add(target)
                calls.append(target)
    qualname = fn.name if class_name is None else f"{class_name}.{fn.name}"
    return FunctionInfo(
        name=fn.name,
        qualname=qualname,
        module=module,
        path=path,
        node=fn,
        class_name=class_name,
        params=params,
        calls=calls,
    )


#: Subscripted annotation heads whose *last* type argument is the
#: element (``Dict[int, T]``) vs. the first (``List[T]``).
_CONTAINER_HEADS = {"Dict", "dict", "DefaultDict", "Mapping", "MutableMapping",
                    "List", "list", "Set", "set", "FrozenSet", "Sequence",
                    "Iterable", "Iterator", "Tuple", "tuple", "Deque"}


def _annotation_types(node: ast.expr) -> Tuple[Optional[str], Optional[str]]:
    """``(direct type, element type)`` read off an annotation AST."""
    direct = _expand_name(node)
    if direct is not None:
        return direct, None
    if isinstance(node, ast.Subscript):
        head = _expand_name(node.value)
        head_leaf = head.rsplit(".", 1)[-1] if head else None
        args = node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
        if head_leaf == "Optional" and args:
            return _expand_name(args[0]), None
        if head_leaf in _CONTAINER_HEADS and args:
            return None, _expand_name(args[-1])
    return None, None


def _constructor_type(value: ast.expr) -> Optional[str]:
    """Class name when *value* looks like ``T(...)`` or ``T.classmethod(...)``."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name) and func.id[:1].isupper():
        return func.id
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id[:1].isupper()
    ):
        return func.value.id  # StreamingReceiver.from_config(...)
    return None


def _class_info(cls: ast.ClassDef, module: Optional[str], path: str) -> ClassInfo:
    info = ClassInfo(name=cls.name, module=module, path=path, node=cls)
    for base in cls.bases:
        dotted = _expand_name(base)
        if dotted is not None:
            info.bases.append(dotted)
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = _function_info(stmt, module, path, cls.name)
    # Dataclass-style annotated fields on the class body itself.
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            direct, elem = _annotation_types(stmt.annotation)
            if direct is not None:
                info.attr_types.setdefault(stmt.target.id, direct)
            if elem is not None:
                info.attr_elem_types.setdefault(stmt.target.id, elem)
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        param_types: Dict[str, str] = {}
        for arg in (*method.args.posonlyargs, *method.args.args, *method.args.kwonlyargs):
            if arg.annotation is not None:
                direct, _elem = _annotation_types(arg.annotation)
                if direct is not None:
                    param_types[arg.arg] = direct
        for node in ast.walk(method):
            target: Optional[ast.expr] = None
            if isinstance(node, ast.AnnAssign):
                target = node.target
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            if (
                target is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if isinstance(node, ast.AnnAssign):
                    direct, elem = _annotation_types(node.annotation)
                    if direct is not None:
                        info.attr_types.setdefault(target.attr, direct)
                    if elem is not None:
                        info.attr_elem_types.setdefault(target.attr, elem)
                else:
                    ctor = _constructor_type(node.value)
                    if ctor is not None:
                        info.attr_types.setdefault(target.attr, ctor)
                    elif isinstance(node.value, ast.Name) and node.value.id in param_types:
                        # self.x = param, typed by the signature
                        info.attr_types.setdefault(target.attr, param_types[node.value.id])
    for node in ast.walk(cls):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                info.self_attrs.add(node.attr)
    return info


def _summarize_tree(path: str, module: Optional[str], tree: ast.Module, digest: str) -> ModuleSummary:
    summary = ModuleSummary(path=path, module=module, content_hash=digest, tree=tree)
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                summary.imports.add(alias.name)
                local = alias.asname or alias.name.split(".")[0]
                summary.import_aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(stmt, ast.ImportFrom):
            src = _resolve_relative(module, stmt.level, stmt.module)
            if src is None:
                continue
            summary.imports.add(src)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                summary.from_imports[alias.asname or alias.name] = (src, alias.name)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(stmt, module, path)
            summary.functions[info.qualname] = info
        elif isinstance(stmt, ast.ClassDef):
            cls = _class_info(stmt, module, path)
            summary.classes[cls.name] = cls
            for method in cls.methods.values():
                summary.functions[method.qualname] = method
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    summary.module_globals[target.id] = stmt
                    if target.id == "__all__" and isinstance(stmt, ast.Assign):
                        value = stmt.value
                        if isinstance(value, (ast.List, ast.Tuple)):
                            summary.dunder_all = [
                                elt.value
                                for elt in value.elts
                                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                            ]
    return summary


#: path -> (content sha256, summary).  Bounded by project size, so no
#: eviction: one entry per distinct file path seen this process.
_SUMMARY_CACHE: Dict[str, Tuple[str, ModuleSummary]] = {}


def summarize(
    path: Path,
    source: str,
    module: Optional[str],
    tree: Optional[ast.Module] = None,
) -> ModuleSummary:
    """Summary of one module, cached on content hash.

    A pre-parsed *tree* is only used on a cache miss; the cache key is
    ``(str(path), sha256(source))`` so stale summaries cannot survive
    an edit.
    """
    key = str(path)
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    cached = _SUMMARY_CACHE.get(key)
    if cached is not None and cached[0] == digest and cached[1].module == module:
        return cached[1]
    if tree is None:
        tree = ast.parse(source, filename=key)
    summary = _summarize_tree(key, module, tree, digest)
    _SUMMARY_CACHE[key] = (digest, summary)
    return summary


class ProjectIndex:
    """Project-wide symbol, import and call-graph views over summaries."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.summaries: List[ModuleSummary] = list(summaries)
        self.by_path: Dict[str, ModuleSummary] = {s.path: s for s in self.summaries}
        self.by_module: Dict[str, ModuleSummary] = {
            s.module: s for s in self.summaries if s.module is not None
        }
        self._bare_functions: Dict[str, List[FunctionInfo]] = {}
        for s in self.summaries:
            for fn in s.functions.values():
                self._bare_functions.setdefault(fn.name, []).append(fn)

    # -- import graph --------------------------------------------------

    def imported_modules(self, module: str) -> Set[str]:
        summary = self.by_module.get(module)
        return set(summary.imports) if summary is not None else set()

    def reachable_modules(self, roots: Iterable[str]) -> Set[str]:
        """Transitive import closure of *roots* (includes the roots).

        Edges leaving the project (stdlib, third-party) are kept in the
        result but not expanded -- their summaries do not exist.
        """
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            mod = stack.pop()
            if mod in seen:
                continue
            seen.add(mod)
            summary = self.by_module.get(mod)
            if summary is None:
                # "import a.b" also imports package "a"; try the known
                # prefix so package __init__ modules are not skipped.
                continue
            for imported in summary.imports:
                stack.append(imported)
                # importing a.b.c executes a and a.b as well
                parts = imported.split(".")
                for i in range(1, len(parts)):
                    stack.append(".".join(parts[:i]))
        return seen

    # -- classes -------------------------------------------------------

    def resolve_class(self, summary: ModuleSummary, name: str) -> Optional[ClassInfo]:
        """*name* (possibly dotted, as written in *summary*) -> class."""
        if name in summary.classes:
            return summary.classes[name]
        if name in summary.from_imports:
            src, sym = summary.from_imports[name]
            target = self.by_module.get(src)
            if target is not None:
                if sym in target.classes:
                    return target.classes[sym]
                # one level of re-export chasing
                if sym in target.from_imports:
                    src2, sym2 = target.from_imports[sym]
                    deeper = self.by_module.get(src2)
                    if deeper is not None and sym2 in deeper.classes:
                        return deeper.classes[sym2]
        if "." in name:
            base, attr = name.rsplit(".", 1)
            mod = summary.import_aliases.get(base, base)
            target = self.by_module.get(mod)
            if target is not None and attr in target.classes:
                return target.classes[attr]
        return None

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """Approximate linearisation: the class, then bases depth-first."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()

        def visit(info: ClassInfo) -> None:
            if info.key in seen:
                return
            seen.add(info.key)
            out.append(info)
            owner = self.by_path.get(info.path)
            if owner is None:
                return
            for base in info.bases:
                resolved = self.resolve_class(owner, base)
                if resolved is not None:
                    visit(resolved)

        visit(cls)
        return out

    def find_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        for info in self.mro(cls):
            if name in info.methods:
                return info.methods[name]
        return None

    def class_methods(self, cls: ClassInfo) -> List[FunctionInfo]:
        """All methods visible on *cls* (MRO order, first wins)."""
        out: Dict[str, FunctionInfo] = {}
        for info in self.mro(cls):
            for name, method in info.methods.items():
                out.setdefault(name, method)
        return list(out.values())

    # -- call resolution -----------------------------------------------

    def resolve_call(
        self,
        summary: ModuleSummary,
        target: CallTarget,
        caller_class: Optional[str] = None,
    ) -> List[FunctionInfo]:
        """Possible callees of *target* as called from *summary*.

        Calling a class resolves to *all* of its methods: the
        constructor runs and, conservatively, any method may later be
        invoked on the instance (the instance escaped into the caller).
        """
        kind = target[0]
        if kind == "name":
            name = target[1]
            if name == "cls" and caller_class is not None and caller_class in summary.classes:
                return self.class_methods(summary.classes[caller_class])
            if name in summary.functions:
                return [summary.functions[name]]
            if name in summary.classes:
                return self.class_methods(summary.classes[name])
            if name in summary.from_imports:
                src, sym = summary.from_imports[name]
                other = self.by_module.get(src)
                if other is not None:
                    if sym in other.functions:
                        return [other.functions[sym]]
                    if sym in other.classes:
                        return self.class_methods(other.classes[sym])
                resolved = self.resolve_class(summary, name)
                if resolved is not None:
                    return self.class_methods(resolved)
            return self._unique_bare(name)
        if kind == "self":
            method = target[1]
            if caller_class is not None and caller_class in summary.classes:
                found = self.find_method(summary.classes[caller_class], method)
                if found is not None:
                    return [found]
            return self._unique_bare(method)
        if kind == "dotted":
            base, attr = target[1], target[2]
            mod = summary.import_aliases.get(base)
            if mod is not None:
                other = self.by_module.get(mod)
                if other is not None:
                    if attr in other.functions:
                        return [other.functions[attr]]
                    if attr in other.classes:
                        return self.class_methods(other.classes[attr])
                return []  # external module (np.zeros, queue.Queue, ...)
            cls = self.resolve_class(summary, base)
            if cls is not None:  # ClassName.method(...)
                found = self.find_method(cls, attr)
                return [found] if found is not None else []
            return self._unique_bare(attr)
        if kind in ("selfattr", "selfelem"):
            attr, method = target[1], target[2]
            cls = summary.classes.get(caller_class) if caller_class is not None else None
            if cls is not None:
                table = "attr_types" if kind == "selfattr" else "attr_elem_types"
                for info in self.mro(cls):
                    type_name = getattr(info, table).get(attr)
                    if type_name is None:
                        continue
                    owner = self.by_path.get(info.path)
                    if owner is None:
                        break
                    resolved = self.resolve_class(owner, type_name)
                    if resolved is None:
                        break
                    found = self.find_method(resolved, method)
                    return [found] if found is not None else []
            return self._unique_bare(method)
        if kind == "method":
            return self._unique_bare(target[1])
        return []

    #: Names that are everyday builtin-collection/stdlib API: a call to
    #: one of these on an untyped receiver says nothing about which
    #: project function runs, so no fallback edge is drawn.
    _GENERIC_NAMES = frozenset({
        "add", "append", "appendleft", "extend", "insert", "remove",
        "discard", "pop", "popleft", "clear", "update", "setdefault",
        "get", "put", "join", "split", "strip", "close", "open", "read",
        "write", "copy", "sort", "reverse", "index", "count", "keys",
        "values", "items", "encode", "decode", "format", "parse",
        "build", "run", "start", "stop", "send", "flush",
    })

    def _unique_bare(self, name: str) -> List[FunctionInfo]:
        """Last-resort resolution: the single project function named
        *name*, when that name is specific enough to be meaningful."""
        if name.startswith("__") or name in self._GENERIC_NAMES:
            return []
        candidates = self._bare_functions.get(name, [])
        return list(candidates) if len(candidates) == 1 else []

    # -- reachability --------------------------------------------------

    def entry_functions(self, module: str) -> List[FunctionInfo]:
        """Every function and method defined in *module* (the entry set
        for 'code a worker process may run')."""
        summary = self.by_module.get(module)
        return list(summary.functions.values()) if summary is not None else []

    def reachable_functions(self, entries: Iterable[FunctionInfo]) -> Dict[str, FunctionInfo]:
        """Call-graph closure of *entries*, keyed by :attr:`FunctionInfo.key`."""
        reached: Dict[str, FunctionInfo] = {}
        stack = list(entries)
        while stack:
            fn = stack.pop()
            if fn.key in reached:
                continue
            reached[fn.key] = fn
            owner = self.by_path.get(fn.path)
            if owner is None:
                continue
            for target in fn.calls:
                for callee in self.resolve_call(owner, target, fn.class_name):
                    if callee.key not in reached:
                        stack.append(callee)
        return reached
