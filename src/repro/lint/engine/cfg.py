"""Intraprocedural control-flow graphs over function ASTs.

A :class:`CFG` is a set of :class:`Block` nodes -- straight-line
statement sequences -- connected by directed edges.  It is the
substrate the dataflow solver (:mod:`repro.lint.engine.dataflow`) and
the typestate walker (:mod:`repro.lint.engine.typestate`) iterate
over, and it is deliberately *conservative*: where precise modelling
would need runtime information (which statement of a ``try`` body
raises, whether a loop runs zero times), the builder adds every edge
that could exist, so path-sensitive rules over-approximate rather than
miss a path.

Modelled control flow:

- ``if``/``elif``/``else`` -- both arms, with an implicit fall-through
  arm when ``else`` is absent;
- ``while``/``for`` -- loop entry, back edge, zero-iteration exit and
  the ``else`` clause; ``break``/``continue`` edges to the right
  targets;
- ``try``/``except``/``else``/``finally`` -- an edge from every
  statement of the body into each handler (any statement may raise),
  handlers and ``else`` joining through ``finally``;
- ``return``/``raise`` -- terminate the path into the synthetic
  :attr:`CFG.exit` block (``raise`` also edges into enclosing
  handlers);
- ``with``/``match`` and any other compound statement -- treated as
  sequential / all-arms-possible.

Nested function and class definitions are *not* descended into (they
are separate CFGs); the definition statement itself lands in the
enclosing block like any other statement.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Block", "CFG", "build_cfg", "scope_nodes"]

#: Nodes owning a separate execution scope: never descended into when
#: collecting the nodes a statement evaluates itself.
_SCOPE_OWNERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def scope_nodes(stmt: ast.AST) -> Iterator[ast.AST]:
    """AST nodes evaluated by *stmt* in its own CFG block.

    Compound statements (``if``/``while``/``for``/``try``/``with``)
    appear in a block as their *header* only -- their bodies are
    threaded into separate blocks by the builder -- so walking the full
    subtree with ``ast.walk`` would double-count body effects.  This
    yields just the header expressions (test, iterable, context
    managers, match subject), and for plain statements the whole
    subtree minus nested function/class/lambda scopes (which execute
    later, if ever).
    """
    roots: List[ast.AST]
    if isinstance(stmt, (ast.If, ast.While)):
        roots = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.target, stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = []
        for item in stmt.items:
            roots.append(item.context_expr)
            if item.optional_vars is not None:
                roots.append(item.optional_vars)
    elif isinstance(stmt, ast.ExceptHandler):
        roots = [stmt.type] if stmt.type is not None else []
    elif hasattr(ast, "Match") and isinstance(stmt, getattr(ast, "Match")):
        roots = [stmt.subject]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        roots = list(stmt.decorator_list)
    elif isinstance(stmt, ast.Try):
        roots = []
    else:
        roots = [stmt]
    for root in roots:
        stack: List[ast.AST] = [root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, _SCOPE_OWNERS) and node is not root:
                continue
            if isinstance(node, _SCOPE_OWNERS):
                stack.extend(node.decorator_list if hasattr(node, "decorator_list") else [])
                continue
            stack.extend(ast.iter_child_nodes(node))


@dataclass
class Block:
    """One straight-line run of statements."""

    block_id: int
    statements: List[ast.stmt] = field(default_factory=list)
    successors: Set[int] = field(default_factory=set)
    predecessors: Set[int] = field(default_factory=set)
    #: Loop-nesting depth of this block (0 = outside any loop).
    loop_depth: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(s).__name__ for s in self.statements)
        return f"Block({self.block_id}, [{kinds}], -> {sorted(self.successors)})"


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    blocks: Dict[int, Block]
    entry: int
    exit: int

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks.values())

    def reverse_postorder(self) -> List[int]:
        """Block ids in reverse postorder from the entry (a good
        iteration order for forward dataflow)."""
        seen: Set[int] = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            stack: List[Tuple[int, Iterator[int]]] = [(bid, iter(sorted(self.blocks[bid].successors)))]
            seen.add(bid)
            while stack:
                cur, succ_iter = stack[-1]
                advanced = False
                for nxt in succ_iter:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, iter(sorted(self.blocks[nxt].successors))))
                        advanced = True
                        break
                if not advanced:
                    order.append(cur)
                    stack.pop()

        visit(self.entry)
        return list(reversed(order))

    def statements(self) -> Iterator[Tuple[int, ast.stmt]]:
        """Every ``(block_id, statement)`` pair in the graph."""
        for block in self.blocks.values():
            for stmt in block.statements:
                yield block.block_id, stmt


class _Builder:
    """Stateful CFG construction over one statement list."""

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self._next_id = 0
        self.exit = self._new_block().block_id
        #: (continue_target, break_target) stack of enclosing loops.
        self._loops: List[Tuple[int, int]] = []
        #: Handler-entry blocks of enclosing ``try`` statements: any
        #: statement inside the body may transfer there.
        self._handlers: List[List[int]] = []
        self._loop_depth = 0

    def _new_block(self) -> Block:
        block = Block(block_id=self._next_id, loop_depth=getattr(self, "_loop_depth", 0))
        self.blocks[block.block_id] = block
        self._next_id += 1
        return block

    def _edge(self, src: int, dst: int) -> None:
        self.blocks[src].successors.add(dst)
        self.blocks[dst].predecessors.add(src)

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        entry = self._new_block()
        tail = self._sequence(body, entry.block_id)
        if tail is not None:
            self._edge(tail, self.exit)
        return CFG(blocks=self.blocks, entry=entry.block_id, exit=self.exit)

    # ------------------------------------------------------------------

    def _sequence(self, body: Sequence[ast.stmt], current: Optional[int]) -> Optional[int]:
        """Thread *body* onto block *current*; returns the live tail
        block (``None`` when every path has left, e.g. after return)."""
        for stmt in body:
            if current is None:
                # Unreachable statements still get a block so rules can
                # inspect them, but it has no predecessors.
                current = self._new_block().block_id
            current = self._statement(stmt, current)
        return current

    def _statement(self, stmt: ast.stmt, current: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.blocks[current].statements.append(stmt)
            return self._sequence(stmt.body, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[current].statements.append(stmt)
            if isinstance(stmt, ast.Raise):
                for handlers in self._handlers:
                    for h in handlers:
                        self._edge(current, h)
            self._edge(current, self.exit)
            return None
        if isinstance(stmt, ast.Break):
            self.blocks[current].statements.append(stmt)
            if self._loops:
                self._edge(current, self._loops[-1][1])
            else:  # pragma: no cover - syntactically invalid source
                self._edge(current, self.exit)
            return None
        if isinstance(stmt, ast.Continue):
            self.blocks[current].statements.append(stmt)
            if self._loops:
                self._edge(current, self._loops[-1][0])
            else:  # pragma: no cover - syntactically invalid source
                self._edge(current, self.exit)
            return None
        if hasattr(ast, "Match") and isinstance(stmt, getattr(ast, "Match")):
            return self._match(stmt, current)
        # Plain statement (including nested def/class): straight line.
        self.blocks[current].statements.append(stmt)
        if self._handlers and self._may_raise(stmt):
            for handlers in self._handlers:
                for h in handlers:
                    self._edge(current, h)
        return current

    @staticmethod
    def _may_raise(stmt: ast.stmt) -> bool:
        """Could *stmt* transfer into an enclosing handler?  Anything
        with a call or subscript can; cheap literals cannot."""
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Call, ast.Subscript, ast.Attribute, ast.BinOp)):
                return True
        return False

    def _if(self, stmt: ast.If, current: int) -> Optional[int]:
        self.blocks[current].statements.append(stmt)
        then_entry = self._new_block()
        self._edge(current, then_entry.block_id)
        then_tail = self._sequence(stmt.body, then_entry.block_id)
        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(current, else_entry.block_id)
            else_tail = self._sequence(stmt.orelse, else_entry.block_id)
        else:
            else_tail = current  # fall through when the test is false
        if then_tail is None and else_tail is None:
            return None
        join = self._new_block()
        for tail in (then_tail, else_tail):
            if tail is not None:
                self._edge(tail, join.block_id)
        return join.block_id

    def _loop(self, stmt: ast.stmt, current: int) -> Optional[int]:
        # The loop head holds the While/For statement itself (its test /
        # iterable evaluate once per iteration).
        head = self._new_block()
        head.statements.append(stmt)
        self._edge(current, head.block_id)
        after = self._new_block()
        self._loops.append((head.block_id, after.block_id))
        self._loop_depth += 1
        body_entry = self._new_block()
        self._edge(head.block_id, body_entry.block_id)
        body_tail = self._sequence(stmt.body, body_entry.block_id)  # type: ignore[attr-defined]
        if body_tail is not None:
            self._edge(body_tail, head.block_id)  # back edge
        self._loop_depth -= 1
        self._loops.pop()
        orelse = getattr(stmt, "orelse", [])
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        if not infinite:
            # Zero-iteration / loop-done exit (via orelse when present).
            if orelse:
                else_entry = self._new_block()
                self._edge(head.block_id, else_entry.block_id)
                else_tail = self._sequence(orelse, else_entry.block_id)
                if else_tail is not None:
                    self._edge(else_tail, after.block_id)
            else:
                self._edge(head.block_id, after.block_id)
        if not self.blocks[after.block_id].predecessors:
            return None  # while True with no break: nothing follows
        return after.block_id

    def _try(self, stmt: ast.Try, current: int) -> Optional[int]:
        handler_entries: List[int] = []
        handler_blocks: List[Block] = []
        for handler in stmt.handlers:
            hb = self._new_block()
            hb.statements.append(handler)  # the except clause itself
            handler_entries.append(hb.block_id)
            handler_blocks.append(hb)

        body_entry = self._new_block()
        self._edge(current, body_entry.block_id)
        # The first statement of the body may raise before running, so
        # the body entry edges into every handler too.
        self._handlers.append(handler_entries)
        for h in handler_entries:
            self._edge(body_entry.block_id, h)
        body_tail = self._sequence(stmt.body, body_entry.block_id)
        self._handlers.pop()

        tails: List[Optional[int]] = []
        if stmt.orelse:
            if body_tail is not None:
                else_entry = self._new_block()
                self._edge(body_tail, else_entry.block_id)
                tails.append(self._sequence(stmt.orelse, else_entry.block_id))
        else:
            tails.append(body_tail)
        for handler, hb in zip(stmt.handlers, handler_blocks):
            tails.append(self._sequence(handler.body, hb.block_id))

        live = [t for t in tails if t is not None]
        if stmt.finalbody:
            fin_entry = self._new_block()
            for t in live:
                self._edge(t, fin_entry.block_id)
            if not live:
                # finally still runs on the exceptional path
                self._edge(current, fin_entry.block_id)
            return self._sequence(stmt.finalbody, fin_entry.block_id)
        if not live:
            return None
        join = self._new_block()
        for t in live:
            self._edge(t, join.block_id)
        return join.block_id

    def _match(self, stmt: ast.stmt, current: int) -> Optional[int]:
        self.blocks[current].statements.append(stmt)
        tails: List[Optional[int]] = [current]  # no case may match
        for case in stmt.cases:  # type: ignore[attr-defined]
            arm = self._new_block()
            self._edge(current, arm.block_id)
            tails.append(self._sequence(case.body, arm.block_id))
        live = [t for t in tails if t is not None]
        if not live:
            return None  # pragma: no cover - every arm returned
        join = self._new_block()
        for t in live:
            self._edge(t, join.block_id)
        return join.block_id


def build_cfg(fn: ast.AST) -> CFG:
    """CFG of a function definition (or any statement list owner)."""
    body = getattr(fn, "body", None)
    if body is None:  # pragma: no cover - defensive
        raise TypeError(f"cannot build a CFG over {type(fn).__name__}")
    return _Builder().build(body)
