"""Generic forward dataflow over a CFG, plus reaching definitions.

:class:`ForwardAnalysis` is the worklist solver every flow-sensitive
rule shares: subclasses provide the lattice (``initial``/``join``) and
the per-block ``transfer`` function, and :meth:`solve` iterates to a
fixpoint in reverse postorder.  States must be immutable-ish values
with ``==`` (frozensets, tuples, dicts compared by value) so the
solver can detect convergence.

:class:`ReachingDefinitions` is the classic instance: which
``(variable, statement)`` definition pairs may reach each block.  The
typestate walker (:mod:`repro.lint.engine.typestate`) is a second
instance built on the same solver.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Any, Deque, Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.lint.engine.cfg import CFG, Block, scope_nodes

__all__ = ["ForwardAnalysis", "ReachingDefinitions", "assigned_names"]


def assigned_names(stmt: ast.stmt) -> List[str]:
    """Variable names *stmt* (re)binds, in source order.

    Covers plain/augmented/annotated assignment, ``for`` targets,
    ``with ... as`` bindings and walrus expressions anywhere inside.
    """
    names: List[str] = []

    def collect(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect(elt)
        elif isinstance(target, ast.Starred):
            collect(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            collect(target)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                collect(item.optional_vars)
    for node in scope_nodes(stmt):
        if isinstance(node, ast.NamedExpr):
            collect(node.target)
    return names


class ForwardAnalysis:
    """Worklist fixpoint solver for forward dataflow problems."""

    def initial(self) -> Any:
        """State at the CFG entry."""
        raise NotImplementedError

    def join(self, states: Sequence[Any]) -> Any:
        """Merge predecessor out-states at a block boundary."""
        raise NotImplementedError

    def transfer(self, block: Block, state: Any) -> Any:
        """Out-state of *block* given its in-state."""
        raise NotImplementedError

    def solve(self, cfg: CFG) -> Tuple[Dict[int, Any], Dict[int, Any]]:
        """Returns ``(in_states, out_states)`` by block id."""
        order = cfg.reverse_postorder()
        position = {bid: i for i, bid in enumerate(order)}
        in_states: Dict[int, Any] = {}
        out_states: Dict[int, Any] = {}
        worklist: Deque[int] = deque(order)
        queued: Set[int] = set(order)
        while worklist:
            bid = worklist.popleft()
            queued.discard(bid)
            block = cfg.block(bid)
            preds = [out_states[p] for p in block.predecessors if p in out_states]
            if bid == cfg.entry:
                state = self.initial()
                if preds:  # loop back into the entry block
                    state = self.join([state, *preds])
            elif preds:
                state = self.join(preds)
            else:
                state = self.initial()
            in_states[bid] = state
            new_out = self.transfer(block, state)
            if out_states.get(bid) != new_out or bid not in out_states:
                out_states[bid] = new_out
                for succ in block.successors:
                    if succ not in queued and succ in position:
                        worklist.append(succ)
                        queued.add(succ)
                    elif succ not in position:  # pragma: no cover - defensive
                        worklist.append(succ)
                        queued.add(succ)
        return in_states, out_states


#: One definition: (variable name, id of the defining statement).
Definition = Tuple[str, int]


class ReachingDefinitions(ForwardAnalysis):
    """Which definitions of each variable may reach a block.

    States are frozensets of ``(name, stmt_id)`` pairs, where
    ``stmt_id`` is the ``id()`` of the defining AST statement --
    stable within one analysed tree.  :meth:`definitions_of` maps a
    name to the statements that may define it at block entry.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._stmts: Dict[int, ast.stmt] = {}
        for _bid, stmt in cfg.statements():
            self._stmts[id(stmt)] = stmt
        self.in_states: Dict[int, FrozenSet[Definition]] = {}
        self.out_states: Dict[int, FrozenSet[Definition]] = {}
        self.in_states, self.out_states = self.solve(cfg)

    def initial(self) -> FrozenSet[Definition]:
        return frozenset()

    def join(self, states: Sequence[FrozenSet[Definition]]) -> FrozenSet[Definition]:
        merged: Set[Definition] = set()
        for state in states:
            merged |= state
        return frozenset(merged)

    def transfer(
        self, block: Block, state: FrozenSet[Definition]
    ) -> FrozenSet[Definition]:
        live = set(state)
        for stmt in block.statements:
            killed = set(assigned_names(stmt))
            if killed:
                live = {(name, sid) for name, sid in live if name not in killed}
                for name in killed:
                    live.add((name, id(stmt)))
        return frozenset(live)

    def definitions_of(self, block_id: int, name: str) -> List[ast.stmt]:
        """Statements that may define *name* at entry of *block_id*."""
        return [
            self._stmts[sid]
            for n, sid in sorted(self.in_states.get(block_id, frozenset()))
            if n == name and sid in self._stmts
        ]
