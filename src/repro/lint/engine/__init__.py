"""Project-wide analysis engine under ``repro.lint``.

The per-file AST rules of LNT001..LNT006 see one module at a time; the
concurrency and lifecycle invariants introduced with the decode farm
(fork safety, shared-memory slot lifecycles, checkpoint schema
symmetry) span modules and control-flow paths.  This package supplies
the machinery those rules (LNT007..LNT012) are written against:

- :mod:`repro.lint.engine.cfg` -- an intraprocedural control-flow
  graph over function ASTs;
- :mod:`repro.lint.engine.dataflow` -- a generic forward worklist
  solver plus reaching definitions on top of the CFG;
- :mod:`repro.lint.engine.typestate` -- a small typestate framework
  (state machines over tracked values, checked on all CFG paths);
- :mod:`repro.lint.engine.symbols` -- the cross-module project index:
  import graph, symbol table (classes, methods, functions,
  ``__all__``), an approximate call graph and entry-point
  reachability.

Per-file summaries are cached keyed on content hash
(:func:`repro.lint.engine.symbols.summarize`), so repeated project
passes -- the fixture tests re-lint constantly -- only re-derive what
changed.
"""

from repro.lint.engine.cfg import CFG, Block, build_cfg
from repro.lint.engine.dataflow import ForwardAnalysis, ReachingDefinitions
from repro.lint.engine.symbols import (
    FunctionInfo,
    ModuleSummary,
    ProjectIndex,
    summarize,
)
from repro.lint.engine.typestate import StateMachine, TypestateChecker, TypestateIssue

__all__ = [
    "CFG",
    "Block",
    "build_cfg",
    "ForwardAnalysis",
    "ReachingDefinitions",
    "FunctionInfo",
    "ModuleSummary",
    "ProjectIndex",
    "summarize",
    "StateMachine",
    "TypestateChecker",
    "TypestateIssue",
]
