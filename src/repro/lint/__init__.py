"""Domain-aware static analysis for the CBMA reproduction.

Generic linters cannot see this repo's invariants: that every random
draw must flow from a seeded generator, that every metric name must
parse against the observability taxonomy, that a contracted
``complex64`` buffer must stay ``complex64``.  ``repro.lint`` encodes
those invariants as AST rules (LNT001..LNT006 -- see
``docs/static-analysis.md`` for the catalog and the suppression
syntax) and runs them over the tree::

    python -m repro lint src tests          # CLI (exit 1 on findings)

    from repro.lint import lint_paths
    violations, errors = lint_paths(["src"])

The linter self-hosts: ``repro lint src tests`` is a CI gate and runs
clean on this repository.
"""

from repro.lint.core import (
    REGISTRY,
    FileContext,
    Project,
    Rule,
    Violation,
    iter_rules,
    lint_paths,
    lint_source,
    register,
)

__all__ = [
    "Violation",
    "Rule",
    "FileContext",
    "Project",
    "REGISTRY",
    "register",
    "iter_rules",
    "lint_paths",
    "lint_source",
]
