"""LNT004: dtype discipline inside ``@array_contract`` functions.

A hot path that declares a ``complex64``/``float32`` buffer
(:func:`repro.utils.contracts.array_contract`) must not silently widen
it: ``buf.astype(np.complex128)`` or ``np.asarray(buf,
dtype=np.complex128)`` doubles memory traffic and quietly changes the
numerics the contract pinned down.  This rule reads each function's
contract decorator and flags explicit widening operations applied to
the declared narrow parameters:

- ``param.astype(<wider dtype>)``;
- any call receiving *param* positionally together with a
  ``dtype=<wider dtype>`` keyword (``np.asarray``, ``np.array``,
  ``np.zeros_like``, ...).

Widening is judged against :data:`repro.utils.contracts.NARROW_DTYPES`
(``float32 -> float64/complex128``, ``complex64 -> complex128``).
Parameters declared ``complex128``/``float64``/``any`` impose no
constraint here -- the runtime checker still validates them under
``REPRO_DEBUG=1``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.lint.core import FileContext, Rule, Violation, register
from repro.lint.engine.symbols import contract_specs as _contract_specs
from repro.utils.contracts import NARROW_DTYPES

#: Python builtins that imply a wide numpy dtype.
_BUILTIN_DTYPES = {"float": "float64", "complex": "complex128"}


def _dtype_name(node: ast.expr) -> Optional[str]:
    """Resolve a dtype expression to a name (``np.complex128`` ->
    ``"complex128"``, ``"float64"`` -> ``"float64"``, ``complex`` ->
    ``"complex128"``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return _BUILTIN_DTYPES.get(node.id, node.id)
    return None


@register
class DtypeDisciplineRule(Rule):
    rule_id = "LNT004"
    name = "dtype-discipline"
    rationale = (
        "operations that widen a contracted complex64/float32 buffer "
        "double memory traffic and change numerics silently"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for fn in ast.walk(ctx.tree):
            specs = _contract_specs(fn)
            if not specs:
                continue
            narrow: Dict[str, Set[str]] = {
                param: set(NARROW_DTYPES[dtype])
                for param, dtype in specs.items()
                if dtype in NARROW_DTYPES
            }
            if not narrow:
                continue
            assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                # param.astype(<wider>)
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "astype"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in narrow
                    and node.args
                ):
                    target = _dtype_name(node.args[0])
                    if target in narrow[func.value.id]:
                        yield self.violation(
                            ctx,
                            node,
                            f"`{func.value.id}.astype({target})` widens a "
                            f"buffer contracted as {specs[func.value.id]}",
                        )
                    continue
                # f(param, ..., dtype=<wider>)
                dtype_kw = next(
                    (kw for kw in node.keywords if kw.arg == "dtype"), None
                )
                if dtype_kw is None:
                    continue
                target = _dtype_name(dtype_kw.value)
                if target is None:
                    continue
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in narrow:
                        if target in narrow[arg.id]:
                            yield self.violation(
                                ctx,
                                node,
                                f"dtype={target} widens `{arg.id}`, contracted "
                                f"as {specs[arg.id]}",
                            )
                        break
