"""LNT011: queue discipline in worker loops.

A worker that blocks on ``queue.get()`` with no timeout can never
observe anything but the queue: not a dead parent, not a poisoned
sibling, not a supervisor deadline.  The chaos-soak harness kills
processes on purpose, and an untimed ``get()`` is exactly the call
that turns one injected fault into a hung farm (the child survives
its parent and waits forever).

Flagged: a ``get()`` call on a queue-like receiver with neither a
``timeout=`` keyword, a positional timeout, nor ``block=False`` --
when the call is

- inside a function **call-graph-reachable from**
  ``repro.farm.worker`` (resolved cross-module through the project
  index: the helper may live anywhere), or
- lexically inside a ``while True:`` loop in any non-test module (an
  intentionally-infinite loop is a worker loop wherever it lives).

Not flagged: ``get_nowait()``; calls in functions whose name marks the
supervised shutdown path (``shutdown``/``stop``/``close``/``join``/
``drain``/``terminate``) -- there, blocking until the peer drains is
the contract; test files.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.core import FileContext, Project, Rule, Violation, register

_ENTRY_MODULE = "repro.farm.worker"
_SHUTDOWN_MARKERS = ("shutdown", "stop", "close", "join", "drain", "terminate")


def _queueish(receiver: ast.expr) -> bool:
    parts: List[str] = []
    cur = receiver
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    if isinstance(cur, ast.Subscript):  # e.g. self._cmd_queues[w]
        inner = cur.value
        while isinstance(inner, ast.Attribute):
            parts.append(inner.attr)
            inner = inner.value
        if isinstance(inner, ast.Name):
            parts.append(inner.id)
    for part in parts:
        low = part.lower()
        if "queue" in low or low == "q" or low.endswith("_q"):
            return True
    return False


def _unbounded_get(node: ast.Call) -> bool:
    """Is this a blocking ``get()`` with no way back?"""
    if not (isinstance(node.func, ast.Attribute) and node.func.attr == "get"):
        return False
    if not _queueish(node.func.value):
        return False
    if len(node.args) >= 2:  # get(block, timeout)
        return False
    if node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) and first.value is False:
            return False  # get(False) raises Empty immediately
    for kw in node.keywords:
        if kw.arg == "timeout":
            return False
        if kw.arg == "block" and isinstance(kw.value, ast.Constant) and kw.value.value is False:
            return False
    return True


def _in_while_true(fn: ast.AST, call: ast.Call) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.While)
            and isinstance(node.test, ast.Constant)
            and bool(node.test.value)
        ):
            for sub in ast.walk(node):
                if sub is call:
                    return True
    return False


def _is_shutdown_path(qualname: str) -> bool:
    leaf = qualname.rsplit(".", 1)[-1].lower()
    return any(marker in leaf for marker in _SHUTDOWN_MARKERS)


@register
class QueueDisciplineRule(Rule):
    rule_id = "LNT011"
    name = "queue-discipline"
    rationale = (
        "an untimed queue.get() in a worker loop turns one injected "
        "fault into a hung farm; poll with a timeout and re-check liveness"
    )
    check_tests = False

    def finalize(self, project: Project) -> Iterator[Violation]:
        index = project.index
        worker_reachable: Set[str] = set()
        if _ENTRY_MODULE in index.by_module:
            entries = index.entry_functions(_ENTRY_MODULE)
            worker_reachable = set(index.reachable_functions(entries))
        for ctx in project.files:
            if ctx.is_test:
                continue
            summary = index.by_path.get(str(ctx.path))
            if summary is None:
                continue
            for fn in summary.functions.values():
                if _is_shutdown_path(fn.qualname):
                    continue
                node = fn.node
                assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                reachable = fn.key in worker_reachable
                for call in ast.walk(node):
                    if not isinstance(call, ast.Call) or not _unbounded_get(call):
                        continue
                    if reachable:
                        yield self.violation(
                            ctx,
                            call,
                            f"unbounded blocking `get()` in `{fn.qualname}`, "
                            f"reachable from {_ENTRY_MODULE}: a dead peer "
                            f"hangs the worker; pass timeout= and re-check "
                            f"liveness on Empty",
                        )
                    elif _in_while_true(node, call):
                        yield self.violation(
                            ctx,
                            call,
                            f"unbounded blocking `get()` inside `while True` "
                            f"in `{fn.qualname}`: the loop can never observe "
                            f"shutdown; pass timeout= and re-check liveness "
                            f"on Empty",
                        )
