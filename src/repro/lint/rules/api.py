"""LNT005: public-API hygiene -- ``__all__`` and documented factories.

Two drift modes this rule closes:

1. **Phantom exports.**  A name listed in a module's ``__all__`` that
   the module never binds turns ``from repro.x import *`` and every
   API-surface test into a landmine.  The per-file pass resolves each
   ``__all__`` entry against the names the module actually defines
   (functions, classes, assignments, imports -- including ones inside
   ``if``/``try`` blocks at module level).

2. **Stale factory docs.**  ``docs/api.md`` documents construction
   entry points like ``CbmaReceiver.from_config(config, *, codes=None,
   ...)``.  The project-wide pass parses every backticked
   ``module.Class.method(signature)`` reference in that file and
   checks the method exists with exactly the documented parameter
   names, in order (defaults are not compared -- renames and
   re-orderings are the doc-rotting changes).

3. **Undocumented factories.**  The reverse direction of (2): any
   public class that *defines* a ``from_config`` classmethod must be
   listed in docs/api.md with its full dotted path.  This is what
   keeps the Factories section complete as new subsystems (streaming,
   sessions, the decode farm) grow construction entry points.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, NamedTuple, Optional, Set

from repro.lint.core import FileContext, Project, Rule, Violation, register

#: ``repro.receiver.receiver.CbmaReceiver.from_config(config, *, codes=None)``
_FACTORY_RE = re.compile(
    r"`(?P<module>repro(?:\.\w+)*)\.(?P<cls>[A-Z]\w*)\.(?P<method>\w+)\((?P<sig>[^)`]*)\)`"
)


class _FoundClass(NamedTuple):
    """A module-level class definition and the file it came from."""

    ctx: FileContext
    node: ast.ClassDef


def _module_level_names(tree: ast.Module) -> Optional[Set[str]]:
    """Names bound at module level; ``None`` when a ``*`` import makes
    the binding set statically unknowable."""
    names: Set[str] = set()

    def visit_body(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    _collect_targets(target, names)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                _collect_targets(stmt.target, names)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        return False
                    names.add(alias.asname or alias.name)
            elif isinstance(stmt, ast.If):
                if not visit_body(stmt.body) or not visit_body(stmt.orelse):
                    return False
            elif isinstance(stmt, ast.Try):
                for body in (stmt.body, stmt.orelse, stmt.finalbody):
                    if not visit_body(body):
                        return False
                for handler in stmt.handlers:
                    if not visit_body(handler.body):
                        return False
            elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                sub = [stmt.body, getattr(stmt, "orelse", [])]
                if isinstance(stmt, ast.For):
                    _collect_targets(stmt.target, names)
                for body in sub:
                    if not visit_body(body):
                        return False
        return True

    if not visit_body(tree.body):
        return None
    return names


def _collect_targets(target: ast.expr, names: Set[str]) -> None:
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _collect_targets(elt, names)


def _all_entries(tree: ast.Module) -> Optional[ast.expr]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return stmt.value
    return None


def _doc_params(sig: str) -> List[str]:
    """Parameter names from a documented signature fragment (keeps the
    ``*`` separator and ``**kwargs`` markers, drops defaults)."""
    params: List[str] = []
    for part in sig.split(","):
        part = part.strip()
        if not part:
            continue
        params.append(part.split("=")[0].strip())
    return params


def _ast_params(fn: ast.FunctionDef) -> List[str]:
    """Parameter names of *fn* in documentation form (no self/cls/config
    stripping beyond the implicit first argument of methods)."""
    a = fn.args
    out = [arg.arg for arg in a.posonlyargs + a.args]
    if a.vararg is not None:
        out.append("*" + a.vararg.arg)
    elif a.kwonlyargs:
        out.append("*")
    out.extend(arg.arg for arg in a.kwonlyargs)
    if a.kwarg is not None:
        out.append("**" + a.kwarg.arg)
    return out


@register
class PublicApiRule(Rule):
    rule_id = "LNT005"
    name = "public-api"
    rationale = (
        "__all__ entries must exist and documented factories must match "
        "their real signatures, or the public surface rots silently"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        all_node = _all_entries(ctx.tree)
        if all_node is None or not isinstance(all_node, (ast.List, ast.Tuple)):
            return
        defined = _module_level_names(ctx.tree)
        if defined is None:
            return  # star import: not statically checkable
        for elt in all_node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                if elt.value not in defined:
                    yield self.violation(
                        ctx,
                        elt,
                        f"__all__ exports {elt.value!r} but the module never binds it",
                    )

    def finalize(self, project: Project) -> Iterator[Violation]:
        if project.root is None:
            return
        doc = project.root / "docs" / "api.md"
        if not doc.exists():
            return
        classes = self._collect_classes(project)
        if not classes:
            return  # src was not part of this run
        text = doc.read_text(encoding="utf-8")
        documented: Set[str] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in _FACTORY_RE.finditer(line):
                documented.add(f"{m.group('module')}.{m.group('cls')}.{m.group('method')}")
                module, cls, method = m.group("module"), m.group("cls"), m.group("method")
                key = f"{module}.{cls}"
                found = classes.get(key)
                where = f"docs/api.md:{lineno}"
                if found is None:
                    if project.module(module) is None:
                        continue  # module not in this lint run
                    yield Violation(
                        path=str(doc), line=lineno, col=m.start() + 1,
                        rule_id=self.rule_id,
                        message=f"documented class {key} does not exist ({where})",
                    )
                    continue
                fn = next(
                    (
                        s for s in found.node.body
                        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and s.name == method
                    ),
                    None,
                )
                if fn is None or isinstance(fn, ast.AsyncFunctionDef):
                    yield Violation(
                        path=str(doc), line=lineno, col=m.start() + 1,
                        rule_id=self.rule_id,
                        message=f"documented factory {key}.{method} does not exist",
                    )
                    continue
                real = _ast_params(fn)
                if real and real[0] in ("self", "cls"):
                    real = real[1:]
                doc_sig = _doc_params(m.group("sig"))
                if doc_sig != real:
                    yield Violation(
                        path=str(doc), line=lineno, col=m.start() + 1,
                        rule_id=self.rule_id,
                        message=(
                            f"{key}.{method} signature drifted: docs say "
                            f"({', '.join(doc_sig)}), code has ({', '.join(real)})"
                        ),
                    )
        yield from self._undocumented_factories(classes, documented)

    def _undocumented_factories(
        self,
        classes: Dict[str, "_FoundClass"],
        documented: Set[str],
    ) -> Iterator[Violation]:
        for key, found in classes.items():
            if any(part.startswith("_") for part in key.split(".")):
                continue  # private module or class: not public surface
            defines = any(
                isinstance(s, ast.FunctionDef) and s.name == "from_config"
                for s in found.node.body
            )
            if defines and f"{key}.from_config" not in documented:
                yield self.violation(
                    found.ctx,
                    found.node,
                    f"public factory {key}.from_config is not documented "
                    "in docs/api.md (Factories section)",
                )

    @staticmethod
    def _collect_classes(project: Project) -> Dict[str, "_FoundClass"]:
        classes: Dict[str, _FoundClass] = {}
        for ctx in project.files:
            mod = ctx.module_name
            if mod is None:
                continue
            for stmt in ctx.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    classes[f"{mod}.{stmt.name}"] = _FoundClass(ctx, stmt)
        return classes
