"""Rule modules of ``repro lint``; importing this package registers all.

One module per rule keeps each check reviewable in isolation:

========  =====================  ==========================================
Rule      Module                 Checks
========  =====================  ==========================================
LNT001    ``rng``                no unseeded/global RNG outside tests
LNT002    ``taxonomy``           metric names parse against repro.obs.taxonomy
LNT003    ``floateq``            no ==/!= against float literals
LNT004    ``dtype``              no widening of @array_contract buffers
LNT005    ``api``                __all__ and documented factories are real
LNT006    ``excepts``            no blanket exception swallowing
LNT007    ``forksafety``         no fork-unsafe module state in worker closure
LNT008    ``shmring``            ShmRing slot lifecycle typestate on all paths
LNT009    ``checkpoint``         serializer/deserializer schema symmetry
LNT010    ``taxonomy_coverage``  every constant emitted; every emission a constant
LNT011    ``queues``             no unbounded blocking get() in worker loops
LNT012    ``dtypeflow``          contracted buffers stay narrow across calls
========  =====================  ==========================================

LNT001-LNT006 are per-file AST rules; LNT007-LNT012 run in the
project-wide ``finalize`` phase on the cross-module engine
(:mod:`repro.lint.engine`).
"""

from repro.lint.rules import (
    api,
    checkpoint,
    dtype,
    dtypeflow,
    excepts,
    floateq,
    forksafety,
    queues,
    rng,
    shmring,
    taxonomy,
    taxonomy_coverage,
)

__all__ = [
    "api",
    "checkpoint",
    "dtype",
    "dtypeflow",
    "excepts",
    "floateq",
    "forksafety",
    "queues",
    "rng",
    "shmring",
    "taxonomy",
    "taxonomy_coverage",
]
