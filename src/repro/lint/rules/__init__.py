"""Rule modules of ``repro lint``; importing this package registers all.

One module per rule keeps each check reviewable in isolation:

========  =================  ==========================================
Rule      Module             Checks
========  =================  ==========================================
LNT001    ``rng``            no unseeded/global RNG outside tests
LNT002    ``taxonomy``       metric names parse against repro.obs.taxonomy
LNT003    ``floateq``        no ==/!= against float literals
LNT004    ``dtype``          no widening of @array_contract buffers
LNT005    ``api``            __all__ and documented factories are real
LNT006    ``excepts``        no blanket exception swallowing
========  =================  ==========================================
"""

from repro.lint.rules import api, dtype, excepts, floateq, rng, taxonomy

__all__ = ["api", "dtype", "excepts", "floateq", "rng", "taxonomy"]
