"""LNT001: no unseeded/global RNG outside test fixtures.

Bit-reproducibility is a stated invariant of this repo (fault plans,
trace replay, golden regressions all depend on it), and a single
``np.random.normal(...)`` call drawing from numpy's *global* generator
breaks it silently: the result changes run to run and, worse, other
code's draws perturb yours.  Every random draw must come from an
explicitly threaded :class:`numpy.random.Generator` (usually via
:func:`repro.utils.rng.make_rng`).

Flagged:

- any call through the global numpy RNG: ``np.random.normal(...)``,
  ``np.random.seed(...)``, ... (class constructors such as
  ``Generator``/``SeedSequence``/``PCG64`` are fine);
- ``default_rng()`` / ``RandomState()`` with **no** arguments -- an
  OS-entropy generator nothing can reproduce;
- any call through the stdlib ``random`` module
  (``random.random()``, ``random.shuffle(...)``, ...) except
  constructing a seeded ``random.Random(seed)``.

Test files are exempt (``check_tests = False``): fixtures may
legitimately draw throwaway entropy.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.core import FileContext, Rule, Violation, register

#: numpy.random attributes that are safe to *call* (constructors of
#: seeded objects; ``default_rng``/``RandomState`` still need an arg).
_NP_RANDOM_OK: Set[str] = {
    "default_rng",
    "RandomState",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Callables needing at least one argument to count as seeded.
_NEEDS_SEED_ARG: Set[str] = {"default_rng", "RandomState"}

#: stdlib random attributes that are fine to call (seeded-instance
#: constructors; ``Random()`` without a seed is still flagged).
_STDLIB_OK: Set[str] = {"Random", "SystemRandom"}


def _collect_aliases(tree: ast.Module):
    """Names bound to the stdlib ``random`` module, ``numpy``,
    ``numpy.random``, and functions imported *from* either RNG module."""
    stdlib_random: Set[str] = set()
    numpy_mod: Set[str] = set()
    numpy_random: Set[str] = set()
    from_imports: Set[str] = set()  # names imported from random/numpy.random
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "random":
                    stdlib_random.add(bound)
                elif alias.name == "numpy":
                    numpy_mod.add(bound)
                elif alias.name == "numpy.random":
                    numpy_random.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy" and node.level == 0:
                for alias in node.names:
                    if alias.name == "random":
                        numpy_random.add(alias.asname or "random")
            elif node.module in ("random", "numpy.random") and node.level == 0:
                for alias in node.names:
                    from_imports.add(alias.asname or alias.name)
    return stdlib_random, numpy_mod, numpy_random, from_imports


def _is_argless(call: ast.Call) -> bool:
    return not call.args and not call.keywords


@register
class UnseededRngRule(Rule):
    rule_id = "LNT001"
    name = "unseeded-rng"
    rationale = (
        "global/unseeded RNG calls break bit-reproducibility; thread a "
        "seeded numpy Generator (repro.utils.rng.make_rng) instead"
    )
    check_tests = False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        stdlib_random, numpy_mod, numpy_random, from_imports = _collect_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # bare names imported from random / numpy.random
            if isinstance(func, ast.Name) and func.id in from_imports:
                fn = func.id
                if fn in _NEEDS_SEED_ARG or fn == "Random":
                    if _is_argless(node):
                        yield self.violation(
                            ctx, node, f"`{fn}()` without a seed is irreproducible"
                        )
                elif fn not in (_NP_RANDOM_OK | _STDLIB_OK):
                    yield self.violation(
                        ctx,
                        node,
                        f"global RNG call `{fn}(...)`; draw from a seeded Generator",
                    )
                continue
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            # np.random.<fn>(...) via the numpy module
            if (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in numpy_mod
            ) or (isinstance(base, ast.Name) and base.id in numpy_random):
                fn = func.attr
                if fn in _NEEDS_SEED_ARG:
                    if _is_argless(node):
                        yield self.violation(
                            ctx, node, f"`{fn}()` without a seed is irreproducible"
                        )
                elif fn not in _NP_RANDOM_OK:
                    yield self.violation(
                        ctx,
                        node,
                        f"global numpy RNG call `np.random.{fn}(...)`; "
                        "thread a seeded Generator instead",
                    )
                continue
            # random.<fn>(...) via the stdlib module
            if isinstance(base, ast.Name) and base.id in stdlib_random:
                fn = func.attr
                if fn == "Random" and _is_argless(node):
                    yield self.violation(
                        ctx, node, "`random.Random()` without a seed is irreproducible"
                    )
                elif fn not in _STDLIB_OK:
                    yield self.violation(
                        ctx,
                        node,
                        f"global stdlib RNG call `random.{fn}(...)`; "
                        "use a seeded numpy Generator instead",
                    )
