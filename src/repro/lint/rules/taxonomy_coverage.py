"""LNT010: taxonomy coverage, the reverse direction of LNT002.

LNT002 checks that every literal metric name *parses against* the
taxonomy; this rule closes the loop project-wide:

- **every fixed constant** declared on ``repro.obs.taxonomy.C``
  (counters) and ``G`` (gauges) must be referenced by at least one
  non-test module outside ``taxonomy.py`` itself -- an unreferenced
  constant is a metric the docs promise but nothing emits, which is
  how dashboards end up watching flat-lined ghosts;
- **every emission site** (``.count(...)`` / ``.gauge(...)`` /
  ``.span(...)`` and their private wrappers) that passes a string
  literal *exactly equal* to a declared constant's value must use the
  constant instead -- a pasted literal keeps working until the
  constant is renamed, then silently opens a second bucket.

Both directions need the whole project: the declaration lives in one
module and the emissions in many others, so no single file shows the
mismatch.  The check is purely syntactic over the project index (the
taxonomy module is never imported), and runs only when
``repro.obs.taxonomy`` is part of the linted tree.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import Project, Rule, Violation, register

_TAXONOMY_MODULE = "repro.obs.taxonomy"
_CONSTANT_CLASSES = ("C", "G")
_EMITTERS = {"count", "gauge", "span", "_count", "_gauge", "_span"}


def _declared_constants(tree: ast.Module) -> Dict[str, Tuple[str, str, ast.stmt]]:
    """``value -> (class, name, stmt)`` for C.*/G.* string constants."""
    out: Dict[str, Tuple[str, str, ast.stmt]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef) or node.name not in _CONSTANT_CLASSES:
            continue
        for stmt in node.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    out[value.value] = (node.name, target.id, stmt)
    return out


def _referenced_constants(tree: ast.Module) -> Set[Tuple[str, str]]:
    """``(class, name)`` pairs referenced as ``C.NAME``/``G.NAME``."""
    out: Set[Tuple[str, str]] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id in _CONSTANT_CLASSES:
                out.add((base.id, node.attr))
            elif isinstance(base, ast.Attribute) and base.attr in _CONSTANT_CLASSES:
                out.add((base.attr, node.attr))
    return out


@register
class TaxonomyCoverageRule(Rule):
    rule_id = "LNT010"
    name = "taxonomy-coverage"
    rationale = (
        "an unreferenced taxonomy constant is a promised metric nothing "
        "emits; a pasted literal detaches from renames and forks the bucket"
    )
    check_tests = False

    def finalize(self, project: Project) -> Iterator[Violation]:
        index = project.index
        taxonomy = index.by_module.get(_TAXONOMY_MODULE)
        if taxonomy is None:
            return
        constants = _declared_constants(taxonomy.tree)
        by_pair = {(cls, name): (value, stmt) for value, (cls, name, stmt) in constants.items()}
        referenced: Set[Tuple[str, str]] = set()

        for ctx in project.files:
            if ctx.is_test or str(ctx.path) == taxonomy.path:
                continue
            referenced |= _referenced_constants(ctx.tree)
            yield from self._literal_emissions(ctx, constants)

        for (cls, name), (value, stmt) in sorted(by_pair.items()):
            if (cls, name) in referenced:
                continue
            yield Violation(
                path=taxonomy.path,
                line=getattr(stmt, "lineno", 1),
                col=getattr(stmt, "col_offset", 0) + 1,
                rule_id=self.rule_id,
                message=(
                    f"taxonomy constant `{cls}.{name}` (\"{value}\") is never "
                    f"emitted by any non-test module: delete it or instrument "
                    f"the code path it promises"
                ),
            )

    def _literal_emissions(
        self, ctx, constants: Dict[str, Tuple[str, str, ast.stmt]]
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name not in _EMITTERS or not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            hit = constants.get(first.value)
            if hit is None:
                continue
            cls, const_name, _stmt = hit
            yield self.violation(
                ctx,
                first,
                f"literal \"{first.value}\" duplicates taxonomy constant "
                f"`{cls}.{const_name}`; emit through the constant so renames "
                f"cannot fork the metric bucket",
            )
