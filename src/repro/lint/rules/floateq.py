"""LNT003: no ``==``/``!=`` against float literals.

Exact equality on floating-point values is almost always a latent bug
in DSP code: ``frac == 0.1`` is false for every ``frac`` computed by
arithmetic that *should* land on 0.1, and numpy silently broadcasts
the comparison over arrays, turning one wrong branch into a wrong
mask.  Compare with a tolerance (``np.isclose``, ``math.isclose``, or
an explicit epsilon) instead.

The rule flags any comparison chain where an ``==``/``!=`` operand is
a float literal (including negated literals like ``-1.5``).  It does
**not** attempt type inference on variables -- that keeps the false
positive rate at zero on this codebase, at the cost of missing
float-typed variables compared to each other.

Exemptions:

- comparisons against ``0.0``/``-0.0`` where the *intent* is a
  sentinel test are still flagged; spell the sentinel test as a
  tolerance check or suppress the line with a justification;
- test files (``check_tests = False``): golden regressions and
  bit-reproducibility tests compare exact values on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import FileContext, Rule, Violation, register


def _float_literal(node: ast.expr) -> Optional[float]:
    """The literal value when *node* is a float constant (or its negation)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return node.value
    return None


@register
class FloatEqualityRule(Rule):
    rule_id = "LNT003"
    name = "float-equality"
    rationale = (
        "exact ==/!= on floats is brittle under rounding; use "
        "np.isclose/math.isclose or an explicit tolerance"
    )
    check_tests = False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    value = _float_literal(side)
                    if value is not None:
                        sym = "==" if isinstance(op, ast.Eq) else "!="
                        yield self.violation(
                            ctx,
                            side,
                            f"float literal compared with `{sym} {value!r}`; "
                            "use a tolerance (np.isclose) instead",
                        )
                        break
