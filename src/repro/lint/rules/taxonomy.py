"""LNT002: every counter/gauge/span name parses against the taxonomy.

The stage-attributed error budget (:mod:`repro.obs.profile`) is only
as sound as its keys: a typo'd ``errors.pipline.decode.exception``
opens a fresh bucket that no dashboard, test or budget reconciliation
ever looks at.  This rule checks every *statically visible* metric
name against the declared registry
(:data:`repro.obs.taxonomy.TAXONOMY`):

- string literals passed to ``<tracer>.count/gauge/span`` where the
  receiver is tracer-shaped (named ``tracer``/``*_tracer``/
  ``self.tracer`` ...) are fully validated;
- f-strings are validated by their literal prefix: the prefix must
  align with a declared family and the dynamic tail must fall on a
  placeholder segment (``f"errors.{reason}"`` is checkable,
  ``f"{x}.count"`` is not);
- literals passed to *other* receivers (``somestring.count(".")``)
  are only checked when they look like a metric name, i.e. their
  first dotted segment matches a declared family root -- this keeps
  ``str.count``/``list.count`` out of scope;
- names built from the taxonomy's own constants/constructors are
  correct by construction and invisible here, which is the point of
  migrating call sites onto them.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.core import FileContext, Rule, Violation, register
from repro.obs import taxonomy as tax

_KINDS = {
    "count": tax.MetricKind.COUNTER,
    "gauge": tax.MetricKind.GAUGE,
    "span": tax.MetricKind.SPAN,
}


def _tracerish(expr: ast.expr) -> bool:
    """Does *expr* look like a tracer reference?"""
    if isinstance(expr, ast.Name):
        return expr.id == "tracer" or expr.id.endswith("_tracer")
    if isinstance(expr, ast.Attribute):
        return expr.attr == "tracer" or expr.attr.endswith("_tracer")
    return False


def _fstring_prefix(node: ast.JoinedStr) -> Optional[str]:
    """Leading literal text of an f-string (None when it starts dynamic)."""
    parts = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        else:
            break
    prefix = "".join(parts)
    return prefix or None


def _prefix_matches_family(prefix: str, kind: tax.MetricKind) -> bool:
    """Could some declared family produce a name starting with *prefix*
    followed by dynamic text?  Complete segments must match the family
    segment-for-segment (placeholders match anything); a trailing
    partial segment must either prefix the family's fixed segment or
    land on a placeholder."""
    ends_on_boundary = prefix.endswith(".")
    segs = [s for s in prefix.split(".") if s] if ends_on_boundary else prefix.split(".")
    partial = None if ends_on_boundary else segs[-1]
    complete = segs if ends_on_boundary else segs[:-1]
    for fam in tax.iter_families(kind):
        fsegs = fam.segments
        if len(complete) + (1 if partial is not None else 0) > len(fsegs):
            continue
        ok = True
        for given, expected in zip(complete, fsegs):
            if not expected.startswith("<") and given != expected:
                ok = False
                break
        if not ok:
            continue
        if partial is not None:
            expected = fsegs[len(complete)]
            if not expected.startswith("<") and not expected.startswith(partial):
                continue
        # the dynamic tail must have segments left to fill
        consumed = len(complete) + (1 if partial is not None else 0)
        if consumed < len(fsegs) or (partial is not None and fsegs[-1].startswith("<")):
            return True
        if consumed == len(fsegs) and partial is not None and expected.startswith("<"):
            return True
    return False


def _metric_call(node: ast.Call) -> Optional[Tuple[tax.MetricKind, ast.expr, bool]]:
    """``(kind, first_arg, receiver_is_tracer)`` for metric-shaped calls."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in _KINDS:
        return None
    if not node.args:
        return None
    return _KINDS[func.attr], node.args[0], _tracerish(func.value)


@register
class CounterTaxonomyRule(Rule):
    rule_id = "LNT002"
    name = "metric-taxonomy"
    rationale = (
        "metric names must parse against repro.obs.taxonomy so typos "
        "cannot open unaccounted error-budget buckets"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        roots = {
            kind: set(tax.known_prefixes(kind)) for kind in tax.MetricKind
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            found = _metric_call(node)
            if found is None:
                continue
            kind, arg, is_tracer = found
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name = arg.value
                looks_like_metric = name.split(".", 1)[0] in roots[kind]
                if not is_tracer and not looks_like_metric:
                    continue
                err = tax.validate(name, kind)
                if err is not None:
                    yield self.violation(ctx, arg, f"undeclared {kind.value} name: {err}")
            elif isinstance(arg, ast.JoinedStr):
                prefix = _fstring_prefix(arg)
                if prefix is None:
                    continue  # fully dynamic; not statically checkable
                looks_like_metric = prefix.split(".", 1)[0] in roots[kind]
                if not is_tracer and not looks_like_metric:
                    continue
                if not _prefix_matches_family(prefix, kind):
                    yield self.violation(
                        ctx,
                        arg,
                        f"f-string {kind.value} name prefix {prefix!r} aligns with "
                        "no declared family in repro.obs.taxonomy",
                    )
            # names from variables/attributes (e.g. taxonomy constants or
            # DecodeFailure.counter) are validated at their construction
            # site, not here
