"""LNT009: checkpoint schema symmetry between serializer pairs.

A checkpoint that writes a field nobody reads is dead weight that
rots; a restore that reads a field nobody writes is a latent
``KeyError`` on the next real checkpoint.  Both failure modes have
bitten streaming-session formats before, and neither is visible to a
per-file rule once serializer and deserializer live in different
modules (a base class serialises, a subclass restores).

For every class in the project, this rule pairs serializer and
deserializer methods **through the cross-module MRO** of the project
index:

========================  ============================
writer                    paired reader
========================  ============================
``to_dict``               ``from_dict``
``to_records``            ``from_records``
``checkpoint_records``    ``from_checkpoint_records``
``to_json``               ``from_json``
========================  ============================

Written keys are string constants used as dict-literal keys or
subscript-store keys inside the writer (same-class ``self._helper()``
calls are inlined one level, so ``{**self._geometry()}`` contributes
the helper's keys).  Read keys are constant subscripts,
``.get("key")`` and ``.pop("key")`` inside the reader (same
inlining).  A side with *dynamic* access -- non-constant keys,
``.update(...)``, ``**kwargs`` of unknown shape, iteration over the
record -- is treated as open: only the opposite direction is checked,
so a reader that loops over a key list suppresses written-but-unread
findings without hiding read-but-unwritten ones.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import Project, Rule, Violation, register
from repro.lint.engine.symbols import ClassInfo, FunctionInfo, ModuleSummary, ProjectIndex

_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("to_dict", "from_dict"),
    ("to_records", "from_records"),
    ("checkpoint_records", "from_checkpoint_records"),
    ("to_json", "from_json"),
)

#: Keys every serializer may write without a reader consuming them --
#: self-describing envelope fields checked by generic validation.
_ENVELOPE_KEYS = {"format", "version", "type"}


class _KeySet:
    """Constant keys touched by one side, plus an 'open' dynamic flag."""

    def __init__(self) -> None:
        self.keys: Set[str] = set()
        self.dynamic = False


def _self_call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("self", "cls")
    ):
        return func.attr
    return None


def _collect_written(fn: ast.AST, resolve_helper) -> _KeySet:
    out = _KeySet()
    _written_into(fn, out, resolve_helper, depth=0)
    return out


def _written_into(fn: ast.AST, out: _KeySet, resolve_helper, depth: int) -> None:
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    out.keys.add(key.value)
                elif key is None:  # {**expr} splat
                    helper = _maybe_inline(value, resolve_helper, depth)
                    if helper is not None:
                        _written_into(helper, out, resolve_helper, depth + 1)
                    else:
                        out.dynamic = True
                else:
                    out.dynamic = True
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Store):
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                out.keys.add(key.value)
            else:
                out.dynamic = True
        elif isinstance(node, ast.Call):
            name = node.func.attr if isinstance(node.func, ast.Attribute) else None
            if name == "update":
                out.dynamic = True
            helper = _maybe_inline(node, resolve_helper, depth)
            if helper is not None:
                _written_into(helper, out, resolve_helper, depth + 1)


def _collect_read(fn: ast.AST, resolve_helper) -> _KeySet:
    out = _KeySet()
    _read_into(fn, out, resolve_helper, depth=0)
    return out


def _read_into(fn: ast.AST, out: _KeySet, resolve_helper, depth: int) -> None:
    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                out.keys.add(key.value)
            elif not isinstance(key, ast.Constant):
                out.dynamic = True
        elif isinstance(node, ast.Call):
            name = node.func.attr if isinstance(node.func, ast.Attribute) else None
            if name in ("get", "pop"):
                if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                    node.args[0].value, str
                ):
                    out.keys.add(node.args[0].value)
                else:
                    out.dynamic = True
            helper = _maybe_inline(node, resolve_helper, depth)
            if helper is not None:
                _read_into(helper, out, resolve_helper, depth + 1)
        elif isinstance(node, (ast.For, ast.comprehension)):
            # Iterating the record consumes arbitrary keys.
            iter_expr = node.iter
            for sub in ast.walk(iter_expr):
                if isinstance(sub, ast.Call):
                    attr = sub.func.attr if isinstance(sub.func, ast.Attribute) else None
                    if attr in ("items", "keys", "values"):
                        out.dynamic = True


def _maybe_inline(node: ast.expr, resolve_helper, depth: int) -> Optional[ast.AST]:
    """Body of a same-class ``self._helper()`` call, one level deep."""
    if depth >= 1 or not isinstance(node, ast.Call):
        return None
    name = _self_call_name(node)
    if name is None:
        return None
    return resolve_helper(name)


@register
class CheckpointSymmetryRule(Rule):
    rule_id = "LNT009"
    name = "checkpoint-symmetry"
    rationale = (
        "asymmetric serializer pairs either ship dead fields or crash "
        "on restore; the pair often spans modules via inheritance"
    )
    check_tests = False

    def finalize(self, project: Project) -> Iterator[Violation]:
        index = project.index
        test_paths = {str(ctx.path) for ctx in project.files if ctx.is_test}
        seen: Set[Tuple[str, str]] = set()
        for summary in index.summaries:
            if summary.path in test_paths:
                continue
            for cls in summary.classes.values():
                for wname, rname in _PAIRS:
                    writer = index.find_method(cls, wname)
                    reader = index.find_method(cls, rname)
                    if writer is None or reader is None:
                        continue
                    if writer.path in test_paths or reader.path in test_paths:
                        continue
                    pair_key = (writer.key, reader.key)
                    if pair_key in seen:
                        continue
                    seen.add(pair_key)
                    yield from self._compare(index, cls, writer, reader)

    def _compare(
        self,
        index: ProjectIndex,
        cls: ClassInfo,
        writer: FunctionInfo,
        reader: FunctionInfo,
    ) -> Iterator[Violation]:
        def resolver_for(method: FunctionInfo):
            owner_cls = None
            owner = index.by_path.get(method.path)
            if owner is not None and method.class_name in owner.classes:
                owner_cls = owner.classes[method.class_name]

            def resolve(name: str) -> Optional[ast.AST]:
                base = owner_cls if owner_cls is not None else cls
                found = index.find_method(base, name)
                return found.node if found is not None else None

            return resolve

        written = _collect_written(writer.node, resolver_for(writer))
        read = _collect_read(reader.node, resolver_for(reader))
        if not read.dynamic:
            unread = sorted(written.keys - read.keys - _ENVELOPE_KEYS)
            if unread:
                yield Violation(
                    path=writer.path,
                    line=getattr(writer.node, "lineno", 1),
                    col=getattr(writer.node, "col_offset", 0) + 1,
                    rule_id=self.rule_id,
                    message=(
                        f"`{writer.qualname}` writes {', '.join(repr(k) for k in unread)} "
                        f"but `{reader.qualname}` never reads them: dead "
                        f"checkpoint fields (or a missing restore path)"
                    ),
                )
        if not written.dynamic:
            unwritten = sorted(read.keys - written.keys)
            if unwritten:
                yield Violation(
                    path=reader.path,
                    line=getattr(reader.node, "lineno", 1),
                    col=getattr(reader.node, "col_offset", 0) + 1,
                    rule_id=self.rule_id,
                    message=(
                        f"`{reader.qualname}` reads {', '.join(repr(k) for k in unwritten)} "
                        f"that `{writer.qualname}` never writes: restore will "
                        f"miss them on a fresh checkpoint"
                    ),
                )
