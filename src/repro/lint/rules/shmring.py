"""LNT008: ShmRing slot lifecycle typestate.

The shared-memory ring protocol (``repro.farm.ring``) is
``claim -> write -> (hand off | release)`` with ``release`` exactly
once per slot and nothing touching a slot afterwards.  A leaked slot
permanently shrinks ring capacity; a write or view after release races
the next claimant of the same slot.  This rule checks the protocol on
*every CFG path* of every function, via the typestate framework
(:mod:`repro.lint.engine.typestate`):

- each ``slot = <ring>.claim()`` births a tracked value in state
  ``claimed``;
- ``<ring>.write(slot, ...)`` moves to ``written``; ``view`` keeps the
  state; ``release`` moves to ``released``;
- passing the slot to any *non-ring* call (a command queue ``put``, a
  helper), returning/yielding it, or storing it into a container or
  attribute is an **escape** -- ownership moved, the function is no
  longer responsible;
- using (write/view/release) a slot in state ``released`` is flagged:
  use-after-release or double release;
- a path reaching function exit (or rebinding the name) while the slot
  is still ``claimed``/``written`` is flagged as a leak.

A receiver counts as a ring when its name contains ``ring`` *or* when
the variable was constructed from the ``ShmRing`` class -- resolved
through imports by the project index, so
``r = ShmRing(...); s = r.claim()`` is tracked even though neither
name says "ring" and the class lives in another module.

The rule also checks ``close``/``unlink`` ordering on ring receivers
within one function: ``unlink`` (which removes the shared-memory
segment) must not precede ``close`` (which drops the local mapping).
Test files are exempt -- protocol-violating sequences are exactly what
ring tests construct on purpose.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import FileContext, Project, Rule, Violation, register
from repro.lint.engine.cfg import build_cfg, scope_nodes
from repro.lint.engine.typestate import StateMachine, TypestateChecker, TypestateIssue

_MACHINE = StateMachine(
    initial="claimed",
    transitions={
        ("claimed", "write"): "written",
        ("written", "write"): "written",
        ("claimed", "view"): "claimed",
        ("written", "view"): "written",
        ("claimed", "release"): "released",
        ("written", "release"): "released",
        ("claimed", "escape"): "escaped",
        ("written", "escape"): "escaped",
        ("released", "escape"): "escaped",
        ("escaped", "escape"): "escaped",
    },
    accepting=frozenset({"released", "escaped"}),
)

_SLOT_EVENTS = {"write": "write", "view": "view", "release": "release"}


def _receiver_text(node: ast.expr) -> Optional[str]:
    """Dotted text of a call receiver (``self._ring`` -> "self._ring")."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


class _FunctionModel:
    """Per-function birth/event extraction fed to the typestate checker."""

    def __init__(self, fn: ast.AST, ring_vars: Set[str]) -> None:
        self.fn = fn
        self.ring_vars = ring_vars

    def _is_ring(self, receiver: ast.expr) -> bool:
        text = _receiver_text(receiver)
        if text is None:
            return False
        root = text.split(".", 1)[0]
        if root in self.ring_vars:
            return True
        return any("ring" in part.lower() for part in text.split("."))

    def births(self, stmt: ast.stmt) -> List[str]:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return []
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return []
        value = stmt.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "claim"
            and self._is_ring(value.func.value)
        ):
            return [target.id]
        return []

    def events(self, stmt: ast.stmt) -> List[Tuple[str, str, ast.AST]]:
        out: List[Tuple[str, str, ast.AST]] = []
        own_nodes = list(scope_nodes(stmt))
        for node in own_nodes:
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and self._is_ring(func.value):
                if func.attr == "claim":
                    continue
                event = _SLOT_EVENTS.get(func.attr)
                if event is not None:
                    for arg in node.args[:1]:
                        if isinstance(arg, ast.Name):
                            out.append((arg.id, event, node))
                    continue
                if func.attr in ("close", "unlink"):
                    continue
            # Any other call receiving the slot transfers ownership.
            for arg in (*node.args, *(kw.value for kw in node.keywords)):
                for name in ast.walk(arg):
                    if isinstance(name, ast.Name) and isinstance(name.ctx, ast.Load):
                        out.append((name.id, "escape", node))
        # Returning/yielding the slot is also an ownership transfer.
        for node in own_nodes:
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) and node.value is not None:
                for name in ast.walk(node.value):
                    if isinstance(name, ast.Name) and isinstance(name.ctx, ast.Load):
                        out.append((name.id, "escape", node))
        # Storing the slot into a container/attribute: pending table etc.
        if isinstance(stmt, ast.Assign) and not isinstance(stmt.value, ast.Name):
            for target in stmt.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute, ast.Tuple, ast.List)):
                    for name in ast.walk(stmt.value):
                        if isinstance(name, ast.Name) and isinstance(name.ctx, ast.Load):
                            out.append((name.id, "escape", stmt))
                    break
            else:
                if isinstance(stmt.targets[0], ast.Name) and not isinstance(stmt.value, ast.Call):
                    # slot folded into a tuple/expression bound to a name
                    for name in ast.walk(stmt.value):
                        if isinstance(name, ast.Name) and isinstance(name.ctx, ast.Load):
                            out.append((name.id, "escape", stmt))
        return out


@register
class ShmRingTypestateRule(Rule):
    rule_id = "LNT008"
    name = "shmring-typestate"
    rationale = (
        "a leaked ring slot shrinks capacity forever; touching a slot "
        "after release races the next claimant"
    )
    check_tests = False

    def finalize(self, project: Project) -> Iterator[Violation]:
        index = project.index
        for ctx in project.files:
            if ctx.is_test:
                continue
            summary = index.by_path.get(str(ctx.path))
            if summary is None:
                continue
            if "claim" not in ctx.source and "unlink" not in ctx.source:
                continue  # cheap pre-filter before any CFG work
            ring_classes = self._ring_constructor_names(index, summary)
            for fn in ast.walk(ctx.tree):
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                ring_vars = self._ring_vars(fn, ring_classes)
                model = _FunctionModel(fn, ring_vars)
                yield from self._check_function(ctx, fn, model)
                yield from self._check_unlink_order(ctx, fn, model)

    @staticmethod
    def _ring_constructor_names(index, summary) -> Set[str]:
        """Local names that construct a ShmRing (direct or imported)."""
        names: Set[str] = set()
        for local, (_mod, sym) in summary.from_imports.items():
            if sym == "ShmRing":
                names.add(local)
        if "ShmRing" in summary.classes:
            names.add("ShmRing")
        return names

    @staticmethod
    def _ring_vars(fn: ast.AST, ring_classes: Set[str]) -> Set[str]:
        """Names bound (anywhere in *fn*) to a ShmRing construction."""
        ring_vars: Set[str] = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                callee = node.value.func
                name = callee.id if isinstance(callee, ast.Name) else None
                if name in ring_classes:
                    ring_vars.add(node.targets[0].id)
        return ring_vars

    def _check_function(
        self, ctx: FileContext, fn: ast.AST, model: _FunctionModel
    ) -> Iterator[Violation]:
        has_claim = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "claim"
            and model._is_ring(node.func.value)
            for node in ast.walk(fn)
        )
        if not has_claim:
            return
        checker = TypestateChecker(_MACHINE, model.births, model.events)
        for issue in checker.check(build_cfg(fn), fn):
            yield Violation(
                path=str(ctx.path),
                line=issue.line,
                col=issue.col,
                rule_id=self.rule_id,
                message=self._message(fn, issue),
            )

    @staticmethod
    def _message(fn: ast.AST, issue: TypestateIssue) -> str:
        fname = getattr(fn, "name", "<function>")
        if issue.kind == "leak":
            return (
                f"ring slot `{issue.name}` can leave `{fname}` in state "
                f"'{issue.state}' on some path; every claim() must reach "
                f"release() or hand the slot off"
            )
        if issue.event == "release" and issue.state == "released":
            return (
                f"ring slot `{issue.name}` may already be released here "
                f"(double release races the next claimant)"
            )
        cause = "release" if issue.state == "released" else "ownership hand-off"
        return (
            f"ring slot `{issue.name}` is used ('{issue.event}') after "
            f"{cause} on some path through `{fname}`"
        )

    def _check_unlink_order(
        self, ctx: FileContext, fn: ast.AST, model: _FunctionModel
    ) -> Iterator[Violation]:
        closes: Dict[str, int] = {}
        unlinks: Dict[str, Tuple[int, ast.Call]] = {}
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if not model._is_ring(node.func.value):
                continue
            recv = _receiver_text(node.func.value) or "?"
            if node.func.attr == "close":
                line = getattr(node, "lineno", 0)
                closes[recv] = min(closes.get(recv, line), line)
            elif node.func.attr == "unlink":
                if recv not in unlinks:
                    unlinks[recv] = (getattr(node, "lineno", 0), node)
        for recv, (line, node) in unlinks.items():
            close_line = closes.get(recv)
            if close_line is not None and close_line > line:
                yield self.violation(
                    ctx,
                    node,
                    f"`{recv}.unlink()` before `{recv}.close()`: unlink the "
                    f"segment only after the local mapping is closed",
                )
