"""LNT007: fork-unsafe module state reachable from farm workers.

``DecodeFarm`` forks its workers: every module imported by
``repro.farm.worker`` at fork time is *duplicated* into each child.
Module-global mutable state and live OS handles are the two classic
fork hazards this rule hunts, project-wide:

- a **module-level live handle** -- ``open(...)``, ``SharedMemory``,
  ``Tracer``, ``Popen``, multiprocessing ``Queue``/``Lock``/``Pool``,
  temp files -- created at import time in any module transitively
  imported by ``repro.farm.worker``: after fork, parent and children
  share (or fight over) the same descriptor;
- a **module-level RNG instance** in that import closure: each forked
  worker inherits the identical generator state and replays the same
  stream, silently correlating "independent" sessions;
- **in-function mutation of a module global** (subscript/attribute
  stores, ``+=``, mutating method calls like ``append``/``update``)
  in any function call-graph-reachable from the functions and methods
  of ``repro.farm.worker``: the mutation is per-process after fork,
  so the parent's view and the workers' views diverge without any
  error.

Import-time mutation (registries populated by decorators) is fork-safe
-- every process replays the same imports -- and is not flagged.  Test
files are exempt.  Fork-safe caches (deterministic, content-addressed
memos) should carry a line suppression explaining why.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.core import FileContext, Project, Rule, Violation, register
from repro.lint.engine.symbols import FunctionInfo, ModuleSummary

#: The fork boundary: everything importable/callable from here runs in
#: forked worker processes.
_ENTRY_MODULE = "repro.farm.worker"

#: Constructors whose results hold OS/IPC state a fork duplicates.
_HANDLE_CONSTRUCTORS = {
    "open",
    "SharedMemory",
    "Popen",
    "TemporaryFile",
    "NamedTemporaryFile",
    "Lock",
    "RLock",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Condition",
    "Barrier",
    "Queue",
    "SimpleQueue",
    "JoinableQueue",
    "Pool",
    "Tracer",
    "socket",
}

#: Constructors producing stateful random generators.
_RNG_CONSTRUCTORS = {"default_rng", "RandomState", "Random", "make_rng", "Generator"}

#: Method calls that mutate their receiver in place.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "update",
    "setdefault",
    "extend",
    "insert",
    "remove",
    "discard",
    "pop",
    "popleft",
    "popitem",
    "clear",
    "sort",
    "reverse",
    "put",
    "put_nowait",
}


def _call_name(node: ast.expr) -> Optional[str]:
    """Bare constructor name of a call expression's callee."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _locally_bound(fn: ast.AST, name: str) -> bool:
    """Does *fn* rebind *name* as a plain local (shadowing the global)?"""
    declared_global = False
    bound = False
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)) and name in node.names:
            declared_global = True
        if isinstance(node, ast.Name) and node.id == name and isinstance(node.ctx, ast.Store):
            bound = True
        if isinstance(node, ast.arg) and node.arg == name:
            bound = True
    return bound and not declared_global


@register
class ForkSafetyRule(Rule):
    rule_id = "LNT007"
    name = "fork-safety"
    rationale = (
        "module-global mutable state and live handles reachable from "
        "forked farm workers diverge or collide across processes"
    )
    check_tests = False

    def finalize(self, project: Project) -> Iterator[Violation]:
        index = project.index
        if _ENTRY_MODULE not in index.by_module:
            return
        worker_modules = {
            mod for mod in index.reachable_modules([_ENTRY_MODULE]) if mod in index.by_module
        }
        contexts = {str(ctx.path): ctx for ctx in project.files}

        # Pass 1: import-time hazards in every module the fork clones.
        for mod in sorted(worker_modules):
            summary = index.by_module[mod]
            ctx = contexts.get(summary.path)
            if ctx is None or ctx.is_test:
                continue
            yield from self._module_level(ctx, summary)

        # Pass 2: global mutation in functions a worker can execute.
        entries = index.entry_functions(_ENTRY_MODULE)
        for fn in sorted(index.reachable_functions(entries).values(), key=lambda f: f.key):
            summary = index.by_path.get(fn.path)
            ctx = contexts.get(fn.path)
            if summary is None or ctx is None or ctx.is_test:
                continue
            yield from self._function_mutations(ctx, summary, fn)

    # -- import-time hazards -------------------------------------------

    def _module_level(self, ctx: FileContext, summary: ModuleSummary) -> Iterator[Violation]:
        for name, stmt in summary.module_globals.items():
            value = getattr(stmt, "value", None)
            if value is None:
                continue
            called = _call_name(value)
            if called in _HANDLE_CONSTRUCTORS:
                yield self.violation(
                    ctx,
                    stmt,
                    f"module-level `{name} = {called}(...)` is a live handle "
                    f"duplicated into every forked worker (imported via "
                    f"{_ENTRY_MODULE}); construct it per-process instead",
                )
            elif called in _RNG_CONSTRUCTORS:
                yield self.violation(
                    ctx,
                    stmt,
                    f"module-level RNG `{name} = {called}(...)` is cloned by "
                    f"fork: every worker replays the same stream; create the "
                    f"generator after fork (per session/worker) instead",
                )

    # -- runtime mutation of globals -----------------------------------

    def _function_mutations(
        self, ctx: FileContext, summary: ModuleSummary, fn: FunctionInfo
    ) -> Iterator[Violation]:
        node = fn.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        globals_here = set(summary.module_globals) - {"__all__"}
        if not globals_here:
            return
        declared: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                declared.update(sub.names)
        seen: Set[Tuple[int, str]] = set()

        def hit(target_name: str, where: ast.AST, how: str) -> Optional[Violation]:
            key = (getattr(where, "lineno", 0), target_name)
            if key in seen:
                return None
            seen.add(key)
            return self.violation(
                ctx,
                where,
                f"`{fn.qualname}` {how} module global `{target_name}`; after "
                f"fork each worker mutates its own copy and the parent never "
                f"sees it (reachable from {_ENTRY_MODULE})",
            )

        for sub in ast.walk(node):
            # global X; X = ...  (rebinding shared state at runtime)
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared & globals_here:
                        v = hit(target.id, sub, "rebinds")
                        if v is not None:
                            yield v
                    # X[...] = ... / X.attr = ... on an unshadowed global
                    inner = target
                    while isinstance(inner, (ast.Subscript, ast.Attribute)):
                        inner = inner.value
                    if (
                        isinstance(inner, ast.Name)
                        and inner.id in globals_here
                        and isinstance(target, (ast.Subscript, ast.Attribute))
                        and not _locally_bound(node, inner.id)
                    ):
                        v = hit(inner.id, sub, "writes into")
                        if v is not None:
                            yield v
            # X.append(...) and friends on an unshadowed global
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                base = sub.func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in globals_here
                    and sub.func.attr in _MUTATORS
                    and not _locally_bound(node, base.id)
                ):
                    v = hit(base.id, sub, f"calls `.{sub.func.attr}()` on")
                    if v is not None:
                        yield v
