"""LNT006: no blanket exception swallowing outside containment sites.

The degradation contract (docs/resilience.md) deliberately catches
``Exception`` at a small number of *containment sites* -- the receiver
pipeline and the sweep driver -- where every caught error is converted
into an attributable record (:class:`DecodeFailure`, ``PointError``).
Anywhere else, a bare ``except:`` or an ``except Exception: pass``
erases the error *and* the attribution, which is precisely the failure
mode the fault-injection subsystem exists to prevent.

Flagged:

- ``except:`` with no exception type, anywhere;
- ``except Exception`` / ``except BaseException`` whose handler body
  does nothing (only ``pass``/``...``/``continue``) -- catching broadly
  is tolerable only when the handler *records* something.

Sanctioned files (skipped entirely): ``receiver/failures.py`` and
``sim/sweep.py``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.core import FileContext, Rule, Violation, register

_SANCTIONED: Tuple[Tuple[str, ...], ...] = (
    ("receiver", "failures.py"),
    ("sim", "sweep.py"),
)

_BROAD = {"Exception", "BaseException"}


def _is_sanctioned(ctx: FileContext) -> bool:
    parts = ctx.path.parts
    return any(parts[-len(tail):] == tail for tail in _SANCTIONED if len(parts) >= len(tail))


def _swallows(body: list) -> bool:
    """True when the handler body does nothing observable."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


@register
class BareExceptRule(Rule):
    rule_id = "LNT006"
    name = "blanket-except"
    rationale = (
        "swallowed broad exceptions erase both the error and its "
        "attribution; contain failures into records instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if _is_sanctioned(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx, node, "bare `except:` hides every error including KeyboardInterrupt"
                )
                continue
            name = node.type.id if isinstance(node.type, ast.Name) else None
            if name in _BROAD and _swallows(node.body):
                yield self.violation(
                    ctx,
                    node,
                    f"`except {name}: pass` swallows errors without recording "
                    "them; contain into a failure record or narrow the type",
                )
