"""LNT012: cross-module dtype flow out of ``@array_contract`` functions.

LNT004 stops a contracted ``complex64``/``float32`` buffer from
widening *inside* the function that declares the contract.  The leak
it cannot see: the contracted function passes the buffer to a helper
-- often in another module -- and the *helper* widens it.  The memory
and numerics cost is identical, but no single file shows both the
contract and the ``astype``.

Using the project index's call resolution, this rule follows each
narrow contracted parameter through direct calls (bare names,
``from``-imports, module aliases, ``self.`` methods) to the callee's
parameter, and flags the **call site** when the callee

- re-declares that parameter with a *wider* ``@array_contract`` dtype
  (``complex64`` handed to a ``complex128`` contract), or
- widens it in its body: ``q.astype(<wider>)``, or any call receiving
  ``q`` together with ``dtype=<wider>``.

Only unambiguous resolutions (exactly one callee) are followed --
virtual dispatch is skipped rather than guessed.  Widening is judged
against :data:`repro.utils.contracts.NARROW_DTYPES`, same as LNT004.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.core import FileContext, Project, Rule, Violation, register
from repro.lint.engine.symbols import FunctionInfo, call_target, contract_specs
from repro.utils.contracts import NARROW_DTYPES

#: Python builtins that imply a wide numpy dtype.
_BUILTIN_DTYPES = {"float": "float64", "complex": "complex128"}


def _dtype_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return _BUILTIN_DTYPES.get(node.id, node.id)
    return None


def _body_widens(fn: ast.AST, param: str, wider: Set[str]) -> Optional[ast.AST]:
    """First node in *fn* that widens *param* into one of *wider*."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "astype"
            and isinstance(func.value, ast.Name)
            and func.value.id == param
            and node.args
            and _dtype_name(node.args[0]) in wider
        ):
            return node
        dtype_kw = next((kw for kw in node.keywords if kw.arg == "dtype"), None)
        if dtype_kw is not None and _dtype_name(dtype_kw.value) in wider:
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == param:
                    return node
    return None


def _callee_param(callee: FunctionInfo, position: int, keyword: Optional[str]) -> Optional[str]:
    if keyword is not None:
        return keyword if keyword in callee.params else None
    if 0 <= position < len(callee.params):
        return callee.params[position]
    return None


@register
class DtypeFlowRule(Rule):
    rule_id = "LNT012"
    name = "dtype-flow"
    rationale = (
        "a contracted complex64 buffer that widens inside a helper "
        "doubles memory traffic invisibly to the per-file dtype rule"
    )
    check_tests = False

    def finalize(self, project: Project) -> Iterator[Violation]:
        index = project.index
        for ctx in project.files:
            if ctx.is_test:
                continue
            summary = index.by_path.get(str(ctx.path))
            if summary is None:
                continue
            for fn in summary.functions.values():
                specs = contract_specs(fn.node)
                if not specs:
                    continue
                narrow = {
                    param: (dtype, set(NARROW_DTYPES[dtype]))
                    for param, dtype in specs.items()
                    if dtype in NARROW_DTYPES
                }
                if not narrow:
                    continue
                yield from self._check_calls(ctx, index, summary, fn, narrow)

    def _check_calls(
        self,
        ctx: FileContext,
        index,
        summary,
        fn: FunctionInfo,
        narrow: Dict[str, Tuple[str, Set[str]]],
    ) -> Iterator[Violation]:
        node = fn.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            target = call_target(call)
            if target is None:
                continue
            passed: List[Tuple[str, int, Optional[str]]] = []
            for i, arg in enumerate(call.args):
                if isinstance(arg, ast.Name) and arg.id in narrow:
                    passed.append((arg.id, i, None))
            for kw in call.keywords:
                if kw.arg is not None and isinstance(kw.value, ast.Name) and kw.value.id in narrow:
                    passed.append((kw.value.id, -1, kw.arg))
            if not passed:
                continue
            callees = index.resolve_call(summary, target, fn.class_name)
            if len(callees) != 1:
                continue  # ambiguous / virtual / external: don't guess
            callee = callees[0]
            if callee.key == fn.key:
                continue
            for param, position, keyword in passed:
                dtype, wider = narrow[param]
                q = _callee_param(callee, position, keyword)
                if q is None:
                    continue
                callee_specs = contract_specs(callee.node) or {}
                declared = callee_specs.get(q)
                if declared in wider:
                    yield self.violation(
                        ctx,
                        call,
                        f"`{param}` is contracted {dtype} but flows into "
                        f"`{callee.qualname}` (param `{q}` contracted "
                        f"{declared}): widening crosses the call boundary",
                    )
                    continue
                if declared is not None:
                    continue  # callee pins it at least as narrow: fine
                widening = _body_widens(callee.node, q, wider)
                if widening is not None:
                    yield self.violation(
                        ctx,
                        call,
                        f"`{param}` is contracted {dtype} but "
                        f"`{callee.qualname}` widens its `{q}` (line "
                        f"{getattr(widening, 'lineno', '?')} of "
                        f"{callee.path}); keep the helper {dtype} or copy "
                        f"at an explicit boundary",
                    )
        return
