"""Finding baselines: land a new rule before the tree is clean.

A baseline file records the findings that existed when it was written
(``repro lint --write-baseline lint-baseline.json``); subsequent runs
with ``--baseline lint-baseline.json`` report and fail **only on new
findings**.  Keys are ``(path, rule id, message)`` -- deliberately not
line numbers, so unrelated edits above a known finding do not
resurrect it, while any change to the finding's own message (a
different variable, a different state) counts as new.

The file is plain JSON with a version field so the format can grow::

    {"version": 1, "findings": [{"path": ..., "rule": ..., "message": ...}]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Set, Tuple

from repro.lint.core import Violation

__all__ = ["baseline_key", "write_baseline", "load_baseline", "partition"]

_VERSION = 1

Key = Tuple[str, str, str]


def baseline_key(violation: Violation) -> Key:
    return (violation.path, violation.rule_id, violation.message)


def write_baseline(violations: Sequence[Violation], path: Path) -> None:
    """Record *violations* as the accepted baseline at *path*."""
    payload = {
        "version": _VERSION,
        "findings": [
            {"path": v.path, "rule": v.rule_id, "message": v.message}
            for v in sorted(violations)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Set[Key]:
    """Keys accepted by the baseline at *path*.

    Raises ``ValueError`` on a malformed or future-versioned file --
    a truncated baseline silently accepting nothing (or everything)
    would defeat its purpose.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ValueError(f"{path}: unsupported baseline format")
    findings = payload.get("findings")
    if not isinstance(findings, list):
        raise ValueError(f"{path}: malformed baseline (no findings list)")
    keys: Set[Key] = set()
    for entry in findings:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: malformed baseline entry {entry!r}")
        keys.add((str(entry.get("path")), str(entry.get("rule")), str(entry.get("message"))))
    return keys


def partition(
    violations: Iterable[Violation], accepted: Set[Key]
) -> Tuple[List[Violation], List[Violation]]:
    """Split into ``(new, baselined)`` against the accepted key set."""
    new: List[Violation] = []
    baselined: List[Violation] = []
    for v in violations:
        (baselined if baseline_key(v) in accepted else new).append(v)
    return new, baselined
