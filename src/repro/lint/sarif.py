"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is what CI
platforms ingest to annotate findings inline on changed files.  The
document produced here is deliberately minimal -- one run, one tool,
one result per finding with a physical location -- which is the subset
code-scanning UIs actually render.

Paths are emitted repo-relative with forward slashes when a root is
given, since SARIF consumers resolve ``artifactLocation.uri`` against
the repository checkout, not the lint invocation's working directory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.core import Rule, Violation

__all__ = ["to_sarif"]

_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"


def _relative_uri(path: str, root: Optional[Path]) -> str:
    p = Path(path)
    if root is not None:
        try:
            p = p.resolve().relative_to(root.resolve())
        except ValueError:
            pass
    return p.as_posix()


def to_sarif(
    violations: Sequence[Violation],
    rules: Iterable[Rule],
    root: Optional[Path] = None,
) -> Dict:
    """A SARIF 2.1.0 document for *violations*.

    *rules* populates the tool's rule metadata (id, name, rationale)
    so viewers can show the why, not only the where.
    """
    rule_list = sorted(rules, key=lambda r: r.rule_id)
    rule_index = {rule.rule_id: i for i, rule in enumerate(rule_list)}
    results: List[Dict] = []
    for v in violations:
        result: Dict = {
            "ruleId": v.rule_id,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _relative_uri(v.path, root)},
                        "region": {"startLine": v.line, "startColumn": v.col},
                    }
                }
            ],
        }
        if v.rule_id in rule_index:
            result["ruleIndex"] = rule_index[v.rule_id]
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": [
                            {
                                "id": rule.rule_id,
                                "name": rule.name,
                                "shortDescription": {"text": rule.rationale},
                            }
                            for rule in rule_list
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
