"""Rule engine of ``repro lint``: contexts, registry, suppression, runner.

The engine is deliberately small: every file is parsed once into an
AST, each registered :class:`Rule` walks it and yields
:class:`Violation` records, and suppression comments filter the result.
Project-wide rules (LNT005's docs cross-check) additionally implement
:meth:`Rule.finalize`, which runs once after every file was read.

Suppression syntax (documented in ``docs/static-analysis.md``)::

    x = 1.0 == y  # repro-lint: disable=LNT003
    # repro-lint: disable-file=LNT001,LNT006   (anywhere in the file)

``disable=all`` silences every rule for that line/file.  The walker
skips ``__pycache__``, hidden directories, and any directory named
``fixtures`` (lint-rule test fixtures contain violations on purpose
and are linted through :func:`lint_source` directly by their tests).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "FileContext",
    "Project",
    "Rule",
    "REGISTRY",
    "register",
    "lint_source",
    "lint_paths",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+)"
)

_SKIP_DIRS = {"__pycache__", "fixtures"}


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: where, which rule, and why."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class FileContext:
    """One parsed source file plus everything rules need to know about it."""

    path: Path
    source: str
    tree: ast.Module
    is_test: bool
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    file_suppressions: Set[str] = field(default_factory=set)

    @property
    def module_name(self) -> Optional[str]:
        """Dotted module path when the file sits under a ``src`` root."""
        parts = self.path.parts
        if "src" in parts:
            rel = parts[parts.index("src") + 1 :]
            if rel and rel[-1].endswith(".py"):
                mod = list(rel[:-1])
                stem = rel[-1][: -len(".py")]
                if stem != "__init__":
                    mod.append(stem)
                return ".".join(mod)
        return None

    def suppressed(self, rule_id: str, line: int) -> bool:
        for pool in (self.file_suppressions, self.line_suppressions.get(line, set())):
            if "all" in pool or rule_id in pool:
                return True
        return False

    @classmethod
    def parse(cls, path: Path, source: str, is_test: Optional[bool] = None) -> "FileContext":
        tree = ast.parse(source, filename=str(path))
        if is_test is None:
            is_test = _looks_like_test(path)
        ctx = cls(path=path, source=source, tree=tree, is_test=is_test)
        for lineno, text in enumerate(source.splitlines(), start=1):
            m = _SUPPRESS_RE.search(text)
            if m is None:
                continue
            ids = {part.strip() for part in m.group("ids").split(",") if part.strip()}
            ids = {i if i == "all" else i.upper() for i in ids}
            if m.group("scope") == "disable-file":
                ctx.file_suppressions |= ids
            else:
                ctx.line_suppressions.setdefault(lineno, set()).update(ids)
        return ctx


def _looks_like_test(path: Path) -> bool:
    if any(part in ("tests", "test") for part in path.parts):
        return True
    name = path.name
    return name.startswith("test_") or name in ("conftest.py",)


@dataclass
class Project:
    """Every file of one lint run, plus the repository root (if found)."""

    files: List[FileContext] = field(default_factory=list)
    root: Optional[Path] = None
    _index: Optional["ProjectIndex"] = field(default=None, repr=False, compare=False)

    def module(self, dotted: str) -> Optional[FileContext]:
        for ctx in self.files:
            if ctx.module_name == dotted:
                return ctx
        return None

    @property
    def index(self) -> "ProjectIndex":
        """Cross-module symbol/import/call-graph index, built lazily.

        Per-file summaries are cached on content hash
        (:func:`repro.lint.engine.symbols.summarize`), so repeated
        project passes only re-derive summaries for changed files.
        """
        if self._index is None:
            from repro.lint.engine.symbols import ProjectIndex, summarize

            summaries = [
                summarize(ctx.path, ctx.source, ctx.module_name, ctx.tree)
                for ctx in self.files
            ]
            self._index = ProjectIndex(summaries)
        return self._index


class Rule:
    """Base class; subclasses register themselves via :func:`register`.

    ``check_tests`` controls whether the per-file pass runs on test
    files -- determinism (LNT001) and float-equality (LNT003) rules
    exempt tests, where unseeded fixtures and exact golden comparisons
    are the point rather than a bug.
    """

    rule_id: str = ""
    name: str = ""
    rationale: str = ""
    check_tests: bool = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())

    def finalize(self, project: Project) -> Iterator[Violation]:
        return iter(())

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


#: rule id -> rule instance, populated by :func:`register` at import of
#: :mod:`repro.lint.rules`.
REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one rule instance to :data:`REGISTRY`."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if rule.rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    REGISTRY[rule.rule_id] = rule
    return cls


def _ensure_rules_loaded() -> None:
    from repro.lint import rules as _rules  # noqa: F401  (import registers)


def _selected(select: Optional[Sequence[str]]) -> List[Rule]:
    _ensure_rules_loaded()
    if select is None:
        return [REGISTRY[k] for k in sorted(REGISTRY)]
    missing = [s for s in select if s not in REGISTRY]
    if missing:
        raise ValueError(f"unknown rule id(s): {', '.join(missing)}")
    return [REGISTRY[k] for k in sorted(select)]


def lint_source(
    source: str,
    path: str = "<string>",
    is_test: bool = False,
    select: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint one in-memory source blob (the fixture-test entry point).

    Runs the per-file pass only; project-wide finalizers need
    :func:`lint_paths`.  Suppression comments are honoured.
    """
    ctx = FileContext.parse(Path(path), source, is_test=is_test)
    out: List[Violation] = []
    for rule in _selected(select):
        if ctx.is_test and not rule.check_tests:
            continue
        for v in rule.check(ctx):
            if not ctx.suppressed(v.rule_id, v.line):
                out.append(v)
    return sorted(out)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """All lintable ``.py`` files under *paths* (files pass through)."""
    seen: Set[Path] = set()
    for p in paths:
        if p.is_file() and p.suffix == ".py":
            if p not in seen:
                seen.add(p)
                yield p
            continue
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                rel = sub.relative_to(p)
                if any(part in _SKIP_DIRS or part.startswith(".") for part in rel.parts):
                    continue
                if sub not in seen:
                    seen.add(sub)
                    yield sub


def find_project_root(start: Path) -> Optional[Path]:
    """Nearest ancestor containing ``pyproject.toml`` (the repo root)."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in (cur, *cur.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return None


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
) -> Tuple[List[Violation], List[str]]:
    """Lint files/directories; returns ``(violations, errors)``.

    *errors* are files that could not be read or parsed -- reported
    separately so a syntax error does not masquerade as a clean run.
    """
    rules = _selected(select)
    project = Project()
    errors: List[str] = []
    resolved = [Path(p) for p in paths]
    for p in resolved:
        if not p.exists():
            errors.append(f"{p}: no such file or directory")
    for path in iter_python_files([p for p in resolved if p.exists()]):
        try:
            source = path.read_text(encoding="utf-8")
            project.files.append(FileContext.parse(path, source))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            errors.append(f"{path}: {exc}")
    for p in resolved:
        if p.exists():
            project.root = find_project_root(p)
            if project.root is not None:
                break

    by_path: Dict[str, FileContext] = {str(ctx.path): ctx for ctx in project.files}
    out: List[Violation] = []
    for ctx in project.files:
        for rule in rules:
            if ctx.is_test and not rule.check_tests:
                continue
            try:
                out.extend(
                    v for v in rule.check(ctx) if not ctx.suppressed(v.rule_id, v.line)
                )
            except Exception as exc:  # internal rule bug: reported, never swallowed
                errors.append(f"{ctx.path}: internal error in {rule.rule_id}: {exc!r}")
    for rule in rules:
        try:
            for v in rule.finalize(project):
                ctx_for = by_path.get(v.path)
                if ctx_for is not None and ctx_for.suppressed(v.rule_id, v.line):
                    continue
                out.append(v)
        except Exception as exc:  # internal rule bug: reported, never swallowed
            errors.append(f"internal error in {rule.rule_id}.finalize: {exc!r}")
    return sorted(out), errors


def iter_rules() -> Iterable[Rule]:
    """All registered rules in id order (for ``--list-rules`` and docs)."""
    _ensure_rules_loaded()
    return [REGISTRY[k] for k in sorted(REGISTRY)]
