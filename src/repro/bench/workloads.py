"""Benchmark workload builders: realistic, seeded, reusable buffers.

Each builder returns closures over pre-synthesized data so the timed
region contains **only** the operation under test -- template banks,
collision buffers and detectors are constructed once outside the
timing loop.  Everything is seeded: a workload is a pure function of
``(params, seed)``, the same contract the simulators keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.codes import twonc_codes
from repro.receiver.receiver import CbmaReceiver
from repro.receiver.user_detection import UserDetector
from repro.sim.collision import CollisionScenario, simulate_round
from repro.tag.framing import FrameFormat
from repro.tag.tag import Tag
from repro.utils.correlation import sliding_correlation
from repro.utils.correlation_batch import sliding_correlation_batch

__all__ = ["Workload", "build_workloads"]


@dataclass(frozen=True)
class Workload:
    """One timed operation: a closure plus its descriptive params."""

    op: str
    """Slug naming the operation (also keys ``bench.<op>.*`` metrics)."""
    params: Dict[str, object]
    fn: Callable[[], object]
    reps: int
    group: str = "micro"
    """Report grouping: ``micro`` | ``detect`` | ``e2e``."""


def _bipolar_templates(rng: np.random.Generator, n_templates: int, m: int) -> np.ndarray:
    return np.sign(rng.normal(size=(n_templates, m))) + 0.0


def _collision_buffer(
    n_tags: int, samples_per_chip: int, payload_bytes: int, seed: int
) -> Tuple[np.ndarray, Dict[int, np.ndarray], FrameFormat]:
    """A synthesized *n_tags*-collision round (buffer, codes, format)."""
    rng = np.random.default_rng(seed)
    fmt = FrameFormat()
    codes = twonc_codes(n_tags, 64)
    code_map = {i: codes[i] for i in range(n_tags)}
    tags = [Tag(i, codes[i], fmt=fmt) for i in range(n_tags)]
    scenario = CollisionScenario(
        tags=tags,
        amplitudes=[1.0 + 0.0j] * n_tags,
        samples_per_chip=samples_per_chip,
    )
    payloads = {
        i: rng.integers(0, 256, size=payload_bytes).astype(np.uint8).tobytes()
        for i in range(n_tags)
    }
    iq, _truth = simulate_round(scenario, payloads, rng=rng)
    return np.asarray(iq), code_map, fmt


def build_workloads(quick: bool = False, seed: int = 7) -> List[Workload]:
    """The standard benchmark suite.

    Three tiers, mirroring how the correlation kernel is consumed:

    - ``micro``: raw sliding correlation, direct loop vs. batched FFT,
      across window sizes (10 stacked templates);
    - ``detect``: :meth:`UserDetector.detect` over a real synthesized
      10-tag / 4-samples-per-chip collision, per backend -- the
      acceptance benchmark for the batched kernel;
    - ``e2e``: the full :meth:`CbmaReceiver.process` pipeline on the
      same class of buffer, at two payload sizes (two buffer lengths).

    *quick* shrinks window sizes and repetition counts for CI smoke
    runs; op names stay identical so a quick run compares against a
    quick baseline.
    """
    rng = np.random.default_rng(seed)
    workloads: List[Workload] = []

    # --- micro: sliding correlation, 10 templates --------------------------
    window_sizes = (4096, 16384) if quick else (8192, 32768, 131072)
    # Even quick mode takes 5 reps: the baseline gate compares p50s, and
    # a 3-rep median moves with a single noisy repetition.
    micro_reps = 5 if quick else 10
    m = 2048
    n_templates = 10
    templates = _bipolar_templates(rng, n_templates, m)
    for n in window_sizes:
        signal = rng.normal(size=n) + 1j * rng.normal(size=n)
        params = {"n": n, "m": m, "n_templates": n_templates}

        def run_direct(signal: np.ndarray = signal) -> object:
            return sliding_correlation_batch(signal, templates, backend="direct")

        def run_fft(signal: np.ndarray = signal) -> object:
            return sliding_correlation_batch(signal, templates, backend="fft")

        def run_loop(signal: np.ndarray = signal) -> object:
            return [sliding_correlation(signal, t) for t in templates]

        workloads.append(
            Workload(f"corr_direct_w{n}", dict(params, backend="direct"), run_direct, micro_reps)
        )
        workloads.append(
            Workload(f"corr_fft_w{n}", dict(params, backend="fft"), run_fft, micro_reps)
        )
        workloads.append(
            Workload(f"corr_legacy_loop_w{n}", dict(params, backend="legacy"), run_loop, micro_reps)
        )

    # --- detect: the acceptance benchmark (10 tags, 4 samples/chip) --------
    detect_reps = 5 if quick else 8
    payload_bytes = 2 if quick else 8
    iq, code_map, fmt = _collision_buffer(
        n_tags=10, samples_per_chip=4, payload_bytes=payload_bytes, seed=seed
    )
    detector = UserDetector(code_map, fmt, samples_per_chip=4)
    detect_params = {
        "n_tags": 10,
        "samples_per_chip": 4,
        "n_samples": int(iq.size),
        "payload_bytes": payload_bytes,
    }

    def detect_direct() -> object:
        return [
            corr for _uid, corr in detector.correlation_rows(iq, backend="direct")
        ]

    def detect_fft() -> object:
        return [corr for _uid, corr in detector.correlation_rows(iq, backend="fft")]

    def detect_full() -> object:
        return detector.detect(iq)

    workloads.append(
        Workload("detect_direct", dict(detect_params, backend="direct"), detect_direct, detect_reps, "detect")
    )
    workloads.append(
        Workload("detect_fft", dict(detect_params, backend="fft"), detect_fft, detect_reps, "detect")
    )
    workloads.append(
        Workload("detect_pipeline", dict(detect_params, backend="fft"), detect_full, detect_reps, "detect")
    )

    # --- e2e: full receiver pipeline over 10-tag collisions ----------------
    e2e_reps = 2 if quick else 5
    for pb in ((2,) if quick else (2, 16)):
        iq_e, codes_e, fmt_e = _collision_buffer(
            n_tags=10, samples_per_chip=4, payload_bytes=pb, seed=seed + pb
        )
        receiver = CbmaReceiver(codes_e, fmt_e, samples_per_chip=4)

        def run_e2e(iq_e: np.ndarray = iq_e, receiver: CbmaReceiver = receiver) -> object:
            return receiver.process(iq_e, skip_energy_gate=True)

        workloads.append(
            Workload(
                f"e2e_decode_10tag_p{pb}",
                {"n_tags": 10, "samples_per_chip": 4, "payload_bytes": pb, "n_samples": int(iq_e.size)},
                run_e2e,
                e2e_reps,
                "e2e",
            )
        )
    return workloads
