"""Benchmark workload builders: realistic, seeded, reusable buffers.

Each builder returns closures over pre-synthesized data so the timed
region contains **only** the operation under test -- template banks,
collision buffers and detectors are constructed once outside the
timing loop.  Everything is seeded: a workload is a pure function of
``(params, seed)``, the same contract the simulators keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.codes import twonc_codes
from repro.receiver.receiver import CbmaReceiver
from repro.receiver.user_detection import UserDetector
from repro.sim.collision import CollisionScenario, simulate_round
from repro.tag.framing import FrameFormat
from repro.tag.tag import Tag
from repro.utils.correlation import sliding_correlation
from repro.utils.correlation_batch import sliding_correlation_batch

__all__ = ["TIERS", "Workload", "build_workloads"]

#: Selectable workload tiers (``all`` = every tier).
TIERS = ("micro", "detect", "e2e", "farm", "gateway", "macro", "all")


@dataclass(frozen=True)
class Workload:
    """One timed operation: a closure plus its descriptive params."""

    op: str
    """Slug naming the operation (also keys ``bench.<op>.*`` metrics)."""
    params: Dict[str, object]
    fn: Callable[[], object]
    reps: int
    group: str = "micro"
    """Report grouping: ``micro`` | ``detect`` | ``e2e`` | ``farm`` |
    ``gateway`` | ``macro``."""


def _bipolar_templates(rng: np.random.Generator, n_templates: int, m: int) -> np.ndarray:
    return np.sign(rng.normal(size=(n_templates, m))) + 0.0


def _collision_buffer(
    n_tags: int, samples_per_chip: int, payload_bytes: int, seed: int
) -> Tuple[np.ndarray, Dict[int, np.ndarray], FrameFormat]:
    """A synthesized *n_tags*-collision round (buffer, codes, format)."""
    rng = np.random.default_rng(seed)
    fmt = FrameFormat()
    codes = twonc_codes(n_tags, 64)
    code_map = {i: codes[i] for i in range(n_tags)}
    tags = [Tag(i, codes[i], fmt=fmt) for i in range(n_tags)]
    scenario = CollisionScenario(
        tags=tags,
        amplitudes=[1.0 + 0.0j] * n_tags,
        samples_per_chip=samples_per_chip,
    )
    payloads = {
        i: rng.integers(0, 256, size=payload_bytes).astype(np.uint8).tobytes()
        for i in range(n_tags)
    }
    iq, _truth = simulate_round(scenario, payloads, rng=rng)
    return np.asarray(iq), code_map, fmt


def _farm_workloads(quick: bool, seed: int) -> List[Workload]:
    """The parallel-decode tier: one 4-session farm per worker count.

    The timed region is the farm's whole life -- construct, feed every
    chunk with the sequential cadence, pump, finish, close -- because
    that is what a deployment pays per capture: worker startup and
    shared-memory setup are part of the cost the ``process`` backend
    must amortise.  The derived sessions-per-core / real-time-factor
    metrics come from the ``stream_seconds`` param recorded here.
    """
    # Imported lazily: the micro tiers must not pay for the farm stack.
    from repro.farm import DecodeFarm, FarmConfig
    from repro.sim.experiments.soak import (
        SoakConfig,
        build_soak_stack,
        build_soak_stream,
    )
    from repro.sim.network import CbmaConfig

    n_windows = 10 if quick else 24
    n_sessions = 4
    soak = SoakConfig(n_windows=n_windows, n_tags=4, seed=seed, traffic_rate=0.3)
    tags, stream = build_soak_stack(soak)
    buffer, _offered = build_soak_stream(soak, None, stream, tags)
    chunk = 3 * stream.hop_samples
    chunks = [buffer[lo : lo + chunk] for lo in range(0, buffer.size, chunk)]
    net = CbmaConfig(
        n_tags=4,
        seed=seed,
        payload_bytes=4,
        code_length=32,
        samples_per_chip=1,
        user_threshold=0.25,
    )
    # Wall-clock seconds of airtime each session decodes, at the
    # config's sample rate -- the real-time yardstick.
    stream_seconds = buffer.size / (net.samples_per_chip * net.chip_rate_hz)
    reps = 2 if quick else 4
    workloads: List[Workload] = []
    for n_workers in (1, 2, 4):
        params = {
            "n_sessions": n_sessions,
            "n_workers": n_workers,
            "n_tags": 4,
            "n_windows": n_windows,
            "n_samples": int(buffer.size),
            "stream_seconds": stream_seconds,
            "backend": "process",
        }

        def run(n_workers: int = n_workers) -> object:
            farm = DecodeFarm.from_config(
                net,
                n_sessions=n_sessions,
                farm=FarmConfig(n_workers=n_workers, ring_slot_samples=chunk),
                backend="process",
            )
            try:
                for piece in chunks:
                    for sid in farm.session_ids:
                        farm.feed(sid, piece)
                    farm.pump()
                return farm.finish()
            finally:
                farm.close()

        workloads.append(
            Workload(f"farm_decode_w{n_workers}", params, run, reps, "farm")
        )
    return workloads


def _gateway_workloads(quick: bool, seed: int) -> List[Workload]:
    """The service tier: full gateway soaks plus the admission hot path.

    The soak workloads time a whole gateway life under a fixed
    spike/brownout plan -- open streams, admit, dispatch, drain, close
    -- on the inline backend so the measurement isolates the service
    layer (admission, ladder, shedding, retention) from process-pool
    startup, which the farm tier already prices.  The ``_migrate``
    variant adds a mid-soak worker drain so ``derived`` can report the
    relative cost of a live checkpoint/migrate/resume.  The admission
    workload times the token-bucket + ladder decision loop alone --
    the per-chunk overhead every admitted byte pays.
    """
    # Imported lazily: the other tiers must not pay for the gateway stack.
    from repro.gateway import DegradationLadder, TokenBucket
    from repro.gateway.soak import (
        CapacityBrownout,
        GatewayFaultPlan,
        GatewaySoakConfig,
        TrafficSpike,
        run_gateway_soak,
    )
    from repro.sim.experiments.soak import SoakConfig, build_soak_stack
    from repro.sim.network import CbmaConfig

    n_streams = 8 if quick else 24
    n_rounds = 6 if quick else 12
    reps = 2 if quick else 4
    cap = SoakConfig(
        n_windows=8 if quick else 16, n_tags=2, seed=seed, traffic_rate=0.3
    )
    plan = GatewayFaultPlan(
        [
            TrafficSpike(
                factor=3.0, start_round=n_rounds // 3, end_round=2 * n_rounds // 3
            ),
            CapacityBrownout(
                factor=0.25,
                start_round=n_rounds // 3 + 1,
                end_round=2 * n_rounds // 3 + 1,
            ),
        ],
        seed=seed,
    )
    net = CbmaConfig(
        n_tags=cap.n_tags,
        seed=cap.seed,
        payload_bytes=cap.payload_bytes,
        code_length=cap.code_length,
        samples_per_chip=cap.samples_per_chip,
        user_threshold=cap.user_threshold,
    )
    _tags, stream = build_soak_stack(cap)
    chunk = cap.chunk_hops * stream.hop_samples
    chunk_seconds = chunk / (net.samples_per_chip * net.chip_rate_hz)
    workloads: List[Workload] = []
    for op, migrate_round in (
        ("gateway_soak", None),
        ("gateway_soak_migrate", n_rounds // 2),
    ):
        cfg = GatewaySoakConfig(
            n_streams=n_streams,
            n_rounds=n_rounds,
            seed=seed,
            migrate_round=migrate_round,
            backend="inline",
            capture=cap,
        )
        # One probe run pins the deterministic decoded-airtime figure
        # (admission decides how many chunks are actually fed).
        probe = run_gateway_soak(cfg, plan)
        decoded_seconds = (
            sum(r.fed for r in probe.reports.values()) * chunk_seconds
        )
        params = {
            "n_streams": n_streams,
            "n_rounds": n_rounds,
            "n_faults": len(plan.faults),
            "migrate_round": migrate_round,
            "backend": "inline",
            "decoded_seconds": decoded_seconds,
        }

        def run(cfg: "GatewaySoakConfig" = cfg) -> object:
            return run_gateway_soak(cfg, plan)

        workloads.append(Workload(op, params, run, reps, "gateway"))

    n_decisions = 50_000 if quick else 200_000
    admission_reps = 5 if quick else 8

    def run_admission() -> object:
        now = [0.0]
        bucket = TokenBucket(rate=1000.0, burst=64.0, clock=lambda: now[0])
        ladder = DegradationLadder(
            queue_high=64, queue_low=16, rtf_high=1.0, rtf_low=0.5
        )
        admitted = 0
        for i in range(n_decisions):
            now[0] += 1e-3
            if bucket.try_acquire():
                admitted += 1
            ladder.observe(i % 96, 0.0)
        return admitted

    workloads.append(
        Workload(
            "gateway_admission",
            {"n_decisions": n_decisions},
            run_admission,
            admission_reps,
            "gateway",
        )
    )
    return workloads


def _macro_workloads(quick: bool, seed: int) -> List[Workload]:
    """The fleet-scale tier: macro engine throughput and surface lookups.

    The FER surface comes from a fresh tiny calibration (seconds, and a
    pure function of the seed) rather than the committed artifact, so
    the workload does not depend on the benchmark's working directory.
    Each engine op records its deterministic ``events`` count so the
    runner can derive ``<op>_events_per_sec`` -- the macro tier's
    capacity figure, the analogue of the farm's real-time factor.
    """
    # Imported lazily: the sample-domain tiers must not pay for it.
    from repro.macro import CalibrationSpec, MacroConfig, MacroSimulator, calibrate
    from repro.sim.traffic import PoissonArrivals

    surface = calibrate(CalibrationSpec.tiny())
    n_tags = 2_000 if quick else 10_000
    n_slots = 60 if quick else 200
    slot_s = float(surface.provenance["frame_duration_s"])
    rate_hz = 0.05 / slot_s  # 0.05 frames per tag per slot
    reps = 3 if quick else 6
    workloads: List[Workload] = []
    for slotted in (True, False):
        mode = "slotted" if slotted else "unslotted"
        config = MacroConfig(
            n_tags=n_tags,
            traffic=PoissonArrivals(rate_hz=rate_hz),
            slotted=slotted,
            seed=seed,
        )

        def run(config: "MacroConfig" = config) -> object:
            sim = MacroSimulator(config, surface)
            return sim.run(n_slots)

        # One probe run pins the deterministic event count into params.
        events = int(MacroSimulator(config, surface).run(n_slots).events)
        params = {
            "n_tags": n_tags,
            "n_slots": n_slots,
            "rate_per_slot": 0.05,
            "slotted": slotted,
            "backoff": "beb",
            "surface": "tiny",
            "events": events,
        }
        workloads.append(Workload(f"macro_engine_{mode}", params, run, reps, "macro"))

    lookup_n = 200_000 if quick else 1_000_000
    rng = np.random.default_rng(seed)
    snr = rng.uniform(surface.snr_db_axis[0] - 2, surface.snr_db_axis[-1] + 2, lookup_n)
    k = rng.uniform(1.0, 12.0, lookup_n)

    def run_lookup() -> object:
        return surface.fer_at(snr, k)

    workloads.append(
        Workload(
            "macro_surface_lookup",
            {"n_points": lookup_n, "surface": "tiny"},
            run_lookup,
            reps,
            "macro",
        )
    )
    return workloads


def build_workloads(
    quick: bool = False, seed: int = 7, tier: str = "all"
) -> List[Workload]:
    """The standard benchmark suite.

    Four tiers, mirroring how the decode machinery is consumed:

    - ``micro``: raw sliding correlation, direct loop vs. batched FFT,
      across window sizes (10 stacked templates);
    - ``detect``: :meth:`UserDetector.detect` over a real synthesized
      10-tag / 4-samples-per-chip collision, per backend -- the
      acceptance benchmark for the batched kernel;
    - ``e2e``: the full :meth:`CbmaReceiver.process` pipeline on the
      same class of buffer, at two payload sizes (two buffer lengths);
    - ``farm``: :class:`~repro.farm.DecodeFarm` over a multi-session
      soak capture at 1/2/4 workers (sessions-per-core and real-time
      factor land in ``derived``);
    - ``gateway``: full :class:`~repro.gateway.Gateway` soaks under a
      spike/brownout plan, with and without a mid-soak live migration,
      plus the raw admission decision loop (service real-time factor,
      migration overhead and admissions-per-second land in
      ``derived``);
    - ``macro``: the fleet-scale :class:`~repro.macro.MacroSimulator`
      at 10^4 tags, slotted and unslotted, plus batched FER-surface
      lookups (events-per-second lands in ``derived``).

    *tier* selects one tier (or ``"all"``); *quick* shrinks window
    sizes and repetition counts for CI smoke runs; op names stay
    identical so a quick run compares against a quick baseline.
    """
    if tier not in TIERS:
        raise ValueError(f"unknown bench tier {tier!r} (allowed: {TIERS})")
    rng = np.random.default_rng(seed)
    workloads: List[Workload] = []
    if tier == "farm":
        return _farm_workloads(quick, seed)
    if tier == "gateway":
        return _gateway_workloads(quick, seed)
    if tier == "macro":
        return _macro_workloads(quick, seed)

    # --- micro: sliding correlation, 10 templates --------------------------
    window_sizes = (4096, 16384) if quick else (8192, 32768, 131072)
    # Even quick mode takes 5 reps: the baseline gate compares p50s, and
    # a 3-rep median moves with a single noisy repetition.
    micro_reps = 5 if quick else 10
    m = 2048
    n_templates = 10
    templates = _bipolar_templates(rng, n_templates, m)
    for n in window_sizes:
        signal = rng.normal(size=n) + 1j * rng.normal(size=n)
        params = {"n": n, "m": m, "n_templates": n_templates}

        def run_direct(signal: np.ndarray = signal) -> object:
            return sliding_correlation_batch(signal, templates, backend="direct")

        def run_fft(signal: np.ndarray = signal) -> object:
            return sliding_correlation_batch(signal, templates, backend="fft")

        def run_loop(signal: np.ndarray = signal) -> object:
            return [sliding_correlation(signal, t) for t in templates]

        workloads.append(
            Workload(f"corr_direct_w{n}", dict(params, backend="direct"), run_direct, micro_reps)
        )
        workloads.append(
            Workload(f"corr_fft_w{n}", dict(params, backend="fft"), run_fft, micro_reps)
        )
        workloads.append(
            Workload(f"corr_legacy_loop_w{n}", dict(params, backend="legacy"), run_loop, micro_reps)
        )

    # --- detect: the acceptance benchmark (10 tags, 4 samples/chip) --------
    detect_reps = 5 if quick else 8
    payload_bytes = 2 if quick else 8
    iq, code_map, fmt = _collision_buffer(
        n_tags=10, samples_per_chip=4, payload_bytes=payload_bytes, seed=seed
    )
    detector = UserDetector(code_map, fmt, samples_per_chip=4)
    detect_params = {
        "n_tags": 10,
        "samples_per_chip": 4,
        "n_samples": int(iq.size),
        "payload_bytes": payload_bytes,
    }

    def detect_direct() -> object:
        return [
            corr for _uid, corr in detector.correlation_rows(iq, backend="direct")
        ]

    def detect_fft() -> object:
        return [corr for _uid, corr in detector.correlation_rows(iq, backend="fft")]

    def detect_full() -> object:
        return detector.detect(iq)

    workloads.append(
        Workload("detect_direct", dict(detect_params, backend="direct"), detect_direct, detect_reps, "detect")
    )
    workloads.append(
        Workload("detect_fft", dict(detect_params, backend="fft"), detect_fft, detect_reps, "detect")
    )
    workloads.append(
        Workload("detect_pipeline", dict(detect_params, backend="fft"), detect_full, detect_reps, "detect")
    )

    # --- e2e: full receiver pipeline over 10-tag collisions ----------------
    e2e_reps = 2 if quick else 5
    for pb in ((2,) if quick else (2, 16)):
        iq_e, codes_e, fmt_e = _collision_buffer(
            n_tags=10, samples_per_chip=4, payload_bytes=pb, seed=seed + pb
        )
        receiver = CbmaReceiver(codes_e, fmt_e, samples_per_chip=4)

        def run_e2e(iq_e: np.ndarray = iq_e, receiver: CbmaReceiver = receiver) -> object:
            return receiver.process(iq_e, skip_energy_gate=True)

        workloads.append(
            Workload(
                f"e2e_decode_10tag_p{pb}",
                {"n_tags": 10, "samples_per_chip": 4, "payload_bytes": pb, "n_samples": int(iq_e.size)},
                run_e2e,
                e2e_reps,
                "e2e",
            )
        )
    if tier == "all":
        workloads.extend(_farm_workloads(quick, seed))
        workloads.extend(_gateway_workloads(quick, seed))
        workloads.extend(_macro_workloads(quick, seed))
    else:
        workloads = [w for w in workloads if w.group == tier]
    return workloads
