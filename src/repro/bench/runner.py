"""Benchmark runner: time workloads, summarise, persist, compare.

The runner is deliberately thin: workloads come from
:mod:`repro.bench.workloads`, per-rep latencies are recorded through a
:class:`repro.obs.Tracer` under the ``bench.<op>.op_s`` gauge family
(so the same observability machinery that profiles simulations also
carries the benchmark samples), and the summary is an explicit,
versioned JSON document -- the ``BENCH_XXXX.json`` trajectory file CI
uploads and diffs against the committed baseline.

Schema (``repro.bench/1``)::

    {
      "schema":   "repro.bench/1",
      "bench_id": "BENCH_0008",
      "quick":    true,
      "seed":     7,
      "env":      {"python": "...", "numpy": "...", "platform": "..."},
      "ops": [
        {"op": "detect_fft", "group": "detect", "params": {...},
         "reps": 8, "p50_s": ..., "p95_s": ..., "mean_s": ...,
         "min_s": ..., "max_s": ...},
        ...
      ],
      "derived": {"detect_speedup_fft_over_direct": 7.4, ...}
    }

``derived`` carries cross-op ratios (machine-independent, unlike raw
latencies): the headline is ``detect_speedup_fft_over_direct``, the
batched kernel's advantage on the 10-tag / 4-samples-per-chip
detection benchmark.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.bench.workloads import Workload, build_workloads
from repro.obs.profile import GaugeStats
from repro.obs.tracer import Tracer

__all__ = [
    "BENCH_ID",
    "SCHEMA",
    "OpResult",
    "BenchReport",
    "Regression",
    "run_bench",
    "compare_to_baseline",
]

SCHEMA = "repro.bench/1"
#: Identifier of the current trajectory file (bumped per tracked era).
BENCH_ID = "BENCH_0008"


@dataclass(frozen=True)
class OpResult:
    """Latency summary of one benchmarked operation."""

    op: str
    group: str
    params: Dict[str, Any]
    reps: int
    p50_s: float
    p95_s: float
    mean_s: float
    min_s: float
    max_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "group": self.group,
            "params": dict(self.params),
            "reps": self.reps,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OpResult":
        return cls(
            op=str(data["op"]),
            group=str(data.get("group", "micro")),
            params=dict(data.get("params", {})),
            reps=int(data["reps"]),
            p50_s=float(data["p50_s"]),
            p95_s=float(data["p95_s"]),
            mean_s=float(data["mean_s"]),
            min_s=float(data["min_s"]),
            max_s=float(data["max_s"]),
        )


@dataclass
class BenchReport:
    """One complete benchmark run (what ``BENCH_XXXX.json`` holds)."""

    ops: List[OpResult] = field(default_factory=list)
    derived: Dict[str, float] = field(default_factory=dict)
    quick: bool = False
    seed: int = 7
    bench_id: str = BENCH_ID
    env: Dict[str, str] = field(default_factory=dict)

    def op(self, name: str) -> Optional[OpResult]:
        for result in self.ops:
            if result.op == name:
                return result
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "bench_id": self.bench_id,
            "quick": self.quick,
            "seed": self.seed,
            "env": dict(self.env),
            "ops": [op.to_dict() for op in self.ops],
            "derived": dict(self.derived),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchReport":
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ValueError(f"unsupported bench schema {schema!r} (expected {SCHEMA!r})")
        return cls(
            ops=[OpResult.from_dict(op) for op in data.get("ops", [])],
            derived={k: float(v) for k, v in data.get("derived", {}).items()},
            quick=bool(data.get("quick", False)),
            seed=int(data.get("seed", 0)),
            bench_id=str(data.get("bench_id", BENCH_ID)),
            env={k: str(v) for k, v in data.get("env", {}).items()},
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BenchReport":
        return cls.from_dict(json.loads(Path(path).read_text()))


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _time_workload(tracer: Tracer, workload: Workload) -> OpResult:
    """Run one workload: warmup, then *reps* timed repetitions.

    Per-rep latencies land on the tracer as ``bench.<op>.op_s`` gauge
    samples (and a ``bench.<op>.reps`` counter), each rep inside a
    ``bench`` span -- the summary below is computed from those same
    gauge samples via :class:`repro.obs.profile.GaugeStats`.
    """
    op = workload.op
    workload.fn()  # warmup: page in buffers, build FFT twiddle caches
    for _ in range(workload.reps):
        with tracer.span("bench", op=op):
            t0 = time.perf_counter()
            workload.fn()
            dt = time.perf_counter() - t0
        tracer.gauge(f"bench.{op}.op_s", dt)
    tracer.count(f"bench.{op}.reps", workload.reps)
    stats = GaugeStats.from_values(op, tracer.gauges[f"bench.{op}.op_s"])
    return OpResult(
        op=op,
        group=workload.group,
        params=dict(workload.params),
        reps=workload.reps,
        p50_s=stats.p50,
        p95_s=stats.p95,
        mean_s=stats.mean,
        min_s=stats.min,
        max_s=stats.max,
    )


def _derive(ops: List[OpResult]) -> Dict[str, float]:
    """Cross-op ratios: machine-independent speedups."""
    by_name = {op.op: op for op in ops}
    derived: Dict[str, float] = {}
    direct = by_name.get("detect_direct")
    fft = by_name.get("detect_fft")
    if direct is not None and fft is not None and fft.p50_s > 0:
        derived["detect_speedup_fft_over_direct"] = direct.p50_s / fft.p50_s
    for op in ops:
        if op.op.startswith("corr_direct_w"):
            suffix = op.op[len("corr_direct_w"):]
            partner = by_name.get(f"corr_fft_w{suffix}")
            if partner is not None and partner.p50_s > 0:
                derived[f"corr_speedup_w{suffix}"] = op.p50_s / partner.p50_s
    # Farm tier: scaling across worker counts plus the two capacity
    # figures -- real-time factor (aggregate decoded airtime seconds
    # per wall second) and sessions-per-core (real-time factor per
    # worker: how many live streams one core can carry).
    one_worker = by_name.get("farm_decode_w1")
    for op in ops:
        if op.group != "farm" or op.p50_s <= 0:
            continue
        n_workers = int(op.params.get("n_workers", 1))
        if one_worker is not None and n_workers > 1:
            derived[f"farm_speedup_{n_workers}w_over_1w"] = (
                one_worker.p50_s / op.p50_s
            )
        stream_seconds = float(op.params.get("stream_seconds", 0.0))
        n_sessions = int(op.params.get("n_sessions", 0))
        if stream_seconds > 0 and n_sessions > 0:
            realtime = n_sessions * stream_seconds / op.p50_s
            derived[f"farm_realtime_factor_w{n_workers}"] = realtime
            derived[f"farm_sessions_per_core_w{n_workers}"] = realtime / n_workers
    # Gateway tier: the service-layer capacity figures -- decoded
    # airtime per wall second through the whole admission/dispatch
    # cycle, raw admission decisions per second, and the relative
    # cost of a mid-soak live migration.
    for op in ops:
        if op.group != "gateway" or op.p50_s <= 0:
            continue
        decoded_seconds = float(op.params.get("decoded_seconds", 0.0))
        if decoded_seconds > 0:
            derived[f"{op.op}_realtime_factor"] = decoded_seconds / op.p50_s
        n_decisions = float(op.params.get("n_decisions", 0.0))
        if n_decisions > 0:
            derived["gateway_admissions_per_sec"] = n_decisions / op.p50_s
    plain = by_name.get("gateway_soak")
    migrate = by_name.get("gateway_soak_migrate")
    if plain is not None and migrate is not None and plain.p50_s > 0:
        derived["gateway_migration_overhead"] = migrate.p50_s / plain.p50_s
    # Macro tier: the capacity figure is events simulated per wall
    # second -- the event count is deterministic (recorded at workload
    # build time), so the ratio is the only machine-dependent part.
    for op in ops:
        if op.group != "macro" or op.p50_s <= 0:
            continue
        events = float(op.params.get("events", 0.0))
        if events > 0:
            derived[f"{op.op}_events_per_sec"] = events / op.p50_s
    return derived


def run_bench(
    quick: bool = False,
    seed: int = 7,
    tracer: Optional[Tracer] = None,
    workloads: Optional[List[Workload]] = None,
    tier: str = "all",
) -> BenchReport:
    """Run the benchmark suite and summarise it as a :class:`BenchReport`.

    *tier* selects one workload tier (``micro`` | ``detect`` | ``e2e``
    | ``farm`` | ``gateway`` | ``macro``; default everything); *workloads* overrides the standard
    suite entirely (tests use tiny custom ones); *tracer* receives
    every per-rep sample for callers that want the raw event stream
    alongside the summary.
    """
    tracer = tracer if tracer is not None else Tracer()
    if workloads is None:
        workloads = build_workloads(quick=quick, seed=seed, tier=tier)
    ops = [_time_workload(tracer, workload) for workload in workloads]
    return BenchReport(
        ops=ops,
        derived=_derive(ops),
        quick=quick,
        seed=seed,
        env=_environment(),
    )


@dataclass(frozen=True)
class Regression:
    """One op whose latency regressed past the allowed factor."""

    op: str
    baseline_p50_s: float
    current_p50_s: float

    @property
    def ratio(self) -> float:
        return self.current_p50_s / self.baseline_p50_s if self.baseline_p50_s > 0 else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.op}: p50 {self.current_p50_s * 1e3:.3f} ms vs baseline "
            f"{self.baseline_p50_s * 1e3:.3f} ms ({self.ratio:.2f}x)"
        )


def compare_to_baseline(
    current: BenchReport, baseline: BenchReport, max_regression: float = 2.0
) -> List[Regression]:
    """Ops whose p50 latency exceeds ``max_regression`` x the baseline.

    Ops are matched by name **and** params (a changed workload is a new
    measurement, not a regression); ops present on only one side are
    ignored -- the gate protects tracked operations, it does not forbid
    adding or retiring them.
    """
    regressions: List[Regression] = []
    baseline_by_key = {(op.op, json.dumps(op.params, sort_keys=True)): op for op in baseline.ops}
    for op in current.ops:
        ref = baseline_by_key.get((op.op, json.dumps(op.params, sort_keys=True)))
        if ref is None or ref.p50_s <= 0:
            continue
        if op.p50_s > max_regression * ref.p50_s:
            regressions.append(
                Regression(op=op.op, baseline_p50_s=ref.p50_s, current_p50_s=op.p50_s)
            )
    return regressions
