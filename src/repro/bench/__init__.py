"""Microbenchmark harness for the receiver hot path (``repro bench``).

The ROADMAP's "as fast as the hardware allows" goal is only real while
it is *measured*: this package times the correlation kernel (direct
vs. batched-FFT), the multi-user detector and an end-to-end 10-tag
decode, summarises each operation's per-rep latency as p50/p95 via the
:mod:`repro.obs` gauge machinery (``bench.*`` metric families), and
writes the trajectory file ``BENCH_XXXX.json`` that CI tracks for
regressions (see ``docs/performance.md``).
"""

from repro.bench.runner import (
    BENCH_ID,
    SCHEMA,
    BenchReport,
    OpResult,
    compare_to_baseline,
    run_bench,
)
from repro.bench.workloads import TIERS

__all__ = [
    "BENCH_ID",
    "SCHEMA",
    "TIERS",
    "BenchReport",
    "OpResult",
    "compare_to_baseline",
    "run_bench",
]
