"""Structured tracing for the CBMA pipeline: spans, counters, gauges.

Every hot path in the repo (receiver stages, the round loop, the epoch
loop) accepts an optional :class:`Tracer`.  When one is supplied, the
code records

- **spans** -- wall-clock timed sections (``with tracer.span("decode")``),
  nested arbitrarily deep;
- **counters** -- monotonically increasing event counts
  (frames detected, CRC failures, SIC cancellations);
- **gauges** -- sampled scalar measurements (per-tag SNR,
  correlation-peak margins, residual energy after cancellation).

When *no* tracer is supplied the instrumentation collapses onto
:data:`NULL_TRACER`, a shared singleton whose every method is a no-op
and whose spans are one reusable object -- no allocation, no branching
beyond a single attribute lookup, so the traced pipeline stays within
noise of the untraced one.

The canonical stage names of the receive pipeline are listed in
:data:`PIPELINE_STAGES`; use them so profiles from different receivers
aggregate cleanly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "PIPELINE_STAGES",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
]

#: Canonical span names of the receive pipeline, in execution order.
PIPELINE_STAGES = ("frame_sync", "detect", "decode", "crc", "sic")


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    start_s: float
    """Start time on the tracer's clock (perf_counter seconds)."""
    duration_s: float
    depth: int
    """Nesting depth at entry (0 = top level)."""
    index: int
    """Monotone completion index (export/replay ordering)."""
    attrs: Dict[str, Any] = field(default_factory=dict)


class _Span:
    """Context manager recording one timed section."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._depth = len(self._tracer._stack)
        self._tracer._stack.append(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        t1 = time.perf_counter()
        tracer = self._tracer
        tracer._stack.pop()
        tracer.records.append(
            SpanRecord(
                name=self._name,
                start_s=self._t0 - tracer._epoch,
                duration_s=t1 - self._t0,
                depth=self._depth,
                index=len(tracer.records),
                attrs=self._attrs,
            )
        )


class Tracer:
    """Collects spans, counters and gauges from an instrumented run.

    A tracer is cheap enough to leave on for whole experiments: span
    entry/exit is two ``perf_counter`` calls plus one small object, and
    counters/gauges are dict updates.  All state is in-memory; export
    it with :func:`repro.obs.export.write_jsonl` or summarise it with
    :meth:`profile`.
    """

    enabled = True

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, List[float]] = {}
        self._stack: List[str] = []
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _Span:
        """Timed section: ``with tracer.span("frame_sync"): ...``."""
        return _Span(self, name, attrs)

    def count(self, name: str, n: float = 1) -> None:
        """Increment counter *name* by *n*."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record one sample of measurement *name*."""
        self.gauges.setdefault(name, []).append(float(value))

    # ------------------------------------------------------------------

    @property
    def current_depth(self) -> int:
        """Nesting depth of the innermost open span."""
        return len(self._stack)

    def clear(self) -> None:
        """Drop all recorded state (open spans stay open)."""
        self.records.clear()
        self.counters.clear()
        self.gauges.clear()
        self._epoch = time.perf_counter()

    def profile(self, wall_time_s: Optional[float] = None):
        """Aggregate everything recorded so far into a
        :class:`~repro.obs.profile.RunProfile`."""
        from repro.obs.profile import RunProfile

        return RunProfile.from_tracer(self, wall_time_s=wall_time_s)

    def jsonl_lines(self) -> Iterator[str]:
        """The recorded events as JSONL (see :mod:`repro.obs.export`)."""
        from repro.obs.export import jsonl_lines

        return jsonl_lines(self)


class _NullSpan:
    """Reusable no-op span (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: the disabled path of every instrumentation hook.

    All methods return immediately; :meth:`span` hands back one shared
    context manager so the ``with`` statement costs only its own
    bytecode.  Use the module singleton :data:`NULL_TRACER` rather than
    constructing new instances.
    """

    enabled = False
    records: List[SpanRecord] = []
    counters: Dict[str, float] = {}
    gauges: Dict[str, List[float]] = {}

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: float = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    @property
    def current_depth(self) -> int:
        return 0

    def clear(self) -> None:
        return None

    def profile(self, wall_time_s: Optional[float] = None):
        from repro.obs.profile import RunProfile

        return RunProfile.from_tracer(self, wall_time_s=wall_time_s)

    def jsonl_lines(self) -> Iterator[str]:
        return iter(())


#: The shared disabled tracer every un-traced code path collapses onto.
NULL_TRACER = NullTracer()


def as_tracer(tracer) -> Tracer:
    """Normalise an optional tracer argument (``None`` -> NULL_TRACER)."""
    return tracer if tracer is not None else NULL_TRACER
