"""The metric-name taxonomy: every counter, gauge and span, declared.

Observability only stays trustworthy while the names stay coherent: a
typo'd ``errors.pipline.decode.exception`` silently opens a new bucket
and the error budget stops adding up.  This module is the single
source of truth for every metric name the instrumentation may emit:

- fixed names (``round.frames_sent``) are declared as constants;
- parameterised families (``errors.pipeline.<stage>.<reason>``) are
  declared as :class:`MetricFamily` patterns with the allowed value
  set of every placeholder;
- :func:`validate` checks an arbitrary name against the registry and
  is what the **LNT002** lint rule (:mod:`repro.lint`) runs over every
  literal metric name in the codebase.

Instrumentation sites should build names through the constants and the
:func:`pipeline_failure` / :func:`fault_loss` / :func:`decode_outcome`
constructors below rather than pasting strings; the constructors raise
on slugs the taxonomy does not know, so an unknown stage or reason
fails at the call site instead of corrupting the budget.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

__all__ = [
    "MetricKind",
    "MetricFamily",
    "TAXONOMY",
    "CONTAINMENT_STAGES",
    "PIPELINE_FAILURE_REASONS",
    "DECODE_REASONS",
    "FAULT_KINDS",
    "SPAN_NAMES",
    "SESSION_STATES",
    "GATEWAY_STATES",
    "validate",
    "is_known",
    "family_for",
    "known_prefixes",
    "pipeline_failure",
    "fault_loss",
    "decode_outcome",
    "session_transition",
    "gateway_transition",
    "C",
    "G",
]

_SLUG = re.compile(r"^[a-z][a-z0-9_]*$")


class MetricKind(Enum):
    """What a metric name may be used as."""

    COUNTER = "counter"
    GAUGE = "gauge"
    SPAN = "span"


#: Pipeline stages a contained failure may attribute itself to
#: (:class:`repro.receiver.failures.DecodeFailure.stage`).
CONTAINMENT_STAGES: FrozenSet[str] = frozenset(
    {"input", "frame_sync", "user_detection", "decode", "crc", "sic", "ack"}
)

#: Reason slugs of contained pipeline failures
#: (``errors.pipeline.<stage>.<reason>``).
PIPELINE_FAILURE_REASONS: FrozenSet[str] = frozenset(
    {"exception", "non_finite", "not_1d", "uninterpretable", "ghost_suppression"}
)

#: Outcome slugs of one frame decode (``decode.<reason>`` counters and
#: :class:`~repro.receiver.decoder.DecodedFrame.reason`).
DECODE_REASONS: FrozenSet[str] = frozenset(
    {"ok", "length", "truncated", "crc", "exception", "ghost"}
)

#: Fault kinds, in loss-attribution priority order (the order
#: :data:`repro.faults.models.FAULT_REASONS` derives from).  ``errors.fault.<kind>``
#: attributes a lost frame to an injected fault; ``faults.<kind>`` counts
#: the injection itself.
FAULT_KINDS: Tuple[str, ...] = (
    "dropout",
    "brownout",
    "clock_drift",
    "adc_clip",
    "interference",
    "ack_loss",
)

#: Health states of a supervised streaming session
#: (:class:`repro.receiver.session.HealthState` values; the
#: ``session.transition.<state>`` counter family).
SESSION_STATES: FrozenSet[str] = frozenset({"healthy", "degraded", "resync", "failed"})

#: Degradation-ladder rungs of the async ingestion gateway
#: (:class:`repro.gateway.ladder.GatewayState` values; the
#: ``gateway.transition.<state>`` counter family).
GATEWAY_STATES: FrozenSet[str] = frozenset({"full", "throttled", "shed", "draining"})

#: Every legal span name (the pipeline stages of
#: :data:`repro.obs.tracer.PIPELINE_STAGES` plus the loop/synthesis spans).
SPAN_NAMES: FrozenSet[str] = frozenset(
    {
        "frame_sync",
        "detect",
        "decode",
        "crc",
        "sic",
        "round",
        "epoch",
        "synthesize",
        "stream_decode",
        "session_window",
        "bench",
        "macro_run",
        "macro_calibration",
        "gateway_step",
    }
)


@dataclass(frozen=True)
class MetricFamily:
    """One declared metric name or parameterised name family.

    ``pattern`` is a dotted name whose ``<placeholder>`` segments stand
    for a variable slug; ``values`` restricts each placeholder to an
    explicit set (an absent entry means any ``[a-z0-9_]`` slug).
    """

    pattern: str
    kind: MetricKind
    description: str
    values: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    @property
    def segments(self) -> Tuple[str, ...]:
        return tuple(self.pattern.split("."))

    @property
    def literal_prefix(self) -> str:
        """The leading dotted segments before the first placeholder."""
        fixed = []
        for seg in self.segments:
            if seg.startswith("<"):
                break
            fixed.append(seg)
        return ".".join(fixed)

    def match(self, name: str) -> Optional[str]:
        """``None`` when *name* parses against this family, else why not."""
        parts = name.split(".")
        segs = self.segments
        if len(parts) != len(segs):
            return f"expected {len(segs)} segments ({self.pattern}), got {len(parts)}"
        for part, seg in zip(parts, segs):
            if seg.startswith("<"):
                placeholder = seg[1:-1]
                allowed = self.values.get(placeholder)
                if allowed is not None and part not in allowed:
                    return (
                        f"unknown {placeholder} {part!r} "
                        f"(allowed: {', '.join(sorted(allowed))})"
                    )
                if allowed is None and not _SLUG.match(part):
                    return f"{placeholder} segment {part!r} is not a slug"
            elif part != seg:
                return f"segment {part!r} does not match {seg!r} in {self.pattern}"
        return None


def _fixed(pattern: str, kind: MetricKind, description: str) -> MetricFamily:
    return MetricFamily(pattern=pattern, kind=kind, description=description)


#: The complete registry.  Adding an instrumentation point means adding
#: its family here first -- LNT002 enforces that ordering.
TAXONOMY: Tuple[MetricFamily, ...] = (
    # --- round / epoch loop counters -------------------------------------
    _fixed("round.rounds", MetricKind.COUNTER, "collision rounds simulated"),
    _fixed("round.frames_sent", MetricKind.COUNTER, "frames offered by active tags"),
    _fixed("round.frames_correct", MetricKind.COUNTER, "frames delivered payload-exact"),
    _fixed("epoch.epochs", MetricKind.COUNTER, "system epochs completed"),
    _fixed("epoch.power_control_runs", MetricKind.COUNTER, "Algorithm 1 invocations"),
    _fixed("unslotted.offered", MetricKind.COUNTER, "unslotted transmissions offered"),
    _fixed("unslotted.delivered", MetricKind.COUNTER, "unslotted transmissions decoded"),
    # --- receiver stage counters -----------------------------------------
    _fixed("frame_sync.detections", MetricKind.COUNTER, "declared frame starts"),
    _fixed("frame_sync.crossings", MetricKind.COUNTER, "raw threshold crossings"),
    _fixed("frame_sync.misses", MetricKind.COUNTER, "buffers with no energy detection"),
    _fixed("detect.users", MetricKind.COUNTER, "user detections across rounds"),
    MetricFamily(
        "decode.<reason>",
        MetricKind.COUNTER,
        "frame decode outcomes by reason",
        values={"reason": DECODE_REASONS},
    ),
    _fixed("crc.ok", MetricKind.COUNTER, "CRC checks passed"),
    _fixed("crc.fail", MetricKind.COUNTER, "CRC checks failed"),
    _fixed("sic.passes", MetricKind.COUNTER, "SIC detect-decode-cancel passes"),
    _fixed("sic.cancellations", MetricKind.COUNTER, "frames subtracted by SIC"),
    # --- ARQ / reliability counters --------------------------------------
    MetricFamily(
        "arq.<event>",
        MetricKind.COUNTER,
        "stop-and-wait ARQ events",
        values={
            "event": frozenset(
                {"offered", "delivered", "dropped", "duplicates", "acks_lost", "transmissions"}
            )
        },
    ),
    # --- loss attribution (the error budget) -----------------------------
    _fixed("errors.not_detected", MetricKind.COUNTER, "losses at detection"),
    _fixed("errors.not_decoded", MetricKind.COUNTER, "losses at decode"),
    _fixed("errors.wrong_payload", MetricKind.COUNTER, "CRC-passing wrong payloads"),
    MetricFamily(
        "errors.fault.<kind>",
        MetricKind.COUNTER,
        "losses attributed to an injected fault",
        values={"kind": frozenset(FAULT_KINDS)},
    ),
    MetricFamily(
        "errors.pipeline.<stage>.<reason>",
        MetricKind.COUNTER,
        "contained pipeline failures (degradation contract)",
        values={"stage": CONTAINMENT_STAGES, "reason": PIPELINE_FAILURE_REASONS},
    ),
    # --- fault injections (not losses: what was injected) ----------------
    MetricFamily(
        "faults.<kind>",
        MetricKind.COUNTER,
        "fault injections by kind",
        values={"kind": frozenset({*FAULT_KINDS, "ack_lost"})},
    ),
    # --- supervised streaming sessions (repro.receiver.session) -----------
    _fixed("session.windows", MetricKind.COUNTER, "windows walked by the supervisor"),
    _fixed("session.windows_live", MetricKind.COUNTER, "windows past the pre-gate (full decode)"),
    _fixed("session.windows_skipped", MetricKind.COUNTER, "dark windows skipped by the pre-gate"),
    _fixed("session.windows_shed", MetricKind.COUNTER, "oldest windows dropped by backlog shedding"),
    _fixed("session.frames", MetricKind.COUNTER, "stream frames emitted by the session"),
    _fixed("session.duplicates", MetricKind.COUNTER, "cross-window duplicate decodes suppressed"),
    _fixed("session.dedup_evictions", MetricKind.COUNTER, "dedup entries evicted past the horizon"),
    _fixed("session.resyncs", MetricKind.COUNTER, "re-synchronisation passes entered"),
    _fixed("session.watchdog_trips", MetricKind.COUNTER, "per-window latency watchdog trips"),
    _fixed("session.quarantined", MetricKind.COUNTER, "ingested chunks needing sanitisation"),
    _fixed("session.checkpoints", MetricKind.COUNTER, "session checkpoints written"),
    _fixed("session.restores", MetricKind.COUNTER, "sessions restored from a checkpoint"),
    MetricFamily(
        "session.transition.<state>",
        MetricKind.COUNTER,
        "health state machine transitions by destination state",
        values={"state": SESSION_STATES},
    ),
    # --- parallel decode farm (repro.farm) ---------------------------------
    _fixed("farm.chunks", MetricKind.COUNTER, "sample chunks fanned out to workers"),
    _fixed("farm.frames", MetricKind.COUNTER, "stream frames collected from workers"),
    _fixed("farm.sessions_opened", MetricKind.COUNTER, "sessions placed on a worker"),
    _fixed("farm.sessions_closed", MetricKind.COUNTER, "sessions finished or drained away"),
    _fixed("farm.migrations", MetricKind.COUNTER, "sessions drained and resumed on another worker"),
    _fixed("farm.batched_windows", MetricKind.COUNTER, "windows pre-gated through a cross-session batch"),
    _fixed("farm.slot_waits", MetricKind.COUNTER, "feeds that blocked for a free ring slot"),
    # --- async ingestion gateway (repro.gateway) ---------------------------
    _fixed("gateway.streams_opened", MetricKind.COUNTER, "capture streams admitted by the gateway"),
    _fixed("gateway.streams_closed", MetricKind.COUNTER, "capture streams finished or evicted"),
    _fixed("gateway.admitted", MetricKind.COUNTER, "chunks accepted into a stream intake queue"),
    _fixed("gateway.rejected", MetricKind.COUNTER, "chunks (or streams) refused at admission"),
    _fixed("gateway.shed", MetricKind.COUNTER, "admitted chunks dropped by load shedding"),
    _fixed("gateway.retries", MetricKind.COUNTER, "admission retries after jittered backoff"),
    _fixed("gateway.deadline_misses", MetricKind.COUNTER, "requests abandoned at their deadline"),
    _fixed("gateway.chunks", MetricKind.COUNTER, "chunks fed through to the decode farm"),
    _fixed("gateway.frames", MetricKind.COUNTER, "stream frames delivered to gateway clients"),
    _fixed("gateway.migrations", MetricKind.COUNTER, "sessions drained/resumed for elasticity"),
    MetricFamily(
        "gateway.transition.<state>",
        MetricKind.COUNTER,
        "degradation-ladder transitions by destination rung",
        values={"state": GATEWAY_STATES},
    ),
    # --- macro tier (repro.macro: event-driven fleet simulator) -----------
    _fixed("macro.offered", MetricKind.COUNTER, "messages offered to the macro engine"),
    _fixed("macro.delivered", MetricKind.COUNTER, "messages delivered (deduped) by the macro engine"),
    _fixed("macro.dropped", MetricKind.COUNTER, "messages dropped at retry limit or queue tail"),
    _fixed("macro.duplicates", MetricKind.COUNTER, "redeliveries after a lost ACK (deduped)"),
    _fixed("macro.acks_lost", MetricKind.COUNTER, "downlink ACKs that never reached their tag"),
    _fixed("macro.transmissions", MetricKind.COUNTER, "transmission attempts simulated"),
    _fixed("macro.collisions", MetricKind.COUNTER, "attempts lost to concurrent-access FER"),
    _fixed("macro.windows", MetricKind.COUNTER, "arrival windows advanced by the engine"),
    _fixed("macro.calibration_rounds", MetricKind.COUNTER, "PHY rounds run by the calibration sweep"),
    _fixed("macro.surface_cache_hits", MetricKind.COUNTER, "calibration artifacts reused from cache"),
    # --- microbenchmarks (repro bench) ------------------------------------
    MetricFamily(
        "bench.<op>.reps",
        MetricKind.COUNTER,
        "timed repetitions per benchmark operation",
    ),
    MetricFamily(
        "bench.<op>.op_s",
        MetricKind.GAUGE,
        "per-repetition latency samples of one benchmark operation",
    ),
    # --- gauges ----------------------------------------------------------
    _fixed("tag.snr_db", MetricKind.GAUGE, "per-tag SNR at the receiver"),
    _fixed("frame_sync.lead_db", MetricKind.GAUGE, "detection margin over threshold"),
    _fixed("detect.score", MetricKind.GAUGE, "normalised correlation of detections"),
    _fixed("detect.peak_margin", MetricKind.GAUGE, "peak margin over runner-up"),
    _fixed("round.n_samples", MetricKind.GAUGE, "synthesized buffer length"),
    _fixed("session.backlog_windows", MetricKind.GAUGE, "pending windows after each feed"),
    _fixed("session.dedup_size", MetricKind.GAUGE, "dedup table size after each window"),
    _fixed("session.window_latency_s", MetricKind.GAUGE, "wall-clock latency per live window"),
    _fixed("farm.sessions_live", MetricKind.GAUGE, "sessions currently resident on workers"),
    _fixed("farm.queue_depth", MetricKind.GAUGE, "commands in flight to workers"),
    _fixed("farm.worker_utilization", MetricKind.GAUGE, "busy fraction per worker over its lifetime"),
    _fixed("farm.ring_occupancy", MetricKind.GAUGE, "occupied shared-memory ring slots after each feed"),
    _fixed("gateway.queue_depth", MetricKind.GAUGE, "aggregate intake chunks queued across streams"),
    _fixed("gateway.tokens", MetricKind.GAUGE, "admission tokens left in the bucket"),
    _fixed("gateway.rtf", MetricKind.GAUGE, "decode wall seconds per stream second (smoothed)"),
    _fixed("gateway.streams_live", MetricKind.GAUGE, "capture streams currently open"),
    _fixed("gateway.retained_samples", MetricKind.GAUGE, "samples retained for migration re-feed"),
    _fixed("macro.backlog", MetricKind.GAUGE, "queued messages across the fleet after each window"),
    _fixed("macro.events_per_sec", MetricKind.GAUGE, "engine event throughput of one run"),
    _fixed("macro.fer", MetricKind.GAUGE, "frame error rate the link surface returned"),
) + tuple(
    _fixed(name, MetricKind.SPAN, "pipeline/loop span") for name in sorted(SPAN_NAMES)
)


def iter_families(kind: Optional[MetricKind] = None) -> Iterator[MetricFamily]:
    """All families, optionally restricted to one kind."""
    for fam in TAXONOMY:
        if kind is None or fam.kind is kind:
            yield fam


def validate(name: str, kind: MetricKind) -> Optional[str]:
    """``None`` when *name* is a legal *kind* name, else an error message.

    A name whose first segment matches no family at all gets the
    generic "unknown family" message; a name that *starts* like a
    declared family but fails its placeholder constraints gets that
    family's specific complaint (the more actionable error).
    """
    root = name.split(".", 1)[0]
    best: Optional[str] = None
    for fam in iter_families(kind):
        err = fam.match(name)
        if err is None:
            return None
        if fam.segments[0] == root:
            best = best or f"{name!r}: {err}"
    if best is not None:
        return best
    return (
        f"{name!r} matches no declared {kind.value} family "
        f"(see repro.obs.taxonomy.TAXONOMY)"
    )


def is_known(name: str, kind: MetricKind) -> bool:
    """True when *name* parses against the registry."""
    return validate(name, kind) is None


def family_for(name: str, kind: MetricKind) -> Optional[MetricFamily]:
    """The family *name* parses against, if any."""
    for fam in iter_families(kind):
        if fam.match(name) is None:
            return fam
    return None


def known_prefixes(kind: MetricKind) -> Tuple[str, ...]:
    """First segments of every declared family of *kind* (for LNT002's
    heuristics: a dotted literal starting with one of these is treated
    as a metric name and validated)."""
    return tuple(sorted({fam.segments[0] for fam in iter_families(kind)}))


# ----------------------------------------------------------------------
# Checked constructors for the parameterised families
# ----------------------------------------------------------------------


def pipeline_failure(stage: str, reason: str) -> str:
    """``errors.pipeline.<stage>.<reason>`` with both slugs checked."""
    if stage not in CONTAINMENT_STAGES:
        raise ValueError(
            f"unknown pipeline stage {stage!r} (allowed: {', '.join(sorted(CONTAINMENT_STAGES))})"
        )
    if reason not in PIPELINE_FAILURE_REASONS:
        raise ValueError(
            f"unknown failure reason {reason!r} "
            f"(allowed: {', '.join(sorted(PIPELINE_FAILURE_REASONS))})"
        )
    return f"errors.pipeline.{stage}.{reason}"


def fault_loss(kind: str) -> str:
    """``errors.fault.<kind>`` with the kind checked.

    Accepts either the bare kind (``"dropout"``) or the prefixed loss
    slug a :class:`~repro.faults.plan.RoundFaults` reports
    (``"fault.dropout"``).
    """
    slug = kind[len("fault."):] if kind.startswith("fault.") else kind
    if slug not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r} (allowed: {', '.join(FAULT_KINDS)})"
        )
    return f"errors.fault.{slug}"


def session_transition(state: str) -> str:
    """``session.transition.<state>`` with the state checked."""
    if state not in SESSION_STATES:
        raise ValueError(
            f"unknown session state {state!r} (allowed: {', '.join(sorted(SESSION_STATES))})"
        )
    return f"session.transition.{state}"


def gateway_transition(state: str) -> str:
    """``gateway.transition.<state>`` with the state checked."""
    if state not in GATEWAY_STATES:
        raise ValueError(
            f"unknown gateway state {state!r} (allowed: {', '.join(sorted(GATEWAY_STATES))})"
        )
    return f"gateway.transition.{state}"


def decode_outcome(reason: str) -> str:
    """``decode.<reason>`` with the reason checked."""
    if reason not in DECODE_REASONS:
        raise ValueError(
            f"unknown decode reason {reason!r} (allowed: {', '.join(sorted(DECODE_REASONS))})"
        )
    return f"decode.{reason}"


class C:
    """Counter-name constants (the fixed members of the taxonomy)."""

    ROUND_ROUNDS = "round.rounds"
    ROUND_FRAMES_SENT = "round.frames_sent"
    ROUND_FRAMES_CORRECT = "round.frames_correct"
    EPOCH_EPOCHS = "epoch.epochs"
    EPOCH_POWER_CONTROL_RUNS = "epoch.power_control_runs"
    UNSLOTTED_OFFERED = "unslotted.offered"
    UNSLOTTED_DELIVERED = "unslotted.delivered"
    FRAME_SYNC_DETECTIONS = "frame_sync.detections"
    FRAME_SYNC_CROSSINGS = "frame_sync.crossings"
    FRAME_SYNC_MISSES = "frame_sync.misses"
    DETECT_USERS = "detect.users"
    CRC_OK = "crc.ok"
    CRC_FAIL = "crc.fail"
    SIC_PASSES = "sic.passes"
    SIC_CANCELLATIONS = "sic.cancellations"
    DECODE_GHOST = "decode.ghost"
    ERRORS_NOT_DETECTED = "errors.not_detected"
    ERRORS_NOT_DECODED = "errors.not_decoded"
    ERRORS_WRONG_PAYLOAD = "errors.wrong_payload"
    FAULTS_ACK_LOST = "faults.ack_lost"
    ARQ_OFFERED = "arq.offered"
    ARQ_DELIVERED = "arq.delivered"
    ARQ_DROPPED = "arq.dropped"
    ARQ_DUPLICATES = "arq.duplicates"
    ARQ_ACKS_LOST = "arq.acks_lost"
    ARQ_TRANSMISSIONS = "arq.transmissions"
    SESSION_WINDOWS = "session.windows"
    SESSION_WINDOWS_LIVE = "session.windows_live"
    SESSION_WINDOWS_SKIPPED = "session.windows_skipped"
    SESSION_WINDOWS_SHED = "session.windows_shed"
    SESSION_FRAMES = "session.frames"
    SESSION_DUPLICATES = "session.duplicates"
    SESSION_DEDUP_EVICTIONS = "session.dedup_evictions"
    SESSION_RESYNCS = "session.resyncs"
    SESSION_WATCHDOG_TRIPS = "session.watchdog_trips"
    SESSION_QUARANTINED = "session.quarantined"
    SESSION_CHECKPOINTS = "session.checkpoints"
    SESSION_RESTORES = "session.restores"
    FARM_CHUNKS = "farm.chunks"
    FARM_FRAMES = "farm.frames"
    FARM_SESSIONS_OPENED = "farm.sessions_opened"
    FARM_SESSIONS_CLOSED = "farm.sessions_closed"
    FARM_MIGRATIONS = "farm.migrations"
    FARM_BATCHED_WINDOWS = "farm.batched_windows"
    FARM_SLOT_WAITS = "farm.slot_waits"
    GATEWAY_STREAMS_OPENED = "gateway.streams_opened"
    GATEWAY_STREAMS_CLOSED = "gateway.streams_closed"
    GATEWAY_ADMITTED = "gateway.admitted"
    GATEWAY_REJECTED = "gateway.rejected"
    GATEWAY_SHED = "gateway.shed"
    GATEWAY_RETRIES = "gateway.retries"
    GATEWAY_DEADLINE_MISSES = "gateway.deadline_misses"
    GATEWAY_CHUNKS = "gateway.chunks"
    GATEWAY_FRAMES = "gateway.frames"
    GATEWAY_MIGRATIONS = "gateway.migrations"
    MACRO_OFFERED = "macro.offered"
    MACRO_DELIVERED = "macro.delivered"
    MACRO_DROPPED = "macro.dropped"
    MACRO_DUPLICATES = "macro.duplicates"
    MACRO_ACKS_LOST = "macro.acks_lost"
    MACRO_TRANSMISSIONS = "macro.transmissions"
    MACRO_COLLISIONS = "macro.collisions"
    MACRO_WINDOWS = "macro.windows"
    MACRO_CALIBRATION_ROUNDS = "macro.calibration_rounds"
    MACRO_SURFACE_CACHE_HITS = "macro.surface_cache_hits"


class G:
    """Gauge-name constants."""

    TAG_SNR_DB = "tag.snr_db"
    FRAME_SYNC_LEAD_DB = "frame_sync.lead_db"
    DETECT_SCORE = "detect.score"
    DETECT_PEAK_MARGIN = "detect.peak_margin"
    ROUND_N_SAMPLES = "round.n_samples"
    SESSION_BACKLOG_WINDOWS = "session.backlog_windows"
    SESSION_DEDUP_SIZE = "session.dedup_size"
    SESSION_WINDOW_LATENCY_S = "session.window_latency_s"
    FARM_SESSIONS_LIVE = "farm.sessions_live"
    FARM_QUEUE_DEPTH = "farm.queue_depth"
    FARM_WORKER_UTILIZATION = "farm.worker_utilization"
    FARM_RING_OCCUPANCY = "farm.ring_occupancy"
    GATEWAY_QUEUE_DEPTH = "gateway.queue_depth"
    GATEWAY_TOKENS = "gateway.tokens"
    GATEWAY_RTF = "gateway.rtf"
    GATEWAY_STREAMS_LIVE = "gateway.streams_live"
    GATEWAY_RETAINED_SAMPLES = "gateway.retained_samples"
    MACRO_BACKLOG = "macro.backlog"
    MACRO_EVENTS_PER_SEC = "macro.events_per_sec"
    MACRO_FER = "macro.fer"
