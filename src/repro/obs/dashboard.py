"""ASCII dashboard rendering for run profiles.

Turns a :class:`~repro.obs.profile.RunProfile` into the stage-time bar
chart and error-budget view the ``repro profile`` subcommand prints,
re-using the repo's dependency-free terminal plotting helpers.
"""

from __future__ import annotations

from repro.analysis.ascii_plots import bar_chart
from repro.obs.profile import RunProfile

__all__ = ["render_dashboard"]


def render_dashboard(profile: RunProfile, width: int = 40) -> str:
    """Bar-chart view of where a run's time and errors went."""
    parts = []
    if profile.stages:
        ordered = sorted(profile.stages.values(), key=lambda s: -s.total_s)
        parts.append("time per stage (total seconds):")
        parts.append(
            bar_chart(
                [s.name for s in ordered],
                [s.total_s for s in ordered],
                width=width,
                unit=" s",
            )
        )
    if profile.error_budget:
        items = sorted(profile.error_budget.items())
        parts.append("")
        parts.append("frame outcome budget (fraction of sent frames):")
        parts.append(
            bar_chart([k for k, _ in items], [v for _, v in items], width=width)
        )
    interesting = [g for g in profile.gauges.values() if g.count > 1]
    if interesting:
        parts.append("")
        parts.append("gauges (mean):")
        parts.append(
            bar_chart(
                [g.name for g in interesting],
                [abs(g.mean) for g in interesting],
                width=width,
            )
        )
    return "\n".join(parts) if parts else "(empty profile)"
