"""Aggregated run profiles: stage latencies and error budgets.

A :class:`RunProfile` condenses a tracer's raw spans/counters/gauges
into the summary an operator actually reads:

- per-stage latency statistics (count, total, mean, p50, p95, max);
- final counter values;
- gauge statistics (count, mean, min, p50, p95, max);
- a **stage-attributed error budget**: of the frames that were lost,
  what fraction died at detection, at decode, or decoded to the wrong
  payload -- the attribution NetScatter-style evaluations rely on.

Profiles serialise to/from plain dicts and JSON so benchmark drivers
can store them next to their metrics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.obs.taxonomy import C

__all__ = ["StageStats", "GaugeStats", "RunProfile"]

#: Counter names that attribute one lost frame to a pipeline stage
#: (incremented by the network's truth-based scoring).
_ERROR_COUNTERS = {
    C.ERRORS_NOT_DETECTED: "detect",
    C.ERRORS_NOT_DECODED: "decode",
    C.ERRORS_WRONG_PAYLOAD: "payload",
}


@dataclass(frozen=True)
class StageStats:
    """Latency statistics of one span name."""

    name: str
    count: int
    total_s: float
    mean_s: float
    p50_s: float
    p95_s: float
    max_s: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_durations(cls, name: str, durations: List[float]) -> "StageStats":
        arr = np.asarray(durations, dtype=np.float64)
        return cls(
            name=name,
            count=int(arr.size),
            total_s=float(arr.sum()),
            mean_s=float(arr.mean()),
            p50_s=float(np.percentile(arr, 50)),
            p95_s=float(np.percentile(arr, 95)),
            max_s=float(arr.max()),
        )


@dataclass(frozen=True)
class GaugeStats:
    """Distribution statistics of one gauge."""

    name: str
    count: int
    mean: float
    min: float
    p50: float
    p95: float
    max: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.max,
        }

    @classmethod
    def from_values(cls, name: str, values: List[float]) -> "GaugeStats":
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            name=name,
            count=int(arr.size),
            mean=float(arr.mean()),
            min=float(arr.min()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            max=float(arr.max()),
        )


@dataclass
class RunProfile:
    """Stage-attributed summary of one instrumented run."""

    stages: Dict[str, StageStats] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, GaugeStats] = field(default_factory=dict)
    error_budget: Dict[str, float] = field(default_factory=dict)
    """Stage -> fraction of *sent* frames lost at that stage."""
    wall_time_s: float = 0.0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer, wall_time_s: Optional[float] = None) -> "RunProfile":
        """Aggregate a tracer's records into a profile."""
        by_name: Dict[str, List[float]] = {}
        for rec in tracer.records:
            by_name.setdefault(rec.name, []).append(rec.duration_s)
        stages = {
            name: StageStats.from_durations(name, durs) for name, durs in by_name.items()
        }
        gauges = {
            name: GaugeStats.from_values(name, vals)
            for name, vals in tracer.gauges.items()
            if vals
        }
        counters = dict(tracer.counters)
        if wall_time_s is None:
            wall_time_s = sum(s.total_s for s in stages.values() if s.name == "round")
        return cls(
            stages=stages,
            counters=counters,
            gauges=gauges,
            error_budget=cls._error_budget(counters),
            wall_time_s=float(wall_time_s),
        )

    @staticmethod
    def _error_budget(counters: Dict[str, float]) -> Dict[str, float]:
        sent = counters.get(C.ROUND_FRAMES_SENT, 0)
        if not sent:
            return {}
        budget = {
            stage: counters.get(key, 0) / sent for key, stage in _ERROR_COUNTERS.items()
        }
        # Any other errors.* counter (fault-attributed losses like
        # errors.fault.dropout, contained pipeline failures under
        # errors.pipeline.*) joins the budget under its own slug, so
        # every loss a run attributed shows up in one place.
        for key, value in counters.items():
            if key.startswith("errors.") and key not in _ERROR_COUNTERS:
                budget[key[len("errors."):]] = value / sent
        budget["delivered"] = counters.get(C.ROUND_FRAMES_CORRECT, 0) / sent
        return budget

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "wall_time_s": self.wall_time_s,
            "stages": {name: s.to_dict() for name, s in self.stages.items()},
            "counters": dict(self.counters),
            "gauges": {name: g.to_dict() for name, g in self.gauges.items()},
            "error_budget": dict(self.error_budget),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RunProfile":
        stages = {
            name: StageStats(name=name, **vals) for name, vals in data.get("stages", {}).items()
        }
        gauges = {
            name: GaugeStats(name=name, **vals) for name, vals in data.get("gauges", {}).items()
        }
        return cls(
            stages=stages,
            counters=dict(data.get("counters", {})),
            gauges=gauges,
            error_budget=dict(data.get("error_budget", {})),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunProfile":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format_table(self) -> str:
        """Fixed-width text table of the stage breakdown."""
        lines = [
            f"{'stage':<14} {'calls':>7} {'total':>10} {'mean':>10} {'p50':>10} {'p95':>10}",
            "-" * 65,
        ]
        ordered = sorted(self.stages.values(), key=lambda s: -s.total_s)
        for s in ordered:
            lines.append(
                f"{s.name:<14} {s.count:>7d} {_fmt_s(s.total_s):>10} "
                f"{_fmt_s(s.mean_s):>10} {_fmt_s(s.p50_s):>10} {_fmt_s(s.p95_s):>10}"
            )
        if self.error_budget:
            lines.append("")
            lines.append("error budget (fraction of sent frames):")
            for stage, frac in sorted(self.error_budget.items()):
                lines.append(f"  {stage:<14} {frac:7.3f}")
        return "\n".join(lines)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"
