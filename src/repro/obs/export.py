"""JSONL event export for tracer state.

One JSON object per line, in a stable schema:

- ``{"type": "span", "name", "start_s", "duration_s", "depth", "index",
  "attrs"}`` -- one per completed span, in completion order;
- ``{"type": "counter", "name", "value"}`` -- final counter values;
- ``{"type": "gauge", "name", "values"}`` -- every recorded sample;
- ``{"type": "profile", ...}`` -- the aggregated
  :class:`~repro.obs.profile.RunProfile` (when one is supplied).

The format round-trips: :func:`read_jsonl` reconstructs the records so
traces can be archived next to ``BENCH_*.json`` artefacts and diffed
across optimisation PRs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.obs.profile import RunProfile
from repro.obs.tracer import SpanRecord, Tracer

__all__ = ["jsonl_lines", "write_jsonl", "read_jsonl"]


def jsonl_lines(tracer: Tracer, profile: Optional[RunProfile] = None) -> Iterator[str]:
    """Serialise a tracer's events (and optionally a profile) to JSONL."""
    for rec in tracer.records:
        yield json.dumps(
            {
                "type": "span",
                "name": rec.name,
                "start_s": rec.start_s,
                "duration_s": rec.duration_s,
                "depth": rec.depth,
                "index": rec.index,
                "attrs": rec.attrs,
            }
        )
    for name, value in tracer.counters.items():
        yield json.dumps({"type": "counter", "name": name, "value": value})
    for name, values in tracer.gauges.items():
        yield json.dumps({"type": "gauge", "name": name, "values": list(values)})
    if profile is not None:
        yield json.dumps({"type": "profile", **profile.to_dict()})


def write_jsonl(
    path: Union[str, Path],
    tracer: Tracer,
    profile: Optional[RunProfile] = None,
) -> int:
    """Write the trace to *path*; returns the number of lines written."""
    n = 0
    with open(path, "w") as fh:
        for line in jsonl_lines(tracer, profile):
            fh.write(line + "\n")
            n += 1
    return n


def read_jsonl(path: Union[str, Path]) -> dict:
    """Parse a JSONL trace back into structured form.

    Returns ``{"spans": [SpanRecord...], "counters": {...},
    "gauges": {...}, "profile": RunProfile | None}``.
    """
    spans: List[SpanRecord] = []
    counters = {}
    gauges = {}
    profile = None
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.get("type")
            if kind == "span":
                spans.append(
                    SpanRecord(
                        name=obj["name"],
                        start_s=obj["start_s"],
                        duration_s=obj["duration_s"],
                        depth=obj["depth"],
                        index=obj["index"],
                        attrs=obj.get("attrs", {}),
                    )
                )
            elif kind == "counter":
                counters[obj["name"]] = obj["value"]
            elif kind == "gauge":
                gauges[obj["name"]] = list(obj["values"])
            elif kind == "profile":
                profile = RunProfile.from_dict(obj)
    return {"spans": spans, "counters": counters, "gauges": gauges, "profile": profile}
