"""The unified experiment result type.

Every driver in :mod:`repro.sim.experiments` returns one
:class:`ExperimentResult`: the swept series for plotting, plus the
fields the old ad-hoc tuples and per-driver dataclasses scattered
around -- the parameters that produced the run, the root seed, scalar
summary metrics, the wall-clock time, and (when the run was traced) a
:class:`~repro.obs.profile.RunProfile`.

This type is the whole contract: scalar summaries live in
``metrics`` (``result.metrics["cbma_bps"]``), bulk arrays in
``artifacts``.  The transitional shims that let results masquerade as
the pre-1.x shapes (attribute fall-through to ``metrics``, tuple
unpacking via a ``legacy_tuple`` field) were removed after their one
deprecation release.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.obs.profile import RunProfile

__all__ = ["ExperimentResult"]


def _jsonable(value):
    """Coerce numpy scalars/arrays into JSON-serialisable builtins."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass
class ExperimentResult:
    """One experiment's labelled data and run metadata.

    ``x`` is the swept parameter, ``series`` maps a label (e.g.
    "2 tags") to y-values aligned with ``x``; ``notes`` carries
    free-form context.  ``params``/``seed`` record what produced the
    run, ``metrics`` holds scalar summaries, ``wall_time_s`` the
    driver's wall-clock cost, and ``profile`` the aggregated trace when
    the run was observed with a :class:`~repro.obs.tracer.Tracer`.
    """

    experiment_id: str
    x_label: str = ""
    x: List = field(default_factory=list)
    series: dict = field(default_factory=dict)
    notes: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    seed: Optional[int] = None
    wall_time_s: float = 0.0
    profile: Optional[RunProfile] = None
    artifacts: Dict[str, Any] = field(default_factory=dict, repr=False)
    """Bulk outputs that are not series (e.g. the Fig. 5 field array)."""

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def finish(self, t0: float) -> "ExperimentResult":
        """Record wall time from a ``time.perf_counter()`` start mark."""
        self.wall_time_s = time.perf_counter() - t0
        return self

    def summarize_series(self, prefix: str = "mean") -> "ExperimentResult":
        """Fold each numeric series' mean into ``metrics``."""
        for label, ys in self.series.items():
            if ys and all(isinstance(y, (int, float, np.floating, np.integer)) for y in ys):
                self.metrics[f"{prefix}:{label}"] = float(np.mean(ys))
        return self

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "x_label": self.x_label,
            "x": _jsonable(self.x),
            "series": _jsonable(self.series),
            "notes": self.notes,
            "params": _jsonable(self.params),
            "metrics": _jsonable(self.metrics),
            "seed": self.seed,
            "wall_time_s": self.wall_time_s,
            "profile": self.profile.to_dict() if self.profile is not None else None,
            "artifacts": _jsonable(self.artifacts),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        profile = data.get("profile")
        return cls(
            experiment_id=data["experiment_id"],
            x_label=data.get("x_label", ""),
            x=list(data.get("x", [])),
            series={k: list(v) for k, v in data.get("series", {}).items()},
            notes=data.get("notes", ""),
            params=dict(data.get("params", {})),
            metrics=dict(data.get("metrics", {})),
            seed=data.get("seed"),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            profile=RunProfile.from_dict(profile) if profile is not None else None,
            artifacts=dict(data.get("artifacts", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))
