"""Observability for the CBMA pipeline: tracing, profiling, results.

The paper pipeline is only as fast (and as debuggable) as what can be
*measured* about it.  This package is that substrate:

``repro.obs.tracer``
    Zero-cost-when-disabled :class:`Tracer` -- span timing
    (``with tracer.span("frame_sync")``), typed counters and gauges --
    threaded through the receiver stages, the round loop and the epoch
    loop.  Without a tracer every hook collapses onto the shared
    :data:`NULL_TRACER` no-op singleton.

``repro.obs.profile``
    :class:`RunProfile`: p50/p95 stage latencies, final counters,
    gauge distributions, and the stage-attributed error budget
    (detect vs decode vs wrong-payload losses).

``repro.obs.export``
    JSONL event log -- archive traces next to benchmark artefacts and
    diff them across optimisation PRs.

``repro.obs.dashboard``
    ASCII stage-breakdown view for ``repro profile``.

``repro.obs.result``
    :class:`ExperimentResult`, the unified return type of every
    ``repro.sim.experiments`` driver (params, metrics, profile, seed,
    wall time).

Quickstart::

    from repro import CbmaConfig, CbmaNetwork, Deployment
    from repro.obs import Tracer

    tracer = Tracer()
    net = CbmaNetwork(CbmaConfig(n_tags=4, seed=7),
                      Deployment.linear(4, tag_to_rx=1.0), tracer=tracer)
    net.run_rounds(20)
    print(tracer.profile().format_table())
"""

from repro.obs.dashboard import render_dashboard
from repro.obs.export import jsonl_lines, read_jsonl, write_jsonl
from repro.obs.profile import GaugeStats, RunProfile, StageStats
from repro.obs.result import ExperimentResult
from repro.obs.taxonomy import (
    TAXONOMY,
    C,
    G,
    MetricFamily,
    MetricKind,
    decode_outcome,
    family_for,
    fault_loss,
    is_known,
    pipeline_failure,
    session_transition,
    validate,
)
from repro.obs.tracer import (
    NULL_TRACER,
    PIPELINE_STAGES,
    NullTracer,
    SpanRecord,
    Tracer,
    as_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "PIPELINE_STAGES",
    "as_tracer",
    "RunProfile",
    "StageStats",
    "GaugeStats",
    "ExperimentResult",
    "jsonl_lines",
    "write_jsonl",
    "read_jsonl",
    "render_dashboard",
    "MetricKind",
    "MetricFamily",
    "TAXONOMY",
    "validate",
    "is_known",
    "family_for",
    "pipeline_failure",
    "fault_loss",
    "decode_outcome",
    "session_transition",
    "C",
    "G",
]
