"""DecodeFarm: shard supervised sessions across a process pool.

The farm is the orchestration layer above
:class:`~repro.receiver.session.SessionSupervisor`: N sessions are
placed round-robin on W workers, IQ chunks travel through per-worker
shared-memory rings (:mod:`repro.farm.ring`), the window walk is
co-scheduled so sessions sharing a template bank gate through one
stacked FFT (:mod:`repro.farm.worker`), and results flow back as
ordered :class:`~repro.receiver.streaming.StreamFrame` batches with
per-session stats.  Checkpoint/restore is the rebalance primitive:
:meth:`DecodeFarm.drain` lifts a session off its worker as checkpoint
records and :meth:`DecodeFarm.restore` resumes it -- bit-identically
-- on another.

Two backends share every line of scheduling logic
(:class:`~repro.farm.worker.WorkerCore`):

- ``"process"`` -- one OS process per worker, shared-memory ingest,
  the real thing;
- ``"inline"`` -- the same worker cores driven synchronously in the
  parent: the equivalence oracle for tests, and the sensible choice on
  a single-core host.

The feed protocol is cycle-based: :meth:`feed` only *buffers* (the
worker ingests the chunk and frees the ring slot; nothing decodes),
and :meth:`pump` runs one co-scheduled decode cycle on every worker
with dirty sessions.  Per session the cadence is therefore
ingest-then-pump per chunk -- exactly ``SessionSupervisor.feed`` --
which is why farm output and stats are byte-identical to a sequential
run over the same chunks.
"""

from __future__ import annotations

import multiprocessing
import queue
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.farm.config import FarmConfig, SessionSpec
from repro.farm.ring import ShmRing
from repro.farm.worker import HealthHistory, Record, WorkerCore, worker_main
from repro.obs.taxonomy import C, G
from repro.obs.tracer import as_tracer
from repro.receiver.streaming import StreamFrame

__all__ = ["DecodeFarm", "WorkerCrash"]

_BACKENDS = ("process", "inline")

#: An idle farm whose worker takes longer than this to answer is
#: declared dead rather than hanging the parent forever.
_HARVEST_TIMEOUT_S = 120.0

#: Poll granularity while blocked on the result queue: between polls
#: the parent checks worker liveness so a dead worker surfaces as
#: :class:`WorkerCrash` instead of a silent wait.
_DEATH_POLL_S = 1.0


class WorkerCrash(RuntimeError):
    """A farm worker process died without reporting ``stopped``.

    Raised from the parent's harvest loop.  By the time it propagates
    the farm has already reclaimed the dead worker's in-flight ring
    slots (they would otherwise stay claimed forever and strangle
    ingest) and evicted its sessions from the placement map.

    Attributes
    ----------
    worker:
        Index of the dead worker.
    sessions:
        Session ids that were resident on it (now unplaced; their
        frames so far remain in :attr:`DecodeFarm.frames`).
    released_slots:
        Ring slots that were in flight to the worker and have been
        returned to the free list.
    exitcode:
        The process exit code (negative = killed by that signal).
    """

    def __init__(
        self,
        worker: int,
        sessions: Sequence[int],
        released_slots: Sequence[int],
        exitcode: Optional[int],
    ) -> None:
        self.worker = worker
        self.sessions = list(sessions)
        self.released_slots = list(released_slots)
        self.exitcode = exitcode
        super().__init__(
            f"farm worker {worker} died (exitcode={exitcode}); "
            f"released {len(self.released_slots)} in-flight ring slot(s), "
            f"lost sessions {self.sessions}"
        )


class DecodeFarm:
    """N supervised sessions sharded over W workers.

    Parameters
    ----------
    specs:
        The sessions to place (:class:`~repro.farm.config.SessionSpec`),
        distributed round-robin in session-id order.
    farm:
        :class:`~repro.farm.config.FarmConfig` (``None`` = defaults).
    tracer:
        Optional tracer; farm-level counters/gauges land under the
        ``farm.*`` taxonomy families.
    backend:
        ``"process"`` (default) or ``"inline"`` (same scheduling, no
        processes -- the equivalence oracle).
    """

    def __init__(
        self,
        specs: Sequence[SessionSpec],
        farm: Optional[FarmConfig] = None,
        tracer=None,
        backend: str = "process",
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"unknown farm backend {backend!r} (allowed: {_BACKENDS})")
        specs = sorted(specs, key=lambda s: s.session_id)
        sids = [s.session_id for s in specs]
        if len(set(sids)) != len(sids):
            raise ValueError("session ids must be unique")
        if not specs:
            raise ValueError("a farm needs at least one session")
        self.config = farm or FarmConfig()
        self.backend = backend
        self.tracer = as_tracer(tracer)
        self._specs: Dict[int, SessionSpec] = {s.session_id: s for s in specs}
        self._placement: Dict[int, int] = {
            s.session_id: i % self.config.n_workers for i, s in enumerate(specs)
        }
        self._dirty_workers: Set[int] = set()
        self._pump_seq = 0
        self._outstanding_pumps: Dict[int, int] = {
            w: 0 for w in range(self.config.n_workers)
        }
        self._closed = False
        self._finished: Dict[int, bool] = {}

        #: Full per-session frame streams, in emission order.
        self.frames: Dict[int, List[StreamFrame]] = {sid: [] for sid in sids}
        #: Per-session stats dicts (populated by :meth:`finish`).
        self.session_stats: Dict[int, Dict[str, int]] = {}
        #: Per-session health histories (populated by :meth:`finish`).
        self.session_health: Dict[int, HealthHistory] = {}
        #: Per-worker busy fraction (populated when workers stop).
        self.worker_utilization: Dict[int, float] = {}
        #: Windows gated through a cross-session batch (lifetime).
        self.batched_windows = 0
        #: Feeds that blocked on a full ring (the backpressure signal
        #: consumers such as the gateway watch; mirrors
        #: ``farm.slot_waits``).
        self.slot_waits = 0
        self._fresh: Dict[int, List[StreamFrame]] = {}
        self._drained: Dict[int, List[Record]] = {}
        self._inflight_slots: Dict[int, Set[int]] = {
            w: set() for w in range(self.config.n_workers)
        }
        self._stopped_workers: Set[int] = set()
        self._dead_workers: Set[int] = set()

        if backend == "inline":
            self._cores = [
                WorkerCore(self.config.numpy_dtype, coschedule=self.config.coschedule)
                for _ in range(self.config.n_workers)
            ]
            for spec in specs:
                self._cores[self._placement[spec.session_id]].add(spec)
        else:
            ctx = multiprocessing.get_context("fork")
            self._rings: List[ShmRing] = []
            self._cmd_queues = []
            self._result_queue = ctx.Queue()
            self._procs = []
            try:
                for w in range(self.config.n_workers):
                    ring = ShmRing(
                        self.config.ring_slots,
                        self.config.ring_slot_samples,
                        self.config.numpy_dtype,
                    )
                    self._rings.append(ring)
                    cmd_q = ctx.Queue()
                    self._cmd_queues.append(cmd_q)
                    proc = ctx.Process(
                        target=worker_main,
                        args=(
                            w,
                            cmd_q,
                            self._result_queue,
                            ring.name,
                            self.config.ring_slots,
                            self.config.ring_slot_samples,
                            self.config.dtype,
                            self.config.coschedule,
                        ),
                        daemon=True,
                    )
                    proc.start()
                    self._procs.append(proc)
                for spec in specs:
                    self._cmd_queues[self._placement[spec.session_id]].put(("add", spec))
            except Exception:
                self.close()
                raise
        self._count(C.FARM_SESSIONS_OPENED, len(specs))
        self._gauge(G.FARM_SESSIONS_LIVE, len(self._placement))

    @classmethod
    def from_config(
        cls,
        config,
        *,
        n_sessions: int,
        farm: Optional[FarmConfig] = None,
        session=None,
        window_frames: float = 2.0,
        tracer=None,
        backend: str = "process",
    ) -> "DecodeFarm":
        """Build a farm of *n_sessions* identical sessions from one
        :class:`~repro.sim.network.CbmaConfig`.

        The one construction path from PHY config to farm: each
        session gets the same config (ids ``0..n_sessions-1``), so all
        sessions on a worker share one memoised template bank and the
        cross-session batched gate engages.  *session* is the shared
        :class:`~repro.receiver.session.SessionConfig` policy.
        """
        if n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        specs = [
            SessionSpec(
                session_id=i,
                config=config,
                session=session,
                window_frames=window_frames,
            )
            for i in range(n_sessions)
        ]
        return cls(specs, farm=farm, tracer=tracer, backend=backend)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def session_ids(self) -> List[int]:
        """Sessions currently resident on a worker (sorted)."""
        return sorted(self._placement)

    def worker_of(self, session_id: int) -> int:
        return self._placement[session_id]

    def _pick_worker(self) -> int:
        """Least-loaded live worker (lowest index on ties)."""
        live = [
            w for w in range(self.config.n_workers) if w not in self._dead_workers
        ]
        if not live:
            raise RuntimeError("no live workers left in the farm")
        loads = {w: 0 for w in live}
        for placed in self._placement.values():
            if placed in loads:
                loads[placed] += 1
        return min(live, key=lambda w: (loads[w], w))

    # ------------------------------------------------------------------
    # Dynamic membership (the gateway's attach/detach surface)
    # ------------------------------------------------------------------

    def add_session(self, spec: SessionSpec, worker: Optional[int] = None) -> int:
        """Place a new session on a live farm; returns its worker.

        Unlike construction-time placement this is incremental:
        *worker* defaults to the least-loaded live worker, so streams
        arriving one at a time still spread evenly.
        """
        self._check_open()
        sid = spec.session_id
        if sid in self._placement:
            raise ValueError(f"session {sid} is already live")
        if worker is None:
            worker = self._pick_worker()
        if not 0 <= worker < self.config.n_workers:
            raise ValueError(f"worker {worker} out of range")
        if worker in self._dead_workers:
            raise ValueError(f"worker {worker} is dead")
        self._specs[sid] = spec
        if self.backend == "inline":
            self._cores[worker].add(spec)
        else:
            self._cmd_queues[worker].put(("add", spec))
        self._placement[sid] = worker
        self.frames.setdefault(sid, [])
        self._count(C.FARM_SESSIONS_OPENED)
        self._gauge(G.FARM_SESSIONS_LIVE, len(self._placement))
        return worker

    def finish_session(self, session_id: int) -> List[StreamFrame]:
        """Finish one session without stopping the farm.

        Flushes outstanding cycles first (so the tail sees every fed
        chunk), ends the session on its worker, records its stats and
        health history, and returns the frames finalised since the
        last harvest -- the per-session analogue of :meth:`finish`.
        """
        self._check_open()
        if session_id not in self._placement:
            raise KeyError(f"session {session_id} is not live")
        if self._dirty_workers:
            for sid, frames in self.pump(wait=True).items():
                self._fresh.setdefault(sid, []).extend(frames)
        worker = self._placement[session_id]
        if self.backend == "inline":
            frames, stats, history = self._cores[worker].finish(session_id)
            self._collect(session_id, frames)
            self.session_stats[session_id] = stats
            self.session_health[session_id] = history
        else:
            self._cmd_queues[worker].put(("finish", session_id))
            while not self._finished.get(session_id):
                self._harvest(block=True)
        del self._placement[session_id]
        self._count(C.FARM_SESSIONS_CLOSED)
        self._gauge(G.FARM_SESSIONS_LIVE, len(self._placement))
        return self._fresh.pop(session_id, [])

    # ------------------------------------------------------------------
    # The data path
    # ------------------------------------------------------------------

    def feed(self, session_id: int, chunk: np.ndarray) -> None:
        """Ship *chunk* to *session_id*'s worker (buffering only).

        The chunk is written into the worker's shared-memory ring --
        split across slots when larger than one -- and the worker
        ingests it into the session's buffer.  No windows are decoded
        until :meth:`pump`.  Blocks only when every ring slot is in
        flight (``farm.slot_waits``).
        """
        self._check_open()
        worker = self._placement[session_id]
        x = np.asarray(chunk)
        if x.ndim != 1:
            raise ValueError(f"farm feed requires 1-D sample chunks, got ndim={x.ndim}")
        self._count(C.FARM_CHUNKS)
        if self.backend == "inline":
            self._cores[worker].ingest(session_id, x)
        else:
            ring = self._rings[worker]
            for lo in range(0, x.size, ring.slot_samples) or [0]:
                piece = x[lo : lo + ring.slot_samples]
                while ring.free_slots == 0:
                    self.slot_waits += 1
                    self._count(C.FARM_SLOT_WAITS)
                    self._harvest(block=True)
                slot = ring.claim()
                n = ring.write(slot, piece)
                self._inflight_slots[worker].add(slot)
                self._cmd_queues[worker].put(("feed", session_id, slot, n))
            self._gauge(G.FARM_RING_OCCUPANCY, ring.occupancy)
        self._dirty_workers.add(worker)

    def pump(self, wait: bool = True) -> Dict[int, List[StreamFrame]]:
        """Run one co-scheduled decode cycle on every dirty worker.

        With ``wait=True`` (default) blocks until every outstanding
        cycle -- including earlier ``wait=False`` ones -- has reported,
        and returns the newly finalised frames per session.  With
        ``wait=False`` the cycle runs in the background; harvest its
        frames later via :meth:`poll`, a waiting :meth:`pump`, or
        :meth:`finish`.
        """
        self._check_open()
        dirty = sorted(self._dirty_workers - self._dead_workers)
        self._dirty_workers.clear()
        if self.backend == "inline":
            for worker in dirty:
                core = self._cores[worker]
                before = core.batched_windows
                for sid, frames in core.pump():
                    self._collect(sid, frames)
                self._record_batched(core.batched_windows - before)
            return self._take_fresh()
        for worker in dirty:
            self._pump_seq += 1
            self._cmd_queues[worker].put(("pump", self._pump_seq))
            self._outstanding_pumps[worker] += 1
        self._gauge(
            G.FARM_QUEUE_DEPTH, sum(self._outstanding_pumps.values())
        )
        if wait:
            while any(self._outstanding_pumps.values()):
                self._harvest(block=True)
        else:
            self._harvest_available()
        return self._take_fresh()

    def poll(self) -> Dict[int, List[StreamFrame]]:
        """Harvest whatever workers have reported without blocking."""
        self._check_open()
        if self.backend == "process":
            self._harvest_available()
        return self._take_fresh()

    def finish(self) -> Dict[int, List[StreamFrame]]:
        """Finish every session, stop the workers, return tail frames.

        Flushes outstanding cycles first (worker queues are FIFO), then
        ends each session -- the truncated tail window plus the ordered
        flush of held-back frames -- and collects its final stats and
        health history into :attr:`session_stats` / :attr:`session_health`.
        The farm is closed afterwards; full streams stay in
        :attr:`frames`.
        """
        self._check_open()
        if self._dirty_workers:
            self.pump(wait=True)
        tails: Dict[int, List[StreamFrame]] = {}
        if self.backend == "inline":
            for sid in self.session_ids:
                frames, stats, history = self._cores[self._placement[sid]].finish(sid)
                self._collect(sid, frames)
                self.session_stats[sid] = stats
                self.session_health[sid] = history
                tails[sid] = frames
            for w, core in enumerate(self._cores):
                self.worker_utilization[w] = 1.0
            self._count(C.FARM_SESSIONS_CLOSED, len(tails))
            self._gauge(G.FARM_SESSIONS_LIVE, 0)
            self._placement.clear()
            self._closed = True
            return tails
        pending = list(self.session_ids)
        for sid in pending:
            self._cmd_queues[self._placement[sid]].put(("finish", sid))
        while not all(self._finished.get(sid) for sid in pending):
            self._harvest(block=True)
        for sid in pending:
            tails[sid] = self._fresh.pop(sid, [])
            del self._placement[sid]
        self._count(C.FARM_SESSIONS_CLOSED, len(pending))
        self._gauge(G.FARM_SESSIONS_LIVE, 0)
        self._shutdown_workers()
        self._closed = True
        return tails

    # ------------------------------------------------------------------
    # Rebalancing (checkpoint/restore as the primitive)
    # ------------------------------------------------------------------

    def drain(self, session_id: int) -> List[Record]:
        """Lift a session off its worker as checkpoint records.

        The session is checkpointed (position, dedup, health machine,
        pending frames) and removed.  Resume it with :meth:`restore`
        and re-feed the sample stream from the checkpoint's
        ``position`` -- buffered-but-unprocessed samples are *not*
        part of the records, exactly like an on-disk checkpoint.
        """
        self._check_open()
        worker = self._placement[session_id]
        if self.backend == "inline":
            records = self._cores[worker].drain(session_id)
        else:
            self._cmd_queues[worker].put(("drain", session_id))
            while session_id not in self._drained:
                self._harvest(block=True)
            records = self._drained.pop(session_id)
        del self._placement[session_id]
        self._count(C.FARM_SESSIONS_CLOSED)
        self._gauge(G.FARM_SESSIONS_LIVE, len(self._placement))
        return records

    def restore(
        self, session_id: int, records: List[Record], worker: Optional[int] = None
    ) -> None:
        """Resume a drained session on *worker* (default: round-robin)."""
        self._check_open()
        if session_id in self._placement:
            raise ValueError(f"session {session_id} is already live")
        spec = self._specs[session_id]
        if worker is None:
            worker = self._pick_worker()
        if not 0 <= worker < self.config.n_workers:
            raise ValueError(f"worker {worker} out of range")
        if worker in self._dead_workers:
            raise ValueError(f"worker {worker} is dead")
        if self.backend == "inline":
            self._cores[worker].restore(spec, records)
        else:
            self._cmd_queues[worker].put(("restore", spec, records))
        self._placement[session_id] = worker
        self.frames.setdefault(session_id, [])
        self._count(C.FARM_SESSIONS_OPENED)
        self._gauge(G.FARM_SESSIONS_LIVE, len(self._placement))

    def migrate(self, session_id: int, worker: int) -> List[Record]:
        """Drain a session and resume it on another worker.

        Returns the checkpoint records (the caller re-feeds the stream
        from their ``position``).  Bit-identical continuation is the
        checkpoint/restore guarantee, so rebalancing never changes
        decode output.
        """
        records = self.drain(session_id)
        self.restore(session_id, records, worker=worker)
        self._count(C.FARM_MIGRATIONS)
        return records

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Tear the farm down without finishing sessions (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.backend == "process":
            for proc in getattr(self, "_procs", []):
                if proc.is_alive():
                    proc.terminate()
            for proc in getattr(self, "_procs", []):
                proc.join(timeout=5.0)
            for ring in getattr(self, "_rings", []):
                ring.close()
                ring.unlink()

    def __enter__(self) -> "DecodeFarm":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Result harvesting (process backend)
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("farm is closed; create a new DecodeFarm")

    def _collect(self, session_id: int, frames: List[StreamFrame]) -> None:
        if not frames:
            return
        self.frames[session_id].extend(frames)
        self._fresh.setdefault(session_id, []).extend(frames)
        self._count(C.FARM_FRAMES, len(frames))

    def _take_fresh(self) -> Dict[int, List[StreamFrame]]:
        fresh = {sid: frames for sid, frames in self._fresh.items() if frames}
        self._fresh = {}
        return fresh

    def _record_batched(self, n: int) -> None:
        if n:
            self.batched_windows += n
            self._count(C.FARM_BATCHED_WINDOWS, n)

    def _harvest_available(self) -> None:
        while True:
            try:
                msg = self._result_queue.get_nowait()
            except Exception:
                return
            self._dispatch(msg)

    def _harvest(self, block: bool) -> None:
        if not block:
            self._dispatch(self._result_queue.get(timeout=0.0))
            return
        waited = 0.0
        while True:
            try:
                msg = self._result_queue.get(timeout=_DEATH_POLL_S)
            except queue.Empty:
                self._check_worker_liveness()
                waited += _DEATH_POLL_S
                if waited >= _HARVEST_TIMEOUT_S:
                    raise RuntimeError(
                        f"farm workers produced no result for {_HARVEST_TIMEOUT_S}s"
                    )
                continue
            self._dispatch(msg)
            return

    def _check_worker_liveness(self) -> None:
        """Surface dead workers as :class:`WorkerCrash` (slots reclaimed).

        Only consulted once the result queue has drained empty, so a
        worker that exited normally has had its ``stopped`` reply
        dispatched (the queue feeder flushes before process exit) and
        is skipped here.
        """
        for w, proc in enumerate(self._procs):
            if w in self._stopped_workers or w in self._dead_workers:
                continue
            if proc.is_alive():
                continue
            # A final drain in case the exit raced the Empty poll.
            self._harvest_available()
            if w in self._stopped_workers:
                continue
            self._recover_worker(w, proc.exitcode)

    def _recover_worker(self, worker: int, exitcode: Optional[int]) -> None:
        ring = self._rings[worker]
        leaked = sorted(self._inflight_slots[worker])
        for slot in leaked:
            ring.release(slot)
        self._inflight_slots[worker].clear()
        lost = sorted(
            sid for sid, placed in self._placement.items() if placed == worker
        )
        for sid in lost:
            del self._placement[sid]
        self._outstanding_pumps[worker] = 0
        self._dirty_workers.discard(worker)
        self._dead_workers.add(worker)
        self._count(C.FARM_SESSIONS_CLOSED, len(lost))
        self._gauge(G.FARM_SESSIONS_LIVE, len(self._placement))
        self._gauge(G.FARM_RING_OCCUPANCY, ring.occupancy)
        raise WorkerCrash(worker, lost, leaked, exitcode)

    def _dispatch(self, msg: Tuple[object, ...]) -> None:
        worker, tag = msg[0], msg[1]
        if tag == "free":
            self._inflight_slots[worker].discard(msg[2])
            self._rings[worker].release(msg[2])
        elif tag == "pumped":
            _seq, results, batched = msg[2], msg[3], msg[4]
            self._outstanding_pumps[worker] -= 1
            for sid, frames in results:
                self._collect(sid, frames)
            self._record_batched(batched)
        elif tag == "finished":
            sid, frames, stats, history = msg[2], msg[3], msg[4], msg[5]
            self._collect(sid, frames)
            self.session_stats[sid] = stats
            self.session_health[sid] = history
            self._finished[sid] = True
        elif tag == "drained":
            self._drained[msg[2]] = msg[3]
        elif tag == "stopped":
            busy, wall = msg[2], msg[3]
            util = busy / wall if wall > 0 else 0.0
            self.worker_utilization[worker] = util
            self._stopped_workers.add(worker)
            self._gauge(G.FARM_WORKER_UTILIZATION, util)
        elif tag == "error":
            raise RuntimeError(f"farm worker {worker} failed: {msg[2]}")
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown farm worker reply {tag!r}")

    def _shutdown_workers(self) -> None:
        for w, cmd_q in enumerate(self._cmd_queues):
            if w not in self._dead_workers:
                cmd_q.put(("stop",))
        expected = len(self._procs) - len(self._dead_workers)
        while len(self._stopped_workers) < expected:
            self._harvest(block=True)
        for proc in self._procs:
            proc.join(timeout=5.0)
        for ring in self._rings:
            ring.close()
            ring.unlink()

    def _count(self, counter: str, n: int = 1) -> None:
        if self.tracer.enabled:
            self.tracer.count(counter, n)

    def _gauge(self, gauge: str, value: float) -> None:
        if self.tracer.enabled:
            self.tracer.gauge(gauge, value)
