"""Farm worker: co-scheduled session execution on one process.

:class:`WorkerCore` is the scheduling logic, deliberately free of any
process machinery: the process backend runs it behind a command queue
(:func:`worker_main`), and the inline backend -- the equivalence
oracle and the 1-core fallback -- calls the same methods directly in
the parent.  One code path, two transports, so the backends cannot
drift apart.

The co-scheduled pump is where cross-session batching happens.  Each
pump cycle:

1. every dirty session exposes its next complete window
   (:meth:`SessionSupervisor.peek_window`);
2. windows are grouped by (template bank, window length, detector
   threshold) -- sessions built from the same
   :class:`~repro.sim.network.CbmaConfig` share a memoised bank, so
   their groups merge;
3. each group of >= 2 windows runs **one** stacked pre-gate FFT
   (:meth:`StreamingReceiver.windows_are_live`, bit-identical per row
   to the per-window gate) and primes each session's gate with its
   row's decision;
4. sessions then pump exactly one window each, in session-id order,
   and the cycle repeats until no session has a complete window (or
   every session hit its ``max_windows_per_feed`` budget);
5. one housekeeping pump per session runs the backlog shedding, buffer
   trim and gauges -- equivalent to ``feed``'s ordering because
   shedding happens only after the walk drained everything it was
   allowed to.

Because sessions are independent and the batched gate decision is
bit-identical to the sequential one, the frames and stats each session
produces are byte-identical to running it alone through
``SessionSupervisor.feed`` with the same chunk cadence.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.farm.config import SessionSpec
from repro.farm.ring import ShmRing
from repro.receiver.session import SessionSupervisor
from repro.receiver.streaming import StreamFrame, StreamingReceiver

__all__ = ["WorkerCore", "worker_main", "Record"]

#: One checkpoint record, as produced by
#: :meth:`SessionSupervisor.checkpoint_records` -- the migration
#: currency between farm and workers.
Record = Dict[str, object]

#: ``(window_index, health state)`` entries of a session's history.
HealthHistory = List[Tuple[int, str]]

#: Command-poll interval of :func:`worker_main`.  The loop never blocks
#: longer than this: on every Empty it re-checks that the parent is
#: still alive, so a crashed farm cannot strand its workers forever.
_CMD_POLL_S = 1.0


class WorkerCore:
    """Sessions resident on one worker, plus the co-scheduled pump."""

    def __init__(self, dtype: "np.typing.DTypeLike", coschedule: bool = True) -> None:
        self.dtype = np.dtype(dtype)
        self.coschedule = bool(coschedule)
        self.sessions: Dict[int, SessionSupervisor] = {}
        self._dirty: Set[int] = set()
        #: Windows gated through a cross-session batch (lifetime total).
        self.batched_windows = 0

    # --- session lifecycle ----------------------------------------------

    def add(self, spec: SessionSpec) -> None:
        if spec.session_id in self.sessions:
            raise ValueError(f"session {spec.session_id} already on this worker")
        self.sessions[spec.session_id] = SessionSupervisor.from_config(
            spec.config,
            session=spec.session,
            window_frames=spec.window_frames,
            dtype=self.dtype,
        )

    def restore(self, spec: SessionSpec, records: List[Record]) -> None:
        """Resume a drained session from its checkpoint records."""
        if spec.session_id in self.sessions:
            raise ValueError(f"session {spec.session_id} already on this worker")
        streaming = StreamingReceiver.from_config(
            spec.config, window_frames=spec.window_frames, dtype=self.dtype
        )
        self.sessions[spec.session_id] = SessionSupervisor.from_checkpoint_records(
            records, streaming, config=spec.session,
            source=f"migration records for session {spec.session_id}",
        )

    def drain(self, session_id: int) -> List[Record]:
        """Checkpoint a session's state and remove it from this worker.

        The records are the migration payload: re-create the session
        elsewhere with :meth:`restore` and re-feed the stream from its
        checkpointed ``position``.
        """
        session = self.sessions.pop(session_id)
        self._dirty.discard(session_id)
        return session.checkpoint_records()

    def finish(self, session_id: int) -> Tuple[List[StreamFrame], Dict[str, int], HealthHistory]:
        """End one session; returns (tail frames, stats, health history)."""
        session = self.sessions.pop(session_id)
        self._dirty.discard(session_id)
        frames = session.finish()
        return frames, dict(session.stats), list(session.health_history)

    # --- the data path --------------------------------------------------

    def ingest(self, session_id: int, chunk: np.ndarray) -> None:
        """Buffer *chunk* into one session (no window processing)."""
        self.sessions[session_id].ingest(chunk)
        self._dirty.add(session_id)

    def pump(self) -> List[Tuple[int, List[StreamFrame]]]:
        """Co-scheduled pump of every dirty session.

        Returns ``(session_id, frames)`` pairs in session-id order;
        the dirty set is cleared.
        """
        sids = sorted(self._dirty)
        self._dirty.clear()
        emitted: Dict[int, List[StreamFrame]] = {sid: [] for sid in sids}
        counts = {sid: 0 for sid in sids}
        while True:
            ready: List[Tuple[int, np.ndarray]] = []
            for sid in sids:
                session = self.sessions[sid]
                limit = session.config.max_windows_per_feed
                if limit is not None and counts[sid] >= limit:
                    continue
                window = session.peek_window()
                if window is not None:
                    ready.append((sid, window))
            if not ready:
                break
            if self.coschedule and len(ready) >= 2:
                self._prime_batched(ready)
            for sid, _window in ready:
                emitted[sid].extend(
                    self.sessions[sid].pump(max_windows=1, housekeep=False)
                )
                counts[sid] += 1
        for sid in sids:
            emitted[sid].extend(self.sessions[sid].pump(max_windows=0))
        return [(sid, emitted[sid]) for sid in sids]

    def _prime_batched(self, ready: List[Tuple[int, np.ndarray]]) -> None:
        """Gate groups of same-geometry windows with one stacked FFT."""
        groups: Dict[Tuple[int, int, float], List[Tuple[int, np.ndarray]]] = {}
        for sid, window in ready:
            detector = self.sessions[sid].streaming.receiver.user_detector
            if detector.bank is None:
                continue  # ragged code book: per-window gate
            key = (id(detector.bank), window.size, detector.threshold)
            groups.setdefault(key, []).append((sid, window))
        for group in groups.values():
            if len(group) < 2:
                continue
            stack = np.stack([window for _sid, window in group])
            live = self.sessions[group[0][0]].streaming.windows_are_live(stack)
            for (sid, _window), decision in zip(group, live):
                self.sessions[sid].prime_gate(bool(decision))
            self.batched_windows += len(group)


def worker_main(
    worker_id: int,
    cmd_queue: "multiprocessing.queues.Queue[Tuple[object, ...]]",
    result_queue: "multiprocessing.queues.Queue[Tuple[object, ...]]",
    ring_name: str,
    ring_slots: int,
    ring_slot_samples: int,
    dtype_name: str,
    coschedule: bool,
) -> None:
    """Process entry point: drive a :class:`WorkerCore` from a queue.

    Commands arrive as tagged tuples; every feed is acknowledged with
    ``("free", slot)`` the moment the session copied the slot, and any
    exception is reported as ``("error", repr)`` before the worker
    exits -- a farm never hangs on a dead worker silently.  The queue
    is polled with a :data:`_CMD_POLL_S` timeout rather than blocked on
    forever: each idle tick re-checks the parent process, so a worker
    orphaned by a crashed farm shuts itself down instead of waiting on
    a queue nobody will ever fill again (the symmetric guarantee --
    a dead farm never strands a live worker).

    Replies per command (all tagged with *worker_id*):

    - ``("add"|"restore", sid, ...)`` -> no reply (errors only)
    - ``("feed", sid, slot, n)``      -> ``("free", slot)``
    - ``("pump", seq)``               -> ``("pumped", seq, results, batched)``
    - ``("finish", sid)``             -> ``("finished", sid, frames, stats, history)``
    - ``("drain", sid)``              -> ``("drained", sid, records)``
    - ``("stop",)``                   -> ``("stopped", busy_s, wall_s)``
    """
    ring = ShmRing.attach(ring_name, ring_slots, ring_slot_samples, dtype_name)
    core = WorkerCore(dtype_name, coschedule=coschedule)
    started = time.perf_counter()
    busy = 0.0
    try:
        while True:
            try:
                cmd = cmd_queue.get(timeout=_CMD_POLL_S)
            except queue.Empty:
                parent = multiprocessing.parent_process()
                if parent is not None and not parent.is_alive():
                    break  # orphaned: the farm died without sending "stop"
                continue
            t0 = time.perf_counter()
            op = cmd[0]
            if op == "stop":
                busy += time.perf_counter() - t0
                wall = time.perf_counter() - started
                result_queue.put((worker_id, "stopped", busy, wall))
                break
            elif op == "add":
                core.add(cmd[1])
            elif op == "restore":
                core.restore(cmd[1], cmd[2])
            elif op == "feed":
                _op, sid, slot, n = cmd
                core.ingest(sid, ring.view(slot, n))
                result_queue.put((worker_id, "free", slot))
            elif op == "pump":
                before = core.batched_windows
                results = core.pump()
                result_queue.put(
                    (worker_id, "pumped", cmd[1], results, core.batched_windows - before)
                )
            elif op == "finish":
                frames, stats, history = core.finish(cmd[1])
                result_queue.put((worker_id, "finished", cmd[1], frames, stats, history))
            elif op == "drain":
                result_queue.put((worker_id, "drained", cmd[1], core.drain(cmd[1])))
            else:
                raise ValueError(f"unknown farm worker command {op!r}")
            busy += time.perf_counter() - t0
    except Exception as exc:  # pragma: no cover - exercised via process backend
        result_queue.put((worker_id, "error", repr(exc)))
    finally:
        ring.close()
