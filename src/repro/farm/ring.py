"""Shared-memory sample ring: zero-copy IQ transport to workers.

Pickling a multi-megabyte complex chunk per feed would serialise the
whole sample stream through a pipe.  Instead each worker owns one
:class:`ShmRing` -- a ``multiprocessing.shared_memory`` slab carved
into fixed-size slots.  The parent writes a chunk into a free slot and
sends only ``(slot, n_samples)`` over the command queue; the worker
maps the same slab and hands the session a numpy **view** of the slot.
``SessionSupervisor.ingest`` copies the view into its own buffer (its
documented contract), so the slot is free for reuse the moment the
worker acknowledges the feed.

Slot lifecycle (parent-owned free list, no shared locks):

1. parent: ``claim()`` a free slot index, ``write(slot, chunk)``;
2. parent -> worker: ``("feed", sid, slot, n)`` over the command queue;
3. worker: ``view(slot, n)`` -> ``session.ingest`` (copies);
4. worker -> parent: ``("free", slot)`` over the result queue;
5. parent: ``release(slot)`` returns it to the free list.

When no slot is free the parent blocks harvesting worker results
(that is the farm's ingest backpressure, counted under
``farm.slot_waits``).
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import List

import numpy as np

__all__ = ["ShmRing"]


class ShmRing:
    """One worker's shared-memory slot ring.

    Create in the parent (allocates the segment), :meth:`attach` in
    the worker (maps the same segment by name).  Only the parent may
    :meth:`unlink`; workers just :meth:`close` their mapping.
    """

    def __init__(self, slots: int, slot_samples: int, dtype: "np.typing.DTypeLike") -> None:
        self.slots = int(slots)
        self.slot_samples = int(slot_samples)
        self.dtype = np.dtype(dtype)
        nbytes = self.slots * self.slot_samples * self.dtype.itemsize
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._owner = True
        self._grid = np.ndarray(
            (self.slots, self.slot_samples), dtype=self.dtype, buffer=self._shm.buf
        )
        self._free: List[int] = list(range(self.slots))

    @property
    def name(self) -> str:
        """OS name of the segment (workers attach by this)."""
        return self._shm.name

    @property
    def free_slots(self) -> int:
        return len(self._free)

    @property
    def occupancy(self) -> int:
        """Slots currently claimed (in flight to a worker)."""
        return self.slots - len(self._free)

    @classmethod
    def attach(cls, name: str, slots: int, slot_samples: int, dtype: "np.typing.DTypeLike") -> "ShmRing":
        """Map an existing ring by name (worker side)."""
        ring = cls.__new__(cls)
        ring.slots = int(slots)
        ring.slot_samples = int(slot_samples)
        ring.dtype = np.dtype(dtype)
        ring._shm = shared_memory.SharedMemory(name=name)
        ring._owner = False
        ring._grid = np.ndarray(
            (ring.slots, ring.slot_samples), dtype=ring.dtype, buffer=ring._shm.buf
        )
        ring._free = []
        return ring

    # --- parent side ----------------------------------------------------

    def claim(self) -> int:
        """Take a free slot index; raises if none (caller harvests first)."""
        if not self._free:
            raise RuntimeError("no free ring slot (harvest worker results first)")
        return self._free.pop()

    def write(self, slot: int, chunk: np.ndarray) -> int:
        """Copy *chunk* (1-D, <= slot_samples) into *slot*; returns n."""
        n = int(chunk.size)
        if n > self.slot_samples:
            raise ValueError(
                f"chunk of {n} samples exceeds slot size {self.slot_samples}"
            )
        self._grid[slot, :n] = chunk
        return n

    def release(self, slot: int) -> None:
        """Return a worker-acknowledged slot to the free list."""
        self._free.append(int(slot))

    # --- worker side ----------------------------------------------------

    def view(self, slot: int, n: int) -> np.ndarray:
        """Zero-copy view of the first *n* samples of *slot*.

        Valid only until the slot is freed; consumers must copy
        (``SessionSupervisor.ingest`` does).
        """
        return self._grid[slot, :n]

    # --- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self._grid = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment (parent only, after workers exited)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass
