"""Parallel decode farm: many supervised sessions, many cores.

Public surface:

- :class:`DecodeFarm` -- shard sessions over a worker pool; the
  construction entry points are ``DecodeFarm(specs, ...)`` and
  :meth:`DecodeFarm.from_config`.
- :class:`FarmConfig` / :class:`SessionSpec` -- the picklable
  configuration records.
- :class:`WorkerCore` and :class:`ShmRing` -- the scheduling core and
  the shared-memory transport, exported for tests and for embedding
  the co-scheduler without the process pool.
"""

from repro.farm.config import FarmConfig, SessionSpec
from repro.farm.farm import DecodeFarm, WorkerCrash
from repro.farm.ring import ShmRing
from repro.farm.worker import WorkerCore

__all__ = [
    "DecodeFarm",
    "FarmConfig",
    "SessionSpec",
    "ShmRing",
    "WorkerCrash",
    "WorkerCore",
]
