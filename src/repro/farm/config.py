"""Construction-time configuration of the parallel decode farm.

Two small, picklable records cross the process boundary at startup:

- :class:`SessionSpec` -- everything a worker needs to (re)build one
  supervised session: its id, the :class:`~repro.sim.network.CbmaConfig`
  that pins the PHY/code book, and the optional supervision policy.
  IQ samples never travel this way (they go through the shared-memory
  ring); specs do, once, at placement time.
- :class:`FarmConfig` -- the farm's own knobs: worker count, ring
  geometry, buffer dtype and whether cross-session gate batching is
  enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.receiver.session import SessionConfig
from repro.sim.network import CbmaConfig

__all__ = ["FarmConfig", "SessionSpec"]

_FARM_DTYPES = ("complex128", "complex64")


@dataclass(frozen=True)
class SessionSpec:
    """One session to place on the farm.

    Attributes
    ----------
    session_id:
        Unique integer id; also the key frames and stats come back
        under.
    config:
        The :class:`~repro.sim.network.CbmaConfig` the worker hands to
        :meth:`SessionSupervisor.from_config`.  Sessions whose configs
        produce the same code book and frame format share one memoised
        :class:`~repro.utils.correlation_batch.TemplateBank` inside a
        worker, which is what makes cross-session gate batching kick
        in.
    session:
        Optional :class:`~repro.receiver.session.SessionConfig`
        supervision policy (``None`` = defaults).
    window_frames:
        Window length passed through to the streaming receiver.
    """

    session_id: int
    config: CbmaConfig
    session: Optional[SessionConfig] = None
    window_frames: float = 2.0

    def __post_init__(self) -> None:
        if self.session_id < 0:
            raise ValueError("session_id must be >= 0")


@dataclass(frozen=True)
class FarmConfig:
    """Tuning knobs of a :class:`~repro.farm.DecodeFarm`.

    Attributes
    ----------
    n_workers:
        Worker processes (or inline worker cores).
    ring_slots:
        Shared-memory ring slots per worker.  The free-slot pool is
        the farm's ingest backpressure: when every slot of a worker's
        ring holds an unconsumed chunk, ``feed`` blocks (counted under
        ``farm.slot_waits``) until the worker frees one.
    ring_slot_samples:
        Samples per ring slot.  Chunks larger than one slot are split
        across slots -- safe because session decode output is
        invariant to chunking cadence -- but per-chunk stats
        (``session.quarantined``) then follow the split cadence, so
        size slots to your chunk size when comparing stats against a
        sequential run.
    dtype:
        Complex dtype of the sample path (ring slots, session ingest
        buffers, the pre-gate): ``"complex128"`` (default, the decode
        oracle) or ``"complex64"`` (the opt-in fast path -- half the
        shared-memory bandwidth; decode itself still runs complex128).
    coschedule:
        Batch the pre-gate FFT across co-resident sessions that share
        a template bank and window length.  Bit-identical to per-window
        gating (the batched kernel computes rows independently); off
        turns the farm into plain per-session round-robin.
    """

    n_workers: int = 2
    ring_slots: int = 8
    ring_slot_samples: int = 1 << 16
    dtype: str = "complex128"
    coschedule: bool = True

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.ring_slots < 2:
            raise ValueError("ring_slots must be >= 2 (one in flight, one filling)")
        if self.ring_slot_samples < 1:
            raise ValueError("ring_slot_samples must be >= 1")
        if str(self.dtype) not in _FARM_DTYPES:
            raise ValueError(
                f"dtype must be one of {_FARM_DTYPES}, got {self.dtype!r}"
            )

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)
