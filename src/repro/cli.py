"""Command-line interface for the CBMA reproduction.

Usage (after ``pip install -e .``)::

    python -m repro run --tags 5 --rounds 100
    python -m repro run --tags 5 --power-control
    python -m repro experiment fig8a --rounds 40
    python -m repro field --resolution 41
    python -m repro profile --tags 10 --rounds 20
    python -m repro profile --tags 4 --rounds 5 --json
    python -m repro bench --quick --output BENCH_0008.json
    python -m repro bench --tier farm --quick
    python -m repro macro run --tags 100000 --slots 200
    python -m repro macro calibrate --tiny --output /tmp/tiny_surface.json
    python -m repro macro validate
    python -m repro soak --windows 500 --campaigns 3 --artifact shrunk.json
    python -m repro gateway soak --streams 50 --rounds 12 --migrate-round 5
    python -m repro trace record out.json --tags 3 --rounds 50
    python -m repro trace replay out.json --seed 9

``experiment`` accepts any paper artefact id: table1, table2, fig8a,
fig8b, fig8c, fig9a, fig9b, fig9c, fig10, fig11, fig12, userdetect,
headline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.ascii_plots import heatmap, line_plot
from repro.analysis.tables import format_percent, render_series, render_table
from repro.channel.geometry import Deployment
from repro.mac.power_control import PowerController
from repro.sim.experiments import (
    fig5_signal_field,
    fig8a_distance,
    fig8b_power,
    fig8c_preamble,
    fig9a_bitrate,
    fig9b_pn_codes,
    fig9c_power_control,
    fig10_deployment_cdfs,
    fig11_asynchrony,
    fig12_working_conditions,
    table1_system_comparison,
    table2_power_difference,
    user_detection_accuracy,
)
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.sim.trace import ChannelTrace, record_trace, replay_trace

__all__ = ["main"]

_EXPERIMENTS = {
    "table1": lambda rounds: table1_system_comparison(rounds=rounds),
    "table2": lambda rounds: table2_power_difference(rounds=rounds),
    "fig8a": lambda rounds: fig8a_distance(
        distances_m=tuple(d / 2 for d in range(1, 9)), rounds=rounds
    ),
    "fig8b": lambda rounds: fig8b_power(rounds=rounds),
    "fig8c": lambda rounds: fig8c_preamble(rounds=rounds),
    "fig9a": lambda rounds: fig9a_bitrate(rounds=rounds),
    "fig9b": lambda rounds: fig9b_pn_codes(rounds=rounds, n_groups=3),
    "fig9c": lambda rounds: fig9c_power_control(rounds=rounds, n_groups=5),
    "fig10": lambda rounds: fig10_deployment_cdfs(rounds=rounds, n_groups=8),
    "fig11": lambda rounds: fig11_asynchrony(rounds=rounds),
    "fig12": lambda rounds: fig12_working_conditions(rounds=rounds),
    "userdetect": lambda rounds: user_detection_accuracy(n_trials=rounds),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CBMA (ICDCS 2019) reproduction -- simulate, measure, replay.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a quick multi-tag simulation")
    run.add_argument("--tags", type=int, default=5)
    run.add_argument("--rounds", type=int, default=100)
    run.add_argument("--distance", type=float, default=1.0, help="tag-to-RX metres")
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--code-family", default="2nc", help="2nc | gold | kasami | walsh")
    run.add_argument("--code-length", type=int, default=64)
    run.add_argument("--power-control", action="store_true", help="run Algorithm 1 first")

    exp = sub.add_parser("experiment", help="regenerate one paper table/figure")
    exp.add_argument("artefact", choices=sorted([*_EXPERIMENTS, "headline"]))
    exp.add_argument("--rounds", type=int, default=60)

    field = sub.add_parser("field", help="print the Fig. 5 signal-strength field")
    field.add_argument("--resolution", type=int, default=41)

    prof = sub.add_parser(
        "profile", help="trace a simulation and print the stage-level profile"
    )
    prof.add_argument("--tags", type=int, default=4)
    prof.add_argument("--rounds", type=int, default=20)
    prof.add_argument("--distance", type=float, default=1.0, help="tag-to-RX metres")
    prof.add_argument("--seed", type=int, default=7)
    prof.add_argument(
        "--receiver",
        choices=["sic", "standard"],
        default="sic",
        help="receiver pipeline to profile (sic exercises every stage)",
    )
    prof.add_argument(
        "--json",
        action="store_true",
        help="emit the raw JSONL event log (spans, counters, gauges, profile) to stdout",
    )
    prof.add_argument("--trace", metavar="PATH", help="also write the JSONL event log to PATH")

    faults = sub.add_parser(
        "faults", help="inject deployment faults and show the attributed error budget"
    )
    faults.add_argument("--tags", type=int, default=4)
    faults.add_argument("--rounds", type=int, default=30)
    faults.add_argument("--seed", type=int, default=7)
    faults.add_argument("--distance", type=float, default=1.0, help="tag-to-RX metres")
    faults.add_argument("--dropout", type=float, default=0.2, help="per-round tag dropout probability")
    faults.add_argument("--brownout", type=float, default=0.0, help="per-round tag brownout probability")
    faults.add_argument("--ack-loss", type=float, default=0.0, help="per-round downlink ACK loss probability")
    faults.add_argument("--stuck", type=int, default=0, help="number of tags with a stuck impedance switch")
    faults.add_argument(
        "--burst",
        type=float,
        default=-60.0,
        metavar="DBM",
        help="burst-jammer power over the middle third of the run (nan disables)",
    )
    faults.add_argument("--clip", type=float, default=0.0, metavar="AMPL", help="ADC full-scale clip level (0 disables)")
    faults.add_argument(
        "--curve",
        action="store_true",
        help="sweep dropout probability and plot delivery vs fault rate instead",
    )

    soak = sub.add_parser(
        "soak", help="chaos-soak a supervised streaming session under random faults"
    )
    soak.add_argument("--windows", type=int, default=500, help="stream length in hop windows")
    soak.add_argument("--tags", type=int, default=2)
    soak.add_argument("--seed", type=int, default=7)
    soak.add_argument("--campaigns", type=int, default=3, help="randomized fault campaigns to run")
    soak.add_argument(
        "--artifact",
        metavar="PATH",
        help="where to write the shrunken reproducing fault plan on violation",
    )
    soak.add_argument(
        "--no-shrink",
        action="store_true",
        help="report violations without shrinking the fault plan",
    )

    adapt = sub.add_parser("adapt", help="auto-select the spreading factor for a channel")
    adapt.add_argument("--tags", type=int, default=3)
    adapt.add_argument("--distance", type=float, default=2.0)
    adapt.add_argument("--epochs", type=int, default=10)
    adapt.add_argument("--seed", type=int, default=7)

    system = sub.add_parser("system", help="run the full deployment life cycle")
    system.add_argument("--population", type=int, default=12)
    system.add_argument("--group", type=int, default=4)
    system.add_argument("--epochs", type=int, default=12)
    system.add_argument("--rounds", type=int, default=12)
    system.add_argument("--seed", type=int, default=17)
    system.add_argument("--mobility", action="store_true", help="tags drift between epochs")

    rep_p = sub.add_parser("report", help="run all experiments, write a markdown report")
    rep_p.add_argument("--output", default="report.md")
    rep_p.add_argument("--scale", type=float, default=0.25, help="round-count multiplier")

    bench = sub.add_parser(
        "bench", help="micro-benchmark the correlation hot path, write BENCH_*.json"
    )
    bench.add_argument("--quick", action="store_true", help="CI smoke scale (small windows, few reps)")
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument(
        "--tier",
        choices=["micro", "detect", "e2e", "farm", "gateway", "macro", "all"],
        default="all",
        help="workload tier to run (default: all)",
    )
    bench.add_argument("--output", default="BENCH_0008.json", metavar="PATH", help="trajectory file to write")
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed BENCH_*.json to compare against; exits 1 on regression",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        metavar="FACTOR",
        help="fail when an op's p50 exceeds FACTOR x the baseline (default 2.0)",
    )
    bench.add_argument("--json", action="store_true", help="print the report JSON to stdout")

    macro = sub.add_parser(
        "macro", help="fleet-scale simulation on the PHY-calibrated link model"
    )
    macro_sub = macro.add_subparsers(dest="macro_command", required=True)

    def _surface_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--surface",
            default="benchmarks/FER_SURFACE_0001.json",
            metavar="PATH",
            help="FER surface artifact (calibrated+cached if provenance is stale)",
        )
        p.add_argument(
            "--tiny",
            action="store_true",
            help="calibrate a seconds-scale smoke surface in memory instead",
        )

    mcal = macro_sub.add_parser(
        "calibrate", help="sweep the sample-domain PHY into a cached FER surface"
    )
    mcal.add_argument(
        "--output",
        default="benchmarks/FER_SURFACE_0001.json",
        metavar="PATH",
        help="artifact to load-or-calibrate",
    )
    mcal.add_argument("--tiny", action="store_true", help="seconds-scale smoke grid")

    mrun = macro_sub.add_parser("run", help="run one macro fleet and print its stats")
    _surface_args(mrun)
    mrun.add_argument("--tags", type=int, default=10000)
    mrun.add_argument("--slots", type=int, default=200)
    mrun.add_argument(
        "--rate",
        type=float,
        default=0.05,
        help="offered arrivals per tag per slot (0 = saturated)",
    )
    mrun.add_argument("--distance", type=float, default=1.0, help="tag-to-RX metres")
    mrun.add_argument(
        "--backoff", choices=["beb", "fibonacci", "eied", "adaptive"], default="beb"
    )
    mrun.add_argument("--unslotted", action="store_true", help="ALOHA-style access")
    mrun.add_argument("--ack-loss", type=float, default=0.0)
    mrun.add_argument("--seed", type=int, default=7)

    mload = macro_sub.add_parser(
        "load", help="offered-load sweep (delivery/goodput/latency vs rate)"
    )
    _surface_args(mload)
    mload.add_argument("--tags", type=int, default=1000)
    mload.add_argument("--slots", type=int, default=300)
    mload.add_argument(
        "--backoff", choices=["beb", "fibonacci", "eied", "adaptive"], default="beb"
    )
    mload.add_argument("--seed", type=int, default=17)

    mfire = macro_sub.add_parser(
        "fire-ring", help="expanding-event-front spatial stress scenario"
    )
    _surface_args(mfire)
    mfire.add_argument("--tags", type=int, default=10000)
    mfire.add_argument(
        "--backoff", choices=["beb", "fibonacci", "eied", "adaptive"], default="beb"
    )
    mfire.add_argument("--seed", type=int, default=23)

    mval = macro_sub.add_parser(
        "validate",
        help="cross-validate macro vs the sample-domain tier; exit 1 outside tolerance",
    )
    _surface_args(mval)
    mval.add_argument("--seed", type=int, default=123)

    gateway = sub.add_parser(
        "gateway", help="async ingestion gateway over the decode farm"
    )
    gateway_sub = gateway.add_subparsers(dest="gateway_command", required=True)
    gsoak = gateway_sub.add_parser(
        "soak",
        help="chaos-soak the gateway under spikes/brownouts; exit 1 on violation",
    )
    gsoak.add_argument("--streams", type=int, default=50)
    gsoak.add_argument("--rounds", type=int, default=12)
    gsoak.add_argument("--seed", type=int, default=7)
    gsoak.add_argument("--workers", type=int, default=2)
    gsoak.add_argument(
        "--backend",
        choices=["inline", "process"],
        default="inline",
        help="farm backend (inline = deterministic CI-cheap oracle)",
    )
    gsoak.add_argument(
        "--migrate-round",
        type=int,
        default=None,
        metavar="R",
        help="drain worker 0 live after round R (checkpoint/migrate/resume)",
    )
    gsoak.add_argument(
        "--plan",
        metavar="PATH",
        help="gateway fault plan JSON (default: one spike overlapping one brownout)",
    )
    gsoak.add_argument(
        "--random-plan",
        action="store_true",
        help="use a randomized seed-determined spike/brownout schedule instead",
    )
    gsoak.add_argument(
        "--artifact",
        metavar="PATH",
        help="where to write the shrunken reproducing fault plan on violation",
    )
    gsoak.add_argument(
        "--no-shrink",
        action="store_true",
        help="report violations without shrinking the fault plan",
    )

    lint = sub.add_parser(
        "lint", help="run the domain-aware static analysis (LNT001..LNT012)"
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    trace = sub.add_parser("trace", help="record or replay a channel trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    rec = trace_sub.add_parser("record", help="record a trace to JSON")
    rec.add_argument("path")
    rec.add_argument("--tags", type=int, default=3)
    rec.add_argument("--rounds", type=int, default=50)
    rec.add_argument("--seed", type=int, default=7)
    rep = trace_sub.add_parser("replay", help="replay a JSON trace")
    rep.add_argument("path")
    rep.add_argument("--seed", type=int, default=7)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = CbmaConfig(
        n_tags=args.tags,
        seed=args.seed,
        code_family=args.code_family,
        code_length=args.code_length,
    )
    network = CbmaNetwork(config, Deployment.linear(args.tags, tag_to_rx=args.distance))
    if args.power_control:
        result = network.run_power_control(PowerController())
        print(f"power control: {result.epochs} epochs, converged={result.converged}")
    metrics = network.run_rounds(args.rounds)
    print(
        render_table(
            ["metric", "value"],
            [
                ["tags", args.tags],
                ["rounds", args.rounds],
                ["FER", format_percent(metrics.fer)],
                ["PRR", format_percent(metrics.prr)],
                ["detection rate", format_percent(metrics.detection_rate)],
                ["goodput", f"{metrics.goodput_bps / 1e3:.1f} kbps"],
            ],
            title=f"CBMA simulation ({args.code_family}-{args.code_length} codes, {args.distance} m)",
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.artefact == "headline":
        from repro.sim.experiments import headline_throughput

        m = headline_throughput(rounds=args.rounds).metrics
        print(
            render_table(
                ["scheme", "aggregate goodput"],
                [
                    ["CBMA, 10 concurrent tags", f"{m['cbma_bps'] / 1e3:.1f} kbps"],
                    ["single-tag TDMA (genie)", f"{m['single_tag_bps'] / 1e3:.1f} kbps"],
                    ["single-tag FSA", f"{m['fsa_bps'] / 1e3:.1f} kbps"],
                    ["FDMA (4 channels)", f"{m['fdma_bps'] / 1e3:.1f} kbps"],
                ],
                title=f"Headline: {m['aggregate_raw_bps'] / 1e6:.0f} Mbps on-air, FER {m['cbma_fer']:.3f}",
            )
        )
        print(
            f"speedup vs genie TDMA {m['speedup_vs_single']:.1f}x, "
            f"vs FSA {m['speedup_vs_fsa']:.1f}x"
        )
        return 0
    result = _EXPERIMENTS[args.artefact](args.rounds)
    numeric_x = all(isinstance(x, (int, float)) for x in result.x)
    print(render_series(result.x_label, result.x, result.series, title=result.experiment_id))
    if numeric_x and len(result.x) > 1:
        print()
        print(line_plot(result.x, result.series))
    if result.notes:
        print(f"\nnotes: {result.notes}")
    return 0


def _cmd_field(args: argparse.Namespace) -> int:
    field = fig5_signal_field(resolution=args.resolution).artifacts["field_dbm"]
    print("Fig. 5 theoretical signal strength (dBm); ES at (-0.5,0), RX at (+0.5,0)")
    print(heatmap(field))
    print(f"range: {field.min():.1f} .. {field.max():.1f} dBm")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import time

    from repro.obs import Tracer, jsonl_lines, render_dashboard, write_jsonl
    from repro.receiver.sic import SicReceiver

    tracer = Tracer()
    config = CbmaConfig(n_tags=args.tags, seed=args.seed)
    network = CbmaNetwork(
        config,
        Deployment.linear(args.tags, tag_to_rx=args.distance),
        tracer=tracer,
        receiver_cls=SicReceiver if args.receiver == "sic" else None,
    )
    t0 = time.perf_counter()
    metrics = network.run_rounds(args.rounds)
    profile = tracer.profile(wall_time_s=time.perf_counter() - t0)

    if args.trace:
        write_jsonl(args.trace, tracer, profile=profile)
    if args.json:
        for line in jsonl_lines(tracer, profile=profile):
            print(line)
        return 0
    print(profile.format_table())
    print()
    print(render_dashboard(profile))
    print(
        f"\n{args.tags} tags x {args.rounds} rounds ({args.receiver} receiver): "
        f"FER {format_percent(metrics.fer)}, goodput {metrics.goodput_bps / 1e3:.1f} kbps"
    )
    if args.trace:
        print(f"event log written to {args.trace}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "record":
        config = CbmaConfig(n_tags=args.tags, seed=args.seed)
        network = CbmaNetwork(config, Deployment.linear(args.tags, tag_to_rx=1.0))
        trace, metrics = record_trace(network, args.rounds, description="CLI recording")
        trace.save(args.path)
        print(f"recorded {len(trace)} rounds to {args.path} (FER {format_percent(metrics.fer)})")
        return 0
    trace = ChannelTrace.load(args.path)
    config = CbmaConfig(n_tags=trace.n_tags, seed=args.seed)
    network = CbmaNetwork(config, Deployment.linear(trace.n_tags, tag_to_rx=1.0))
    metrics = replay_trace(network, trace)
    print(
        f"replayed {len(trace)} rounds: FER {format_percent(metrics.fer)}, "
        f"mean power difference {format_percent(trace.mean_power_difference())}"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import BenchReport, compare_to_baseline, run_bench

    report = run_bench(quick=args.quick, seed=args.seed, tier=args.tier)
    if args.json:
        print(report.to_json())
    else:
        rows = [
            [
                op.op,
                str(op.reps),
                f"{op.p50_s * 1e3:.3f}",
                f"{op.p95_s * 1e3:.3f}",
            ]
            for op in report.ops
        ]
        mode = "quick" if report.quick else "full"
        print(
            render_table(
                ["op", "reps", "p50 (ms)", "p95 (ms)"],
                rows,
                title=f"repro bench ({mode}, seed {report.seed})",
            )
        )
        for name, value in sorted(report.derived.items()):
            print(f"  {name:<36} {value:6.2f}x")
    path = report.save(args.output)
    print(f"benchmark trajectory written to {path}")
    if args.baseline:
        baseline = BenchReport.load(args.baseline)
        regressions = compare_to_baseline(report, baseline, args.max_regression)
        if regressions:
            print(f"PERF REGRESSION vs {args.baseline} (>{args.max_regression:.1f}x):")
            for regression in regressions:
                print(f"  {regression}")
            return 1
        print(f"no regression vs {args.baseline} (gate: {args.max_regression:.1f}x p50)")
    return 0


def _macro_surface(args: argparse.Namespace):
    """Resolve the surface a ``repro macro`` subcommand runs against:
    a throwaway tiny calibration (``--tiny``), the artifact at
    ``--surface`` taken as-is, or -- when the artifact is missing -- a
    fresh default-spec sweep cached there.  Provenance enforcement
    belongs to ``repro macro calibrate``; the run subcommands trust
    whatever surface they are pointed at."""
    from pathlib import Path

    from repro.macro import CalibrationSpec, FerSurface, calibrate, load_or_calibrate

    if args.tiny:
        print("calibrating tiny in-memory surface (smoke grid) ...")
        return calibrate(CalibrationSpec.tiny())
    if Path(args.surface).exists():
        return FerSurface.load(args.surface)
    return load_or_calibrate(args.surface, CalibrationSpec())


def _cmd_macro(args: argparse.Namespace) -> int:
    from repro.macro import (
        CalibrationSpec,
        MacroConfig,
        MacroSimulator,
        cross_validate,
        fire_ring,
        load_or_calibrate,
        offered_load_sweep,
    )

    if args.macro_command == "calibrate":
        spec = CalibrationSpec.tiny() if args.tiny else CalibrationSpec()
        surface = load_or_calibrate(args.output, spec)
        print(
            f"surface: {surface.fer.shape[0]} tag counts x "
            f"{surface.fer.shape[1]} SNR points "
            f"({surface.snr_db_axis[0]:.1f}..{surface.snr_db_axis[-1]:.1f} dB)"
        )
        wall = surface.provenance.get("sweep_wall_s")
        print(
            f"artifact: {args.output}"
            + (f" (swept in {wall:.1f} s)" if wall is not None else " (cache hit)")
        )
        return 0

    try:
        surface = _macro_surface(args)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: unusable FER surface {args.surface}: {exc}", file=sys.stderr)
        return 2

    if args.macro_command == "run":
        from repro.sim.traffic import PoissonArrivals

        slot_s = float(surface.provenance.get("frame_duration_s", 1e-2))
        traffic = (
            PoissonArrivals(rate_hz=args.rate / slot_s) if args.rate > 0 else None
        )
        config = MacroConfig(
            n_tags=args.tags,
            traffic=traffic,
            slotted=not args.unslotted,
            distance_m=args.distance,
            backoff=args.backoff,
            ack_loss_prob=args.ack_loss,
            seed=args.seed,
        )
        stats = MacroSimulator(config, surface).run(args.slots)
        mode = "unslotted" if args.unslotted else "slotted"
        load = "saturated" if traffic is None else f"{args.rate}/tag/slot"
        print(
            render_table(
                ["metric", "value"],
                [
                    ["offered / delivered", f"{stats.offered} / {stats.delivered}"],
                    ["delivery ratio", format_percent(stats.delivery_ratio)],
                    ["dropped", str(stats.dropped)],
                    ["link FER", format_percent(stats.link_fer)],
                    ["p95 latency", f"{stats.p95_latency_s * 1e3:.1f} ms"],
                    ["peak backlog", str(stats.peak_backlog)],
                    ["goodput", f"{stats.goodput_bps(8 * config.payload_bytes) / 1e3:.1f} kbps"],
                    ["engine rate", f"{stats.events_per_sec / 1e6:.2f} M events/s"],
                ],
                title=f"macro: {args.tags} tags x {args.slots} slots ({mode}, {load}, {args.backoff})",
            )
        )
        return 0

    if args.macro_command == "load":
        result = offered_load_sweep(
            surface,
            n_tags=args.tags,
            n_slots=args.slots,
            backoff=args.backoff,
            seed=args.seed,
        )
        print(render_series(result.x_label, result.x, result.series, title=result.experiment_id))
        print()
        print(line_plot(result.x, {"delivery_ratio": result.series["delivery_ratio"]}))
        return 0

    if args.macro_command == "fire-ring":
        result = fire_ring(
            surface, n_tags=args.tags, backoff=args.backoff, seed=args.seed
        )
        print(line_plot(result.x, {"backlog": result.series["backlog"]}))
        print(
            render_table(
                ["metric", "value"],
                [[k, f"{v:.4g}"] for k, v in sorted(result.metrics.items())],
                title=f"fire ring: {args.tags} tags ({args.backoff})",
            )
        )
        return 0

    if args.macro_command == "validate":
        result = cross_validate(surface, seed=args.seed)
        m = result.metrics
        print(
            render_table(
                ["check", "error", "tolerance"],
                [
                    ["saturated FER (max abs)", f"{m['max_abs_fer_err']:.4f}", f"{result.params['fer_tolerance']:.2f}"],
                    ["ARQ delivery ratio (abs)", f"{m['delivery_err']:.4f}", f"{result.params['delivery_tolerance']:.2f}"],
                    ["ARQ goodput (relative)", f"{m['goodput_rel_err']:.4f}", f"{result.params['goodput_rel_tolerance']:.2f}"],
                ],
                title="macro <-> sample-domain cross-validation",
            )
        )
        if m["within_tolerance"] >= 1.0:
            print("macro tier agrees with the sample domain (within tolerance)")
            return 0
        print("TOLERANCE BREACH: the surface no longer represents the PHY")
        return 1
    raise AssertionError(f"unhandled macro command {args.macro_command!r}")  # pragma: no cover


def _cmd_adapt(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.mac.link_adaptation import SpreadingFactorController

    def measure(length: int, rounds: int) -> float:
        cfg = CbmaConfig(n_tags=args.tags, seed=args.seed, code_length=int(length))
        net = CbmaNetwork(cfg, Deployment.linear(args.tags, tag_to_rx=args.distance))
        return net.run_rounds(rounds).fer

    controller = SpreadingFactorController(lengths=(16, 32, 64, 128))
    result = controller.run(
        measure, n_epochs=args.epochs, rng=np.random.default_rng(args.seed)
    )
    print(
        render_table(
            ["epoch", "code length", "FER", "goodput score"],
            [[e, l, f"{f:.3f}", f"{g:.5f}"] for e, l, f, g in result.history],
            title=f"Spreading-factor adaptation ({args.tags} tags at {args.distance} m)",
        )
    )
    print(f"chosen code length: {result.chosen_length} chips/bit")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import math

    from repro.faults import (
        AckLoss,
        AdcSaturation,
        BurstInterferer,
        FaultPlan,
        StuckImpedance,
        TagBrownout,
        TagDropout,
    )
    from repro.sim.experiments import resilience_curve, run_faulted_network

    if args.curve:
        result = resilience_curve(
            n_tags=args.tags,
            rounds=args.rounds,
            seed=args.seed,
            distance_m=args.distance,
            burst_power_dbm=None if math.isnan(args.burst) else args.burst,
        )
        print(result.notes)
        print(line_plot(result.x, result.series))
        print(
            render_series(
                result.x_label,
                result.x,
                result.series,
                title="Resilience: delivery vs fault rate",
            )
        )
        return 0

    models = []
    if args.dropout > 0:
        models.append(TagDropout(probability=args.dropout))
    if args.brownout > 0:
        models.append(TagBrownout(probability=args.brownout))
    if args.ack_loss > 0:
        models.append(AckLoss(probability=args.ack_loss))
    if args.stuck > 0:
        models.append(StuckImpedance(tags=tuple(range(min(args.stuck, args.tags)))))
    if not math.isnan(args.burst):
        models.append(
            BurstInterferer(
                start_round=args.rounds // 3,
                end_round=max(2 * args.rounds // 3, args.rounds // 3 + 1),
                power_dbm=args.burst,
            )
        )
    if args.clip > 0:
        models.append(AdcSaturation(full_scale=args.clip))
    plan = FaultPlan(models, seed=args.seed) if models else None

    metrics, profile, fault_log = run_faulted_network(
        plan, n_tags=args.tags, rounds=args.rounds, seed=args.seed, distance_m=args.distance
    )
    if plan is not None:
        print(f"fault plan: {plan.describe()}")
    else:
        print("fault plan: (healthy baseline -- no faults requested)")
    print(
        f"{args.tags} tags x {args.rounds} rounds: FER {format_percent(metrics.fer)}, "
        f"delivery {format_percent(1.0 - metrics.fer)}"
    )
    if fault_log:
        print(
            render_table(
                ["fault", "injections"],
                [[reason, str(count)] for reason, count in sorted(fault_log.items())],
                title="Injected faults",
            )
        )
    if profile.error_budget:
        print("error budget (fraction of sent frames):")
        for stage, frac in sorted(profile.error_budget.items()):
            print(f"  {stage:<24} {frac:7.3f}")
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    import json

    from repro.sim.experiments import SoakConfig, run_campaign

    cfg = SoakConfig(n_windows=args.windows, n_tags=args.tags, seed=args.seed)
    outcomes = run_campaign(cfg, n_campaigns=args.campaigns, shrink=not args.no_shrink)
    failed = [o for o in outcomes if o.result.violations]
    rows = []
    for o in outcomes:
        r = o.result
        rows.append(
            [
                str(o.campaign),
                str(len(o.plan.faults)),
                f"{r.delivered}/{r.offered}",
                r.final_state,
                str(r.stats["resyncs"]),
                str(r.stats["windows_shed"]),
                str(len(r.violations)),
            ]
        )
    print(
        render_table(
            ["campaign", "faults", "delivered", "final state", "resyncs", "shed", "violations"],
            rows,
            title=f"repro soak: {args.windows} windows x {args.tags} tags, seed {args.seed}",
        )
    )
    if not failed:
        print(f"all {len(outcomes)} campaigns passed every invariant")
        return 0
    for o in failed:
        print(f"\ncampaign {o.campaign} VIOLATED invariants:")
        for v in o.result.violations:
            print(f"  [{v.name}] {v.detail}")
        if o.shrunken is not None:
            print("minimal reproducing fault plan:")
            print(o.shrunken.describe())
            if args.artifact:
                payload = {
                    "config": {
                        "n_windows": args.windows,
                        "n_tags": args.tags,
                        "seed": args.seed,
                    },
                    "campaign": o.campaign,
                    "violations": [
                        {"name": v.name, "detail": v.detail} for v in o.result.violations
                    ],
                    "plan": o.shrunken.to_dict(),
                }
                with open(args.artifact, "w") as fh:
                    json.dump(payload, fh, indent=2)
                print(f"shrunken plan written to {args.artifact}")
    return 1


def _cmd_gateway(args: argparse.Namespace) -> int:
    import json

    from repro.gateway.soak import (
        CapacityBrownout,
        GatewayFaultPlan,
        GatewaySoakConfig,
        TrafficSpike,
        random_gateway_fault_plan,
        run_gateway_soak,
    )
    from repro.sim.experiments import shrink_fault_plan

    if args.plan is not None:
        try:
            with open(args.plan) as fh:
                plan = GatewayFaultPlan.from_dict(json.load(fh))
        except (OSError, ValueError, TypeError, KeyError) as exc:
            print(f"error: unusable fault plan {args.plan}: {exc}", file=sys.stderr)
            return 2
    elif args.random_plan:
        plan = random_gateway_fault_plan(args.seed, args.rounds)
    else:
        third = max(1, args.rounds // 3)
        plan = GatewayFaultPlan(
            [
                TrafficSpike(factor=3.0, start_round=third, end_round=2 * third + 1),
                CapacityBrownout(
                    factor=0.2, start_round=third + 1, end_round=2 * third + 2
                ),
            ],
            seed=args.seed,
        )

    try:
        cfg = GatewaySoakConfig(
            n_streams=args.streams,
            n_rounds=args.rounds,
            seed=args.seed,
            n_workers=args.workers,
            backend=args.backend,
            migrate_round=args.migrate_round,
        )
    except ValueError as exc:
        print(f"error: bad soak config: {exc}", file=sys.stderr)
        return 2
    result = run_gateway_soak(cfg, plan)

    ladder_path = [result.round_states[0]] if result.round_states else []
    for state in result.round_states[1:]:
        if state != ladder_path[-1]:
            ladder_path.append(state)
    print(
        render_table(
            ["metric", "value"],
            [
                ["streams x rounds", f"{args.streams} x {args.rounds}"],
                ["fault plan", f"{len(plan.faults)} faults, seed {plan.seed}"],
                ["offered", str(sum(result.offered.values()))],
                ["admitted / rejected", f"{result.admitted} / {result.rejected}"],
                ["shed", str(result.shed)],
                ["frames delivered", str(result.delivered_frames)],
                ["ladder path", " > ".join(ladder_path)],
                ["peak intake depth", str(result.peak_queue_depth)],
                ["sessions migrated", str(len(result.moved_sessions))],
            ],
            title=f"repro gateway soak (backend {args.backend}, seed {args.seed})",
        )
    )
    if result.ok:
        print("all gateway invariants held")
        return 0
    print("\ngateway soak VIOLATED invariants:")
    for v in result.violations:
        print(f"  [{v.name}] {v.detail}")
    shrunken = plan
    if not args.no_shrink and not plan.empty:
        shrunken = shrink_fault_plan(
            plan,
            lambda p: bool(run_gateway_soak(cfg, p).violations),
            horizon=args.rounds,
        )
        print(f"minimal reproducing plan: {shrunken!r}")
    if args.artifact:
        payload = {
            "config": {
                "n_streams": args.streams,
                "n_rounds": args.rounds,
                "seed": args.seed,
                "n_workers": args.workers,
                "backend": args.backend,
                "migrate_round": args.migrate_round,
            },
            "violations": [
                {"name": v.name, "detail": v.detail} for v in result.violations
            ],
            "plan": shrunken.to_dict(),
        }
        with open(args.artifact, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"reproducing plan written to {args.artifact}")
    return 1


def _cmd_system(args: argparse.Namespace) -> int:
    from repro.channel.geometry import Room
    from repro.channel.mobility import RandomWalk
    from repro.system import CbmaSystem

    deployment = Deployment.random(
        args.population, rng=args.seed, room=Room(width=1.8, depth=1.4), min_spacing=0.12
    )
    system = CbmaSystem(
        CbmaConfig(n_tags=args.group, seed=args.seed),
        deployment,
        mobility=RandomWalk(step_sigma_m=0.02) if args.mobility else None,
    )
    for report_ in system.run(args.epochs, rounds_per_epoch=args.rounds):
        pc = " +PC" if report_.power_control_ran else ""
        print(
            f"epoch {report_.epoch:3d}: group {report_.group}  "
            f"FER {report_.fer:.3f}{pc}"
        )
    print(
        render_table(
            ["metric", "value"],
            [
                ["population / group", f"{system.population} / {args.group}"],
                ["network FER", format_percent(system.metrics.fer)],
                ["fairness (Jain)", f"{system.fairness():.3f}"],
                ["starved tags", str(system.service_log.starved() or "none")],
                ["goodput", f"{system.metrics.goodput_bps / 1e3:.1f} kbps"],
            ],
            title="Deployment summary",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "field":
        return _cmd_field(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        from repro.analysis.report import generate_report

        generate_report(args.output, scale=args.scale)
        print(f"report written to {args.output}")
        return 0
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "macro":
        return _cmd_macro(args)
    if args.command == "lint":
        from repro.lint.cli import run_lint

        return run_lint(args)
    if args.command == "soak":
        return _cmd_soak(args)
    if args.command == "gateway":
        return _cmd_gateway(args)
    if args.command == "adapt":
        return _cmd_adapt(args)
    if args.command == "system":
        return _cmd_system(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
