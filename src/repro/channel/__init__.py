"""Propagation substrate: geometry, path loss, fading, noise, interference.

- :mod:`repro.channel.geometry` -- rooms, deployments, distances.
- :mod:`repro.channel.pathloss` -- Friis backscatter eq. (1) and the
  Fig. 5 signal-strength field.
- :mod:`repro.channel.fading` -- Rician/Rayleigh fading, shadowing,
  inter-tag mutual coupling.
- :mod:`repro.channel.noise` -- thermal noise / AWGN.
- :mod:`repro.channel.interference` -- WiFi CSMA/CA, Bluetooth FHSS,
  OFDM excitation intermittency (Fig. 12 conditions).
- :mod:`repro.channel.link` -- composite per-tag complex gains.
"""

from repro.channel.fading import FadingModel, mutual_coupling_penalty, rayleigh_gain, rician_gain
from repro.channel.geometry import DEFAULT_ROOM, Deployment, PAPER_D_METERS, Point, Room
from repro.channel.interference import (
    BluetoothInterference,
    NoInterference,
    OfdmExcitationGate,
    WiFiInterference,
)
from repro.channel.link import ChannelRealization, TagLink, realize_channel
from repro.channel.noise import BOLTZMANN, NoiseModel, thermal_noise_power_w
from repro.channel.pathloss import LinkBudget, SPEED_OF_LIGHT, signal_strength_field

__all__ = [
    "FadingModel",
    "mutual_coupling_penalty",
    "rayleigh_gain",
    "rician_gain",
    "DEFAULT_ROOM",
    "Deployment",
    "PAPER_D_METERS",
    "Point",
    "Room",
    "BluetoothInterference",
    "NoInterference",
    "OfdmExcitationGate",
    "WiFiInterference",
    "ChannelRealization",
    "TagLink",
    "realize_channel",
    "BOLTZMANN",
    "NoiseModel",
    "thermal_noise_power_w",
    "LinkBudget",
    "SPEED_OF_LIGHT",
    "signal_strength_field",
]
