"""Small-scale fading and shadowing.

The paper evaluates in "challenging indoor scenarios with rich
multipath"; we model the composite tag-to-receiver channel as a
Rician-faded complex gain (a dominant reflection path plus diffuse
multipath) on top of log-normal shadowing.  The near-field coupling
between closely spaced tags (< lambda/2, Sec. VII-C1) is modelled as a
mutual-coupling penalty because the paper identifies it as a distinct
failure mode that node selection must avoid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["FadingModel", "rician_gain", "rayleigh_gain", "mutual_coupling_penalty"]


def rayleigh_gain(rng=None, size=None):
    """Complex Rayleigh-fading gain(s) with unit mean power."""
    rng = make_rng(rng)
    scale = 1.0 / math.sqrt(2.0)
    return rng.normal(0.0, scale, size=size) + 1j * rng.normal(0.0, scale, size=size)


def rician_gain(k_factor: float, rng=None, size=None):
    """Complex Rician-fading gain(s) with unit mean power.

    *k_factor* is the linear power ratio between the dominant (LoS)
    component and the diffuse multipath; ``k -> inf`` is a pure LoS
    channel, ``k = 0`` degenerates to Rayleigh.
    """
    if k_factor < 0:
        raise ValueError("k_factor must be non-negative")
    rng = make_rng(rng)
    los = math.sqrt(k_factor / (k_factor + 1.0))
    diffuse = math.sqrt(1.0 / (k_factor + 1.0))
    phase = rng.uniform(0.0, 2.0 * math.pi, size=size)
    return los * np.exp(1j * phase) + diffuse * rayleigh_gain(rng, size=size)


def mutual_coupling_penalty(distance_m: float, wavelength_m: float, floor_db: float = 6.0) -> float:
    """Power penalty (dB, >= 0) for two tags closer than half a wavelength.

    The paper reports that tags within lambda/2 of each other interfere
    strongly and power control cannot fix it (Sec. VII-C1).  The
    penalty ramps linearly from 0 dB at lambda/2 down to *floor_db* at
    contact -- a simple but monotone stand-in for antenna detuning and
    re-scattering between neighbouring tags.
    """
    if distance_m < 0 or wavelength_m <= 0:
        raise ValueError("invalid geometry")
    half_lambda = wavelength_m / 2.0
    if distance_m >= half_lambda:
        return 0.0
    return floor_db * (1.0 - distance_m / half_lambda)


@dataclass
class FadingModel:
    """Composite fading: Rician small-scale + log-normal shadowing.

    Attributes
    ----------
    k_factor:
        Rician K (linear).  The default 12 (~10.8 dB) suits the
        paper's benchmark: devices on one table with a strong direct
        path.  Lower it toward 0 for obstructed, Rayleigh-like rooms.
    shadowing_sigma_db:
        Standard deviation of the log-normal shadowing term.
    """

    k_factor: float = 12.0
    shadowing_sigma_db: float = 1.0

    def sample_gain(self, rng=None) -> complex:
        """One composite complex gain (unit mean power before shadowing)."""
        rng = make_rng(rng)
        small_scale = rician_gain(self.k_factor, rng)
        shadow_db = rng.normal(0.0, self.shadowing_sigma_db)
        return complex(small_scale * 10.0 ** (shadow_db / 20.0))

    def sample_gains(self, n: int, rng=None) -> np.ndarray:
        """Independent composite gains for *n* tags."""
        rng = make_rng(rng)
        return np.array([self.sample_gain(rng) for _ in range(n)])
