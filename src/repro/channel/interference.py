"""Interference and excitation-intermittency models (paper Fig. 12).

The paper evaluates four working conditions: clean, coexisting WiFi,
coexisting Bluetooth, and an OFDM excitation source.  Its explanation
of the results is statistical: WiFi occupies the channel in CSMA/CA
bursts with random backoff, Bluetooth hops across 79 x 1 MHz channels
1600 times per second (hitting the backscatter band rarely), and an
OFDM excitation is *intermittent* so the tag often has nothing to
reflect.  These models reproduce exactly those occupancy statistics:

- additive interferers produce a complex sample stream to add at the
  receiver;
- the OFDM excitation produces a multiplicative 0/1 gate on every
  tag's backscatter amplitude (no excitation -> nothing to reflect).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.db import dbm_to_watts
from repro.utils.rng import make_rng

__all__ = [
    "WiFiInterference",
    "BluetoothInterference",
    "OfdmExcitationGate",
    "NoInterference",
]


class NoInterference:
    """The clean condition: contributes nothing."""

    def sample(self, n: int, sample_rate_hz: float, rng=None) -> np.ndarray:
        """Zero samples (kept as an explicit null object)."""
        return np.zeros(n, dtype=np.complex128)


@dataclass
class WiFiInterference:
    """CSMA/CA burst interference.

    A renewal process alternates idle gaps (DIFS + random backoff +
    inter-arrival of traffic) and busy bursts (frame airtime).  During
    a burst the interferer contributes band-limited Gaussian power at
    *power_dbm* scaled by *overlap* (the fraction of the wideband WiFi
    emission that lands in the narrow backscatter band).

    Defaults give ~30% duty cycle of moderately strong interference --
    enough to measurably, but only slightly, reduce PRR, matching the
    paper's observation.
    """

    power_dbm: float = -65.0
    overlap: float = 0.3
    mean_burst_s: float = 1.0e-3
    mean_idle_s: float = 2.3e-3

    def duty_cycle(self) -> float:
        """Long-run fraction of time the interferer is on."""
        return self.mean_burst_s / (self.mean_burst_s + self.mean_idle_s)

    def sample(self, n: int, sample_rate_hz: float, rng=None) -> np.ndarray:
        """*n* complex interference samples at *sample_rate_hz*."""
        rng = make_rng(rng)
        mask = _renewal_mask(n, sample_rate_hz, self.mean_burst_s, self.mean_idle_s, rng)
        power = dbm_to_watts(self.power_dbm) * self.overlap
        std = math.sqrt(power / 2.0)
        noise = rng.normal(0.0, std, n) + 1j * rng.normal(0.0, std, n)
        return noise * mask


@dataclass
class BluetoothInterference:
    """Frequency-hopping interference.

    Bluetooth classic hops over 79 x 1 MHz channels at 1600 hops/s
    (625 us slots).  Each slot independently lands on the backscatter
    band with probability ``hit_probability``; a hit contributes strong
    narrowband power for that slot.
    """

    power_dbm: float = -60.0
    slot_s: float = 625e-6
    hit_probability: float = 1.0 / 79.0
    activity: float = 0.7  # fraction of slots that carry traffic at all

    def sample(self, n: int, sample_rate_hz: float, rng=None) -> np.ndarray:
        """*n* complex interference samples at *sample_rate_hz*."""
        rng = make_rng(rng)
        samples_per_slot = max(int(round(self.slot_s * sample_rate_hz)), 1)
        n_slots = n // samples_per_slot + 2
        hits = (rng.random(n_slots) < self.hit_probability * self.activity).astype(np.float64)
        mask = np.repeat(hits, samples_per_slot)[:n]
        power = dbm_to_watts(self.power_dbm)
        std = math.sqrt(power / 2.0)
        noise = rng.normal(0.0, std, n) + 1j * rng.normal(0.0, std, n)
        return noise * mask


@dataclass
class OfdmExcitationGate:
    """Intermittent OFDM excitation (paper Fig. 12, case iv).

    When the excitation source transmits real OFDM traffic instead of a
    continuous tone, the tag can only reflect while a packet is on the
    air; the paper attributes the large PRR drop to this intermittency.
    The gate is a 0/1 envelope built from the same renewal process as
    the WiFi model; it multiplies every tag's backscatter amplitude.
    """

    mean_on_s: float = 1.2e-3
    mean_off_s: float = 1.0e-3

    def duty_cycle(self) -> float:
        """Long-run fraction of time excitation is present."""
        return self.mean_on_s / (self.mean_on_s + self.mean_off_s)

    def gate(self, n: int, sample_rate_hz: float, rng=None) -> np.ndarray:
        """0/1 excitation envelope of length *n*."""
        rng = make_rng(rng)
        return _renewal_mask(n, sample_rate_hz, self.mean_on_s, self.mean_off_s, rng)


def _renewal_mask(n: int, sample_rate_hz: float, mean_on_s: float, mean_off_s: float, rng) -> np.ndarray:
    """Alternating exponential on/off 0/1 mask of length *n*."""
    if mean_on_s <= 0 or mean_off_s <= 0:
        raise ValueError("renewal means must be positive")
    mask = np.zeros(n, dtype=np.float64)
    pos = 0
    # Random initial phase: start on with the steady-state probability.
    on = bool(rng.random() < mean_on_s / (mean_on_s + mean_off_s))
    while pos < n:
        duration_s = rng.exponential(mean_on_s if on else mean_off_s)
        length = max(int(round(duration_s * sample_rate_hz)), 1)
        if on:
            mask[pos : pos + length] = 1.0
        pos += length
        on = not on
    return mask
