"""Tag mobility (paper Sec. VIII-D).

The paper notes that "if the tag is moving, the starvation problem can
be alleviated" -- a moving tag samples new positions, so a spot with
destructive geometry is temporary.  This module provides the two
standard mobility models at the scale of a room, updating a
:class:`~repro.channel.geometry.Deployment` in place between rounds:

- :class:`RandomWaypoint` -- each tag picks a waypoint and speed, walks
  there, pauses, repeats (people carrying wearables);
- :class:`RandomWalk` -- small Brownian steps (appliances being nudged,
  swaying objects).

Both respect the room boundary and expose a deterministic update so
experiments stay reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.channel.geometry import Deployment, Point
from repro.utils.rng import make_rng

__all__ = ["RandomWaypoint", "RandomWalk"]


@dataclass
class RandomWalk:
    """Brownian motion with reflective walls.

    Attributes
    ----------
    step_sigma_m:
        Standard deviation of each coordinate step per update.
    """

    step_sigma_m: float = 0.05

    def update(self, deployment: Deployment, dt_s: float = 1.0, rng=None) -> None:
        """Move every tag one step (scaled by ``sqrt(dt)``)."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        rng = make_rng(rng)
        scale = self.step_sigma_m * math.sqrt(dt_s)
        half_w = deployment.room.width / 2
        half_d = deployment.room.depth / 2
        for i, p in enumerate(deployment.tags):
            x = p.x + float(rng.normal(0.0, scale))
            y = p.y + float(rng.normal(0.0, scale))
            # Reflective boundaries.
            x = _reflect(x, -half_w, half_w)
            y = _reflect(y, -half_d, half_d)
            deployment.tags[i] = Point(x, y)


@dataclass
class RandomWaypoint:
    """The classic random-waypoint model.

    Attributes
    ----------
    speed_range_mps:
        (min, max) walking speed drawn per leg.
    pause_s:
        Pause duration at each waypoint.
    """

    speed_range_mps: tuple = (0.3, 1.2)
    pause_s: float = 2.0
    _state: Dict[int, dict] = field(default_factory=dict, init=False)

    def _new_leg(self, deployment: Deployment, i: int, rng) -> dict:
        target = deployment.room.random_point(rng)
        speed = float(rng.uniform(*self.speed_range_mps))
        return {"target": target, "speed": speed, "pause_left": 0.0}

    def update(self, deployment: Deployment, dt_s: float = 1.0, rng=None) -> None:
        """Advance every tag by *dt_s* seconds."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        rng = make_rng(rng)
        for i, p in enumerate(deployment.tags):
            state = self._state.get(i)
            if state is None:
                state = self._new_leg(deployment, i, rng)
                self._state[i] = state
            if state["pause_left"] > 0:
                state["pause_left"] = max(0.0, state["pause_left"] - dt_s)
                continue
            target: Point = state["target"]
            dist = p.distance_to(target)
            step = state["speed"] * dt_s
            if step >= dist:
                deployment.tags[i] = target
                state["pause_left"] = self.pause_s
                self._state[i] = self._new_leg(deployment, i, rng)
                self._state[i]["pause_left"] = self.pause_s
                continue
            frac = step / dist
            deployment.tags[i] = Point(
                p.x + (target.x - p.x) * frac, p.y + (target.y - p.y) * frac
            )


def _reflect(value: float, lo: float, hi: float) -> float:
    """Reflect *value* back into [lo, hi]."""
    if value < lo:
        return min(2 * lo - value, hi)
    if value > hi:
        return max(2 * hi - value, lo)
    return value
