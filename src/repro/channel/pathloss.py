"""Friis backscatter path loss -- paper eq. (1) -- and the Fig. 5 field.

The received backscatter power is the product of three factors:

- excitation-source-to-tag propagation ``P_t G_t / (4 pi d1^2)``;
- the tag's re-radiation ``lambda^2 G_tag^2 / (4 pi) * |dGamma|^2/4 * alpha``;
- tag-to-receiver propagation ``1 / (4 pi d2^2) * lambda^2 G_r / (4 pi)``.

This module evaluates the equation for single links and on a grid (the
paper's Fig. 5 theoretical signal-strength field), and converts powers
to complex baseband amplitudes for the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channel.geometry import Deployment, Point
from repro.utils.db import dbm_to_watts, watts_to_dbm

__all__ = ["LinkBudget", "signal_strength_field", "SPEED_OF_LIGHT"]

SPEED_OF_LIGHT = 299_792_458.0


@dataclass(frozen=True)
class LinkBudget:
    """Parameters of the backscatter link (paper eq. (1)).

    Attributes
    ----------
    tx_power_dbm:
        Excitation source transmit power ``P_t`` (default 20 dBm, the
        top of the paper's Fig. 8(b) sweep).
    carrier_hz:
        Excitation carrier frequency (2 GHz in the prototype).
    gain_tx / gain_rx / gain_tag:
        Linear antenna gains ``G_t``, ``G_r``, ``G_tag``.
    alpha:
        The scattering efficiency factor ``alpha`` in eq. (1),
        absorbing conversion losses of the tag front end.
    """

    tx_power_dbm: float = 20.0
    carrier_hz: float = 2.0e9
    gain_tx: float = 2.0
    gain_rx: float = 2.0
    gain_tag: float = 1.6
    alpha: float = 0.5

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength ``lambda``."""
        return SPEED_OF_LIGHT / self.carrier_hz

    @property
    def tx_power_w(self) -> float:
        return dbm_to_watts(self.tx_power_dbm)

    def received_power_w(self, d1_m: float, d2_m: float, delta_gamma: float = 1.0) -> float:
        """Received backscatter power in watts -- eq. (1) verbatim.

        Parameters
        ----------
        d1_m, d2_m:
            ES-to-tag and tag-to-RX distances.  Distances are floored
            at 5 cm (antenna near-field) to keep the far-field formula
            finite for degenerate placements.
        delta_gamma:
            ``|delta Gamma|`` of the tag's current impedance state
            (see :mod:`repro.phy.impedance`).
        """
        d1 = max(d1_m, 0.05)
        d2 = max(d2_m, 0.05)
        lam = self.wavelength_m
        term_forward = self.tx_power_w * self.gain_tx / (4.0 * math.pi * d1**2)
        term_tag = (lam**2 * self.gain_tag**2 / (4.0 * math.pi)) * (delta_gamma**2 / 4.0) * self.alpha
        term_back = (1.0 / (4.0 * math.pi * d2**2)) * (lam**2 * self.gain_rx / (4.0 * math.pi))
        return term_forward * term_tag * term_back

    def received_power_dbm(self, d1_m: float, d2_m: float, delta_gamma: float = 1.0) -> float:
        """Received backscatter power in dBm."""
        return watts_to_dbm(self.received_power_w(d1_m, d2_m, delta_gamma))

    def received_amplitude(self, d1_m: float, d2_m: float, delta_gamma: float = 1.0) -> float:
        """Baseband amplitude (sqrt of received power, unit-impedance)."""
        return math.sqrt(self.received_power_w(d1_m, d2_m, delta_gamma))

    def tag_power_for_deployment(self, deployment: Deployment, index: int, delta_gamma: float = 1.0) -> float:
        """Received power (W) of tag *index* in a deployment."""
        d1, d2 = deployment.tag_distances(index)
        return self.received_power_w(d1, d2, delta_gamma)


def signal_strength_field(
    budget: LinkBudget,
    excitation: Point,
    receiver: Point,
    x_range=(-3.0, 3.0),
    y_range=(-2.0, 2.0),
    resolution: int = 61,
    delta_gamma: float = 1.0,
):
    """Theoretical received signal strength over a grid of tag positions.

    Reproduces the paper's Fig. 5: for each candidate tag position the
    received power of a tag placed there, in dBm.  Returns
    ``(xs, ys, field_dbm)`` where ``field_dbm`` has shape
    ``(len(ys), len(xs))``.
    """
    xs = np.linspace(x_range[0], x_range[1], resolution)
    ys = np.linspace(y_range[0], y_range[1], resolution)
    field = np.empty((ys.size, xs.size))
    for iy, y in enumerate(ys):
        for ix, x in enumerate(xs):
            tag = Point(float(x), float(y))
            d1 = excitation.distance_to(tag)
            d2 = tag.distance_to(receiver)
            field[iy, ix] = budget.received_power_dbm(d1, d2, delta_gamma)
    return xs, ys, field
