"""Receiver noise.

Thermal noise referenced to the receiver bandwidth plus a configurable
noise figure.  The default bandwidth matches the chip rate of the CBMA
prototype; the noise floor this produces (about -100 dBm at 1 MHz and
7 dB NF) is what makes the -5 dBm point of the paper's Fig. 8(b)
collapse, as reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.contracts import array_contract
from repro.utils.rng import make_rng

__all__ = ["NoiseModel", "thermal_noise_power_w", "BOLTZMANN"]

BOLTZMANN = 1.380649e-23
ROOM_TEMP_K = 290.0


def thermal_noise_power_w(bandwidth_hz: float, noise_figure_db: float = 0.0, temp_k: float = ROOM_TEMP_K) -> float:
    """kTB thermal noise power in watts, raised by a noise figure."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return BOLTZMANN * temp_k * bandwidth_hz * 10.0 ** (noise_figure_db / 10.0)


@dataclass
class NoiseModel:
    """Complex AWGN at the receiver.

    Attributes
    ----------
    bandwidth_hz:
        Receiver noise bandwidth (defaults to 1 MHz, one chip rate).
    noise_figure_db:
        Receiver noise figure (7 dB: a realistic SDR front end).
    extra_noise_db:
        Additional environmental noise above thermal, capturing the
        office's ambient emissions.
    """

    bandwidth_hz: float = 1.0e6
    noise_figure_db: float = 7.0
    extra_noise_db: float = 0.0

    @property
    def power_w(self) -> float:
        """Total noise power in watts."""
        base = thermal_noise_power_w(self.bandwidth_hz, self.noise_figure_db)
        return base * 10.0 ** (self.extra_noise_db / 10.0)

    @property
    def std_per_component(self) -> float:
        """Std-dev of each I/Q component: total power split across I and Q."""
        return math.sqrt(self.power_w / 2.0)

    @array_contract(returns="(n) complex128")
    def sample(self, n: int, rng=None) -> np.ndarray:
        """*n* complex AWGN samples."""
        rng = make_rng(rng)
        std = self.std_per_component
        return rng.normal(0.0, std, n) + 1j * rng.normal(0.0, std, n)
