"""Composite per-tag link: path loss x impedance state x fading.

Bridges the geometry/propagation models to the simulator: given a
deployment, a link budget, a fading model and each tag's impedance
state, produce the complex baseband amplitude with which each tag's
chips arrive at the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.channel.fading import FadingModel, mutual_coupling_penalty
from repro.channel.geometry import Deployment
from repro.channel.pathloss import LinkBudget
from repro.utils.rng import make_rng

__all__ = ["TagLink", "ChannelRealization", "realize_channel"]


@dataclass(frozen=True)
class TagLink:
    """The channel of one tag, frozen for one coherence interval.

    Attributes
    ----------
    amplitude:
        Complex baseband gain applied to the tag's unit chip stream
        (includes path loss, |delta Gamma|/2, fading and coupling).
    d1_m, d2_m:
        Link geometry, kept for reporting.
    """

    amplitude: complex
    d1_m: float
    d2_m: float

    @property
    def power_w(self) -> float:
        """Received power of this tag's backscatter (unit impedance)."""
        return float(abs(self.amplitude) ** 2)


@dataclass
class ChannelRealization:
    """All tag links for one coherence interval plus shared context."""

    links: List[TagLink]
    budget: LinkBudget
    deployment: Deployment

    def amplitudes(self) -> np.ndarray:
        """Complex amplitude per tag."""
        return np.array([l.amplitude for l in self.links])

    def powers_w(self) -> np.ndarray:
        """Received power per tag in watts."""
        return np.array([l.power_w for l in self.links])


def realize_channel(
    deployment: Deployment,
    budget: LinkBudget,
    delta_gammas: Sequence[float],
    fading: Optional[FadingModel] = None,
    rng=None,
    coupling_floor_db: float = 6.0,
) -> ChannelRealization:
    """Draw one channel realization for every tag in *deployment*.

    Parameters
    ----------
    delta_gammas:
        ``|delta Gamma|`` per tag -- the knob the power-control loop
        turns (see :class:`repro.phy.impedance.ImpedanceCodebook`).
    fading:
        Small-scale fading model; ``None`` gives a deterministic
        (pure path loss) channel, used by unit tests and theory plots.
    coupling_floor_db:
        Worst-case mutual-coupling penalty for co-located tags.
    """
    n = len(deployment.tags)
    if len(delta_gammas) != n:
        raise ValueError(f"need one delta_gamma per tag: {len(delta_gammas)} != {n}")
    rng = make_rng(rng)
    lam = budget.wavelength_m

    # Mutual coupling: each tag is penalised by its nearest neighbour.
    coupling_db = np.zeros(n)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            d = deployment.inter_tag_distance(i, j)
            coupling_db[i] = max(
                coupling_db[i], mutual_coupling_penalty(d, lam, coupling_floor_db)
            )

    links = []
    for i in range(n):
        d1, d2 = deployment.tag_distances(i)
        amp = budget.received_amplitude(d1, d2, delta_gammas[i])
        amp *= 10.0 ** (-coupling_db[i] / 20.0)
        if fading is not None:
            gain = fading.sample_gain(rng)
        else:
            # Deterministic phase from the round-trip path length.
            phase = -2.0 * np.pi * (d1 + d2) / lam
            gain = np.exp(1j * phase)
        links.append(TagLink(amplitude=complex(amp * gain), d1_m=d1, d2_m=d2))
    return ChannelRealization(links=links, budget=budget, deployment=deployment)
