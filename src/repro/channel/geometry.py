"""Deployment geometry.

The paper's benchmark coordinate system (Sec. IV, Fig. 3): the
excitation source sits at ``(-D, 0)`` and the receiver at ``(+D, 0)``
with ``D = 50 cm``; tags are placed at arbitrary ``(x, y)`` within a
4 m x 6 m office.  This module provides the room model, placement
helpers and distance computations shared by every experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["Point", "Room", "Deployment", "DEFAULT_ROOM", "PAPER_D_METERS"]

#: Half-separation between excitation source and receiver (Fig. 3).
PAPER_D_METERS = 0.5


@dataclass(frozen=True)
class Point:
    """A 2-D position in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y])


@dataclass(frozen=True)
class Room:
    """An axis-aligned rectangular room centred on the origin.

    The paper's office is 4 m x 6 m (Sec. VII-A).
    """

    width: float = 6.0
    depth: float = 4.0

    def contains(self, p: Point) -> bool:
        """True when *p* lies inside the room."""
        return abs(p.x) <= self.width / 2 and abs(p.y) <= self.depth / 2

    def random_point(self, rng=None, margin: float = 0.1) -> Point:
        """Uniformly random point inside the room, away from the walls."""
        rng = make_rng(rng)
        half_w = self.width / 2 - margin
        half_d = self.depth / 2 - margin
        if half_w <= 0 or half_d <= 0:
            raise ValueError("margin larger than the room")
        return Point(float(rng.uniform(-half_w, half_w)), float(rng.uniform(-half_d, half_d)))


DEFAULT_ROOM = Room()


@dataclass
class Deployment:
    """Positions of the excitation source, receiver and tags.

    Defaults follow the paper's Fig. 3 benchmark layout.
    """

    excitation: Point = field(default_factory=lambda: Point(-PAPER_D_METERS, 0.0))
    receiver: Point = field(default_factory=lambda: Point(PAPER_D_METERS, 0.0))
    tags: List[Point] = field(default_factory=list)
    room: Room = field(default_factory=Room)

    def add_tag(self, p: Point) -> int:
        """Register a tag position; returns its index."""
        if not self.room.contains(p):
            raise ValueError(f"tag position {p} outside room {self.room}")
        self.tags.append(p)
        return len(self.tags) - 1

    def tag_distances(self, index: int) -> Tuple[float, float]:
        """(d1, d2): ES-to-tag and tag-to-RX distances for tag *index*."""
        tag = self.tags[index]
        return self.excitation.distance_to(tag), tag.distance_to(self.receiver)

    def inter_tag_distance(self, i: int, j: int) -> float:
        """Distance between two tags."""
        return self.tags[i].distance_to(self.tags[j])

    def min_inter_tag_distance(self) -> float:
        """Smallest pairwise distance among tags (inf when < 2 tags)."""
        best = math.inf
        for i in range(len(self.tags)):
            for j in range(i + 1, len(self.tags)):
                best = min(best, self.inter_tag_distance(i, j))
        return best

    @classmethod
    def random(
        cls,
        n_tags: int,
        rng=None,
        room: Optional[Room] = None,
        min_spacing: float = 0.0,
        max_attempts: int = 1000,
    ) -> "Deployment":
        """Random deployment of *n_tags* with optional minimum spacing.

        Used for the paper's macro-benchmark "50 groups of random
        positions" (Sec. VII-B3).  Raises :class:`RuntimeError` when
        the spacing constraint cannot be met.
        """
        rng = make_rng(rng)
        dep = cls(room=room or Room())
        for _ in range(n_tags):
            for _ in range(max_attempts):
                cand = dep.room.random_point(rng)
                if all(cand.distance_to(t) >= min_spacing for t in dep.tags):
                    dep.tags.append(cand)
                    break
            else:
                raise RuntimeError(
                    f"could not place {n_tags} tags with spacing {min_spacing} m"
                )
        return dep

    @classmethod
    def linear(
        cls,
        n_tags: int,
        tag_to_rx: float,
        es_to_tag: float = PAPER_D_METERS,
        spacing: float = 0.15,
    ) -> "Deployment":
        """The micro-benchmark layout (Sec. VII-B1).

        "We fix the ES-to-tag distance as 50cm and change the
        tag-to-RX distance": the tag cluster sits at the origin (a
        short row along y, *spacing* apart), the excitation source at
        ``(-es_to_tag, 0)`` and the receiver at ``(+tag_to_rx, 0)`` --
        the receiver moves, the tags stay put relative to the ES.
        """
        room = Room(width=max(12.0, 2 * (tag_to_rx + es_to_tag) + 2), depth=4.0)
        dep = cls(
            excitation=Point(-es_to_tag, 0.0),
            receiver=Point(tag_to_rx, 0.0),
            room=room,
        )
        start = -(n_tags - 1) / 2.0
        for k in range(n_tags):
            dep.tags.append(Point(0.0, (start + k) * spacing))
        return dep
