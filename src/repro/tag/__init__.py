"""The backscatter tag: framing, clocking, encoding, power state.

- :mod:`repro.tag.framing` -- the CBMA frame format (preamble, length,
  payload, CRC-16).
- :mod:`repro.tag.oscillator` -- clock offset/drift/jitter model.
- :mod:`repro.tag.tag` -- the :class:`Tag` composing the transmit
  pipeline and the power-control state.
- :mod:`repro.tag.energy` -- RF harvesting and the tag's energy budget.
"""

from repro.tag.energy import EnergyHarvester, EnergyStore, TagEnergyModel
from repro.tag.framing import DEFAULT_PREAMBLE, Frame, FrameError, FrameFormat, MAX_PAYLOAD_BYTES
from repro.tag.oscillator import TagOscillator
from repro.tag.tag import Tag, TagStats

__all__ = [
    "EnergyHarvester",
    "EnergyStore",
    "TagEnergyModel",
    "DEFAULT_PREAMBLE",
    "Frame",
    "FrameError",
    "FrameFormat",
    "MAX_PAYLOAD_BYTES",
    "TagOscillator",
    "Tag",
    "TagStats",
]
