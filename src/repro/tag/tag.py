"""The CBMA backscatter tag.

Composes the tag-side pipeline of paper Sec. III-A: framing ->
PN encoding -> power (impedance) selection -> upsampling/OOK.  The tag
also carries the state the MAC layer mutates: its impedance index
(Algorithm 1's ``Z``) and its ACK bookkeeping.

The tag is deliberately "dumb": it cannot sense the channel (no ADC),
it only counts the ACKs the receiver broadcasts back -- exactly the
information boundary the paper imposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.phy.impedance import ImpedanceCodebook, default_codebook
from repro.phy.modulation import spread_bits, upsample_chips
from repro.tag.framing import FrameFormat
from repro.tag.oscillator import TagOscillator
from repro.utils.bits import as_bit_array

__all__ = ["Tag", "TagStats"]


@dataclass
class TagStats:
    """ACK bookkeeping for one power-control epoch."""

    sent: int = 0
    acked: int = 0

    def reset(self) -> None:
        self.sent = 0
        self.acked = 0

    @property
    def ack_ratio(self) -> float:
        """Fraction of sent frames that were acknowledged (1.0 if none sent)."""
        return self.acked / self.sent if self.sent else 1.0


class Tag:
    """One backscatter tag.

    Parameters
    ----------
    tag_id:
        Identifier, also the index of its PN code within the family.
    code:
        The tag's PN spreading code (0/1 chips).
    fmt:
        Frame format shared with the receiver.
    codebook:
        Impedance codebook for power control; the paper's four-state
        ladder by default.
    impedance_index:
        Initial ``Z``.  Defaults to state 1 of the ladder (the second
        weakest): a real tag powers up on whatever termination the
        switch rests on, and starting mid-ladder leaves Algorithm 1
        headroom in both directions.  Experiments that disable power
        control keep this default, matching the paper's
        "without power control" baseline.
    oscillator:
        Clock imperfection model (defaults to an ideal clock).
    """

    def __init__(
        self,
        tag_id: int,
        code: np.ndarray,
        fmt: Optional[FrameFormat] = None,
        codebook: Optional[ImpedanceCodebook] = None,
        impedance_index: Optional[int] = None,
        oscillator: Optional[TagOscillator] = None,
    ):
        self.tag_id = int(tag_id)
        self.code = as_bit_array(code)
        if self.code.size == 0:
            raise ValueError("spreading code must be non-empty")
        self.fmt = fmt or FrameFormat()
        self.codebook = codebook or default_codebook()
        self.impedance_index = (
            min(1, len(self.codebook) - 1) if impedance_index is None else int(impedance_index)
        )
        if not 0 <= self.impedance_index < len(self.codebook):
            raise ValueError(f"impedance index {impedance_index} outside codebook")
        self.oscillator = oscillator or TagOscillator()
        self.stats = TagStats()
        #: Fault-injection state: while True the impedance switch is
        #: wedged and power-control commands are ignored (counted in
        #: ``ignored_commands``).  Set by
        #: :class:`repro.faults.StuckImpedance` via the network.
        self.stuck = False
        self.ignored_commands = 0

    # ------------------------------------------------------------------
    # Transmit pipeline
    # ------------------------------------------------------------------

    def frame_bits(self, payload: bytes) -> np.ndarray:
        """Framing stage: payload -> frame bits."""
        return self.fmt.build(payload)

    def encode(self, payload: bytes) -> np.ndarray:
        """Framing + PN encoding: payload -> 0/1 chip stream."""
        return spread_bits(self.frame_bits(payload), self.code)

    def chip_stream(self, payload: bytes, samples_per_chip: int = 1) -> np.ndarray:
        """Full tag baseband: payload -> upsampled unit 0/1 samples.

        Amplitude/phase (impedance state, channel) are applied by the
        channel model; the tag emits a unit-amplitude chip envelope.
        """
        return upsample_chips(self.encode(payload), samples_per_chip)

    # ------------------------------------------------------------------
    # Power control state (driven by repro.mac.power_control)
    # ------------------------------------------------------------------

    @property
    def delta_gamma(self) -> float:
        """|delta Gamma| of the current impedance state."""
        return float(abs(self.codebook[self.impedance_index].gamma))

    @property
    def amplitude_gain(self) -> float:
        """|delta Gamma|/2 -- amplitude factor entering Friis eq. (1)."""
        return self.codebook[self.impedance_index].amplitude_gain

    def step_impedance(self) -> int:
        """Algorithm 1 lines 18-22: advance ``Z`` cyclically; return new Z.

        A :attr:`stuck` switch ignores the command and keeps its state.
        """
        if self.stuck:
            self.ignored_commands += 1
            return self.impedance_index
        self.impedance_index = (self.impedance_index + 1) % len(self.codebook)
        return self.impedance_index

    def set_impedance(self, index: int) -> None:
        """Directly select an impedance state (used by tests/ablations).

        A :attr:`stuck` switch validates but ignores the command.
        """
        if not 0 <= index < len(self.codebook):
            raise ValueError(f"impedance index {index} outside codebook of {len(self.codebook)}")
        if self.stuck:
            self.ignored_commands += 1
            return
        self.impedance_index = int(index)

    def record_result(self, acked: bool) -> None:
        """Count one transmitted frame and whether an ACK came back."""
        self.stats.sent += 1
        if acked:
            self.stats.acked += 1

    def reset_epoch(self) -> None:
        """Clear ACK bookkeeping at the start of a power-control epoch."""
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tag(id={self.tag_id}, code_len={self.code.size}, "
            f"Z={self.impedance_index}, ack_ratio={self.stats.ack_ratio:.2f})"
        )
