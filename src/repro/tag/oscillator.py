"""Tag clock model: offset, drift and jitter.

CBMA tags are asynchronous -- "the backscatter signals from the tags
may have time differences due to the different transmission delays,
processing times, etc." (paper Sec. VII-C2) -- and the paper's
emulation "incorporate[s] the real imperfectness, e.g., the timing
error".  This model captures those imperfections:

- a static start *offset* (transmission/processing delay),
- a ppm frequency *drift* of the tag oscillator, and
- per-chip Gaussian *jitter*.

The simulator asks the oscillator where each chip edge lands in
receiver time; the decoder never sees these numbers -- it must recover
timing by correlation, exactly like the real receiver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["TagOscillator"]

#: Drift/jitter magnitudes below this count as an ideal clock.
_IDEAL_EPS = 1e-9


@dataclass
class TagOscillator:
    """Clock of one tag, in units of chips.

    Attributes
    ----------
    offset_chips:
        Start-time offset of the tag's transmission relative to the
        receiver clock, in chips (may be fractional).
    drift_ppm:
        Oscillator frequency error in parts-per-million; positive means
        the tag clock runs fast (its chips are slightly short).
    jitter_chips_rms:
        RMS white jitter added to each chip edge.
    """

    offset_chips: float = 0.0
    drift_ppm: float = 0.0
    jitter_chips_rms: float = 0.0

    def chip_edges(self, n_chips: int, rng=None) -> np.ndarray:
        """Receiver-time positions (in chips) of the first *n_chips* edges.

        Edge ``k`` of an ideal tag falls at ``offset + k``; drift
        stretches the spacing by ``1 / (1 + ppm * 1e-6)`` and jitter
        perturbs each edge independently.
        """
        if n_chips < 0:
            raise ValueError("n_chips must be non-negative")
        k = np.arange(n_chips, dtype=np.float64)
        scale = 1.0 / (1.0 + self.drift_ppm * 1e-6)
        edges = self.offset_chips + k * scale
        if self.jitter_chips_rms > 0:
            rng = make_rng(rng)
            edges = edges + rng.normal(0.0, self.jitter_chips_rms, n_chips)
            # Physical edges cannot reorder: a slow edge delays its
            # successors rather than crossing them.
            edges = np.maximum.accumulate(edges)
        return edges

    @property
    def is_ideal(self) -> bool:
        """True when the clock has no drift or jitter (fast path).

        Tolerance-based: drift below ~1e-9 ppm stretches a thousand-chip
        frame by under 1e-18 chips -- indistinguishable from ideal, and
        an exact ``== 0.0`` here would punish callers whose drift came
        out of a float computation.
        """
        return abs(self.drift_ppm) < _IDEAL_EPS and self.jitter_chips_rms < _IDEAL_EPS

    def total_delay_samples(self, samples_per_chip: int) -> float:
        """Static start offset converted to samples."""
        if samples_per_chip < 1:
            raise ValueError("samples_per_chip must be >= 1")
        return self.offset_chips * samples_per_chip

    @classmethod
    def random(
        cls,
        rng=None,
        max_offset_chips: float = 8.0,
        drift_ppm_sigma: float = 20.0,
        jitter_chips_rms: float = 0.02,
    ) -> "TagOscillator":
        """A realistic random oscillator (used for macro benchmarks)."""
        rng = make_rng(rng)
        return cls(
            offset_chips=float(rng.uniform(0.0, max_offset_chips)),
            drift_ppm=float(rng.normal(0.0, drift_ppm_sigma)),
            jitter_chips_rms=jitter_chips_rms,
        )
