"""CBMA frame format (paper Sec. III-A).

A frame is::

    | preamble | length (1 byte) | payload (<= 126 bytes) | CRC-16 |

The default preamble is the paper's one byte ``10101010``; the frame
detection study (Fig. 8(c)) sweeps the preamble over 4..64 bits, so
the length is configurable.  The length byte counts payload bytes; the
CRC covers length + payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.bits import (
    as_bit_array,
    bits_to_bytes,
    bytes_to_bits,
    int_to_bits,
    pack_bits,
    unpack_bits,
)
from repro.utils.crc import CRC16_CCITT, Crc16

__all__ = ["FrameFormat", "Frame", "DEFAULT_PREAMBLE", "MAX_PAYLOAD_BYTES", "FrameError"]

#: The paper's preamble byte, alternating 1/0.
DEFAULT_PREAMBLE = "10101010"
MAX_PAYLOAD_BYTES = 126


class FrameError(ValueError):
    """Raised when bits cannot be parsed as a valid frame."""


def _alternating_preamble(n_bits: int) -> np.ndarray:
    """Extend the paper's alternating pattern to *n_bits*."""
    return np.array([(i + 1) % 2 for i in range(n_bits)], dtype=np.uint8)


@dataclass(frozen=True)
class FrameFormat:
    """Frame geometry shared by tags and the receiver.

    Attributes
    ----------
    preamble:
        The known preamble bit pattern (default: the paper's
        ``10101010``).
    crc:
        CRC implementation covering the length byte and payload.
    """

    preamble: np.ndarray = field(default_factory=lambda: as_bit_array(DEFAULT_PREAMBLE))
    crc: Crc16 = CRC16_CCITT

    @classmethod
    def with_preamble_bits(cls, n_bits: int) -> "FrameFormat":
        """Format with an alternating preamble of *n_bits* (Fig. 8(c) sweep)."""
        if n_bits < 1:
            raise ValueError("preamble must have at least 1 bit")
        return cls(preamble=_alternating_preamble(n_bits))

    @property
    def preamble_bits(self) -> int:
        return int(self.preamble.size)

    def header_bits(self) -> int:
        """Preamble + length field size in bits."""
        return self.preamble_bits + 8

    def overhead_bits(self) -> int:
        """All non-payload bits per frame (preamble + length + CRC)."""
        return self.header_bits() + 16

    def frame_bits(self, payload_bytes: int) -> int:
        """Total bits of a frame carrying *payload_bytes*."""
        if not 0 <= payload_bytes <= MAX_PAYLOAD_BYTES:
            raise ValueError(f"payload must be 0..{MAX_PAYLOAD_BYTES} bytes")
        return self.overhead_bits() + 8 * payload_bytes

    def build(self, payload: bytes) -> np.ndarray:
        """Serialise *payload* into frame bits."""
        payload = bytes(payload)
        if len(payload) > MAX_PAYLOAD_BYTES:
            raise ValueError(f"payload of {len(payload)} bytes exceeds {MAX_PAYLOAD_BYTES}")
        length_bits = int_to_bits(len(payload), 8)
        body = pack_bits(length_bits, bytes_to_bits(payload))
        crc_bits = self.crc.compute_bits(body)
        return pack_bits(self.preamble, body, crc_bits)

    def parse(self, bits: np.ndarray, check_preamble: bool = True) -> "Frame":
        """Parse frame bits back into a :class:`Frame`.

        Raises :class:`FrameError` on truncation, bad preamble, an
        inconsistent length field or CRC mismatch.  ``check_preamble``
        can be disabled when the caller already synchronised on the
        preamble and stripped nothing.
        """
        arr = as_bit_array(bits)
        if arr.size < self.overhead_bits():
            raise FrameError(f"{arr.size} bits shorter than minimum frame {self.overhead_bits()}")
        preamble, rest = unpack_bits(arr, self.preamble_bits, -1)
        if check_preamble and not np.array_equal(preamble, self.preamble):
            raise FrameError("preamble mismatch")
        length_bits, rest = unpack_bits(rest, 8, -1)
        length = int(bits_to_bytes(length_bits)[0])
        if length > MAX_PAYLOAD_BYTES:
            raise FrameError(f"length byte {length} exceeds max payload")
        need = 8 * length + 16
        if rest.size < need:
            raise FrameError(f"frame truncated: need {need} bits after header, have {rest.size}")
        payload_bits, crc_bits = unpack_bits(rest[:need], 8 * length, 16)
        body = pack_bits(length_bits, payload_bits)
        if not self.crc.check_bits(body, crc_bits):
            raise FrameError("CRC mismatch")
        return Frame(payload=bits_to_bytes(payload_bits), fmt=self)


@dataclass(frozen=True)
class Frame:
    """A parsed (or to-be-sent) frame."""

    payload: bytes
    fmt: FrameFormat = field(default_factory=FrameFormat)

    def to_bits(self) -> np.ndarray:
        """Serialise to on-air bits."""
        return self.fmt.build(self.payload)

    @property
    def n_bits(self) -> int:
        return self.fmt.frame_bits(len(self.payload))
