"""Tag energy harvesting and budgeting.

The excitation source "serves as a power charging infrastructure for
the tag" (paper Sec. II-A), and reflection "only consumes power in the
scale of uW" (Sec. VI).  This module makes those statements
quantitative so deployments can be checked for *energy* feasibility,
not just link feasibility:

- :class:`EnergyHarvester` -- RF power available at the tag from the
  Friis forward link, through a rectifier efficiency curve;
- :class:`EnergyStore` -- the storage capacitor: charge, leak, draw;
- :class:`TagEnergyModel` -- the duty-cycle state machine: a tag may
  transmit only while its capacitor holds enough charge for the frame,
  and must otherwise sit harvesting.

The headline output is the *sustainable duty cycle*: the fraction of
time a tag at a given distance can keep its switch toggling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.channel.pathloss import LinkBudget

__all__ = ["EnergyHarvester", "EnergyStore", "TagEnergyModel"]


@dataclass(frozen=True)
class EnergyHarvester:
    """RF energy harvesting from the excitation field.

    Attributes
    ----------
    budget:
        The link budget providing transmit power / wavelength / gains.
    efficiency:
        Rectifier (RF -> DC) efficiency at usable input levels; 0.3 is
        typical of CMOS rectifiers around -10 dBm.
    sensitivity_w:
        Input power below which the rectifier produces nothing
        (~ -20 dBm for passive designs).
    """

    budget: LinkBudget = field(default_factory=LinkBudget)
    efficiency: float = 0.3
    sensitivity_w: float = 1e-5

    def incident_power_w(self, d1_m: float, gain_tag: float = 1.6) -> float:
        """RF power captured by the tag antenna at distance *d1_m*.

        Friis forward link only: ``P_t G_t / (4 pi d1^2)`` times the
        tag antenna's effective aperture ``lambda^2 G_tag / (4 pi)``.
        """
        d1 = max(d1_m, 0.05)
        lam = self.budget.wavelength_m
        density = self.budget.tx_power_w * self.budget.gain_tx / (4.0 * math.pi * d1**2)
        aperture = lam**2 * gain_tag / (4.0 * math.pi)
        return density * aperture

    def harvested_power_w(self, d1_m: float, gain_tag: float = 1.6) -> float:
        """DC power after the rectifier (0 below sensitivity)."""
        incident = self.incident_power_w(d1_m, gain_tag)
        if incident < self.sensitivity_w:
            return 0.0
        return incident * self.efficiency


@dataclass
class EnergyStore:
    """A storage capacitor.

    Attributes
    ----------
    capacitance_f:
        Storage capacitance (10 uF: a small ceramic).
    max_voltage:
        Regulation ceiling.
    level_j:
        Current stored energy.
    leak_w:
        Constant leakage draw.
    """

    capacitance_f: float = 10e-6
    max_voltage: float = 1.8
    level_j: float = 0.0
    leak_w: float = 50e-9

    @property
    def capacity_j(self) -> float:
        """Maximum storable energy: C V^2 / 2."""
        return 0.5 * self.capacitance_f * self.max_voltage**2

    def charge(self, power_w: float, dt_s: float) -> None:
        """Integrate *power_w* for *dt_s*, minus leakage, clamped."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        delta = (power_w - self.leak_w) * dt_s
        self.level_j = min(max(self.level_j + delta, 0.0), self.capacity_j)

    def draw(self, energy_j: float) -> bool:
        """Withdraw *energy_j* if available; returns success."""
        if energy_j < 0:
            raise ValueError("energy must be non-negative")
        if energy_j > self.level_j:
            return False
        self.level_j -= energy_j
        return True


@dataclass
class TagEnergyModel:
    """Duty-cycle state machine of a passive tag.

    Attributes
    ----------
    harvester / store:
        The supply side.
    active_power_w:
        Draw while backscattering (switch driver + control logic,
        single-digit uW per the paper's Sec. VI).
    sleep_power_w:
        Draw while idle (retention + wake timer).
    """

    harvester: EnergyHarvester = field(default_factory=EnergyHarvester)
    store: EnergyStore = field(default_factory=EnergyStore)
    active_power_w: float = 5e-6
    sleep_power_w: float = 100e-9

    def frame_energy_j(self, frame_duration_s: float) -> float:
        """Energy one frame costs."""
        if frame_duration_s < 0:
            raise ValueError("duration must be non-negative")
        return self.active_power_w * frame_duration_s

    def can_transmit(self, frame_duration_s: float) -> bool:
        """True when the capacitor holds a frame's worth of energy."""
        return self.store.level_j >= self.frame_energy_j(frame_duration_s)

    def step(self, d1_m: float, dt_s: float, transmitting: bool, frame_duration_s: float = 0.0) -> bool:
        """Advance *dt_s*; returns whether a requested transmission ran.

        Harvesting continues during transmission (the tag reflects a
        fraction of the field; the rectifier still sees the rest).
        """
        harvested = self.harvester.harvested_power_w(d1_m)
        ran = False
        if transmitting and self.can_transmit(frame_duration_s):
            ran = self.store.draw(self.frame_energy_j(frame_duration_s))
        self.store.charge(harvested - self.sleep_power_w, dt_s)
        return ran

    def sustainable_duty_cycle(self, d1_m: float) -> float:
        """Long-run fraction of time the tag can spend transmitting.

        Steady state: ``duty * P_active + P_sleep + P_leak <= P_harvest``.
        Returns a value clamped to [0, 1]; 0 means the tag cannot even
        idle at this distance.
        """
        harvested = self.harvester.harvested_power_w(d1_m)
        overhead = self.sleep_power_w + self.store.leak_w
        if harvested <= overhead:
            return 0.0
        return float(min((harvested - overhead) / self.active_power_w, 1.0))

    def max_range_m(self, duty_cycle: float = 1.0, resolution_m: float = 0.05) -> float:
        """Largest ES-tag distance sustaining *duty_cycle* (linear scan)."""
        if not 0 < duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")
        d = resolution_m
        last_ok = 0.0
        while d < 100.0:
            if self.sustainable_duty_cycle(d) >= duty_cycle:
                last_ok = d
            elif last_ok:
                break
            d += resolution_m
        return last_ok
