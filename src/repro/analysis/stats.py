"""Statistical helpers for experiment reporting.

Empirical CDFs (the paper's Fig. 10), binomial confidence intervals on
error rates, and simple summaries used by the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["empirical_cdf", "cdf_at", "wilson_interval", "summarize"]


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of *samples*: returns (sorted_values, probabilities).

    ``probabilities[i]`` is the fraction of samples <= ``sorted_values[i]``.
    """
    arr = np.sort(np.asarray(samples, dtype=np.float64))
    if arr.size == 0:
        return arr, arr
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def cdf_at(samples: Sequence[float], x: float) -> float:
    """P(sample <= x) under the empirical distribution."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.count_nonzero(arr <= x) / arr.size)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation for the small error counts
    typical of low-FER experiments.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError("invalid binomial counts")
    if trials == 0:
        return 0.0, 1.0
    p = successes / trials
    denom = 1.0 + z**2 / trials
    centre = (p + z**2 / (2 * trials)) / denom
    half = z * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2)) / denom
    return max(0.0, centre - half), min(1.0, centre + half)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(samples: Sequence[float]) -> Summary:
    """Summary statistics of *samples*."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )
