"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers format them consistently (fixed-width ASCII tables and
labelled series) so ``pytest benchmarks/ --benchmark-only`` output can
be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = ["render_table", "render_series", "format_percent"]


def format_percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string ("12.34%")."""
    return f"{100.0 * value:.{digits}f}%"


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render rows as a fixed-width ASCII table.

    Cells are stringified with ``str``; column widths adapt to content.
    """
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def render_series(x_label: str, xs: Sequence, series: Mapping[str, Sequence[float]], title: str = "") -> str:
    """Render one or more y-series against a shared x-axis as a table."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        row = [x]
        for name in series:
            ys = series[name]
            row.append(f"{ys[i]:.4f}" if i < len(ys) else "")
        rows.append(row)
    return render_table(headers, rows, title=title)
