"""One-shot markdown report over every paper experiment.

``generate_report`` runs each experiment driver at a configurable
fidelity and renders a single markdown document -- tables, sparklines
and the paper's expected shape next to the measured series -- which is
how ``EXPERIMENTS.md``-style summaries are produced without hand
transcription.  Wired to ``python -m repro report``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.analysis.ascii_plots import sparkline
from repro.sim.experiments import (
    ExperimentResult,
    fig8a_distance,
    fig8b_power,
    fig8c_preamble,
    fig9a_bitrate,
    fig9b_pn_codes,
    fig9c_power_control,
    fig10_deployment_cdfs,
    fig11_asynchrony,
    fig12_working_conditions,
    headline_throughput,
    table2_power_difference,
    user_detection_accuracy,
)

__all__ = ["ReportSection", "generate_report", "DEFAULT_SECTIONS"]


@dataclass(frozen=True)
class ReportSection:
    """One experiment in the report."""

    title: str
    paper_shape: str
    runner: Callable[[int], ExperimentResult]
    rounds: int


def _section_markdown(section: ReportSection, result: ExperimentResult) -> str:
    lines = [f"## {section.title}", ""]
    lines.append(f"*Paper shape:* {section.paper_shape}")
    lines.append("")
    if result.notes:
        lines.append(f"*Parameters:* {result.notes}")
        lines.append("")
    header = "| " + result.x_label + " | " + " | ".join(result.series) + " |"
    sep = "|" + "---|" * (len(result.series) + 1)
    lines.append(header)
    lines.append(sep)
    for i, x in enumerate(result.x):
        cells = []
        for name in result.series:
            ys = result.series[name]
            cells.append(f"{ys[i]:.4f}" if i < len(ys) and isinstance(ys[i], float) else str(ys[i]))
        lines.append(f"| {x} | " + " | ".join(cells) + " |")
    lines.append("")
    for name, ys in result.series.items():
        numeric = [y for y in ys if isinstance(y, (int, float))]
        if len(numeric) == len(ys) and len(ys) > 1:
            lines.append(f"`{name}`: `{sparkline(ys)}`")
    lines.append("")
    return "\n".join(lines)


def _default_sections(scale: float) -> List[ReportSection]:
    def r(n: int) -> int:
        return max(int(n * scale), 5)

    return [
        ReportSection(
            "Table II — error rate vs power difference",
            "balanced pairs decode far better than unbalanced ones",
            lambda rounds: table2_power_difference(n_pairs=8, rounds=rounds),
            r(100),
        ),
        ReportSection(
            "Fig. 8(a) — FER vs distance",
            "flat below ~2 m, rising beyond; floor grows with tag count",
            lambda rounds: fig8a_distance(
                distances_m=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0), rounds=rounds
            ),
            r(60),
        ),
        ReportSection(
            "Fig. 8(b) — FER vs excitation power",
            "monotone improvement; near-total loss at -5 dBm",
            lambda rounds: fig8b_power(rounds=rounds),
            r(60),
        ),
        ReportSection(
            "Fig. 8(c) — FER vs preamble length",
            "monotone improvement with preamble length",
            lambda rounds: fig8c_preamble(rounds=rounds),
            r(60),
        ),
        ReportSection(
            "Fig. 9(a) — FER vs bit rate",
            "error grows with keying rate, still usable at 5 Mbps",
            lambda rounds: fig9a_bitrate(rounds=rounds),
            r(60),
        ),
        ReportSection(
            "Fig. 9(b) — Gold vs 2NC codes",
            "2NC at or below Gold; Gold degrades by 5 tags",
            lambda rounds: fig9b_pn_codes(rounds=rounds, n_groups=3),
            r(50),
        ),
        ReportSection(
            "Fig. 9(c) — power control",
            "with Algorithm 1 the error stays a multiple lower",
            lambda rounds: fig9c_power_control(rounds=rounds, n_groups=6, tag_counts=(2, 3, 4, 5)),
            r(30),
        ),
        ReportSection(
            "Fig. 10 — deployment CDFs",
            "selection+control dominates control, dominates none",
            lambda rounds: fig10_deployment_cdfs(rounds=rounds, n_groups=8),
            r(30),
        ),
        ReportSection(
            "Fig. 11 — asynchrony",
            "best when synchronised; fluctuating plateau with delay",
            lambda rounds: fig11_asynchrony(
                delays_chips=(0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0), rounds=rounds
            ),
            r(150),
        ),
        ReportSection(
            "Fig. 12 — working conditions",
            "clean >= WiFi ~ Bluetooth >> OFDM excitation",
            lambda rounds: fig12_working_conditions(rounds=rounds),
            r(120),
        ),
        ReportSection(
            "User detection (Sec. VII-B2)",
            "~99.9% correct identification of the active set",
            lambda rounds: user_detection_accuracy(n_trials=rounds),
            r(100),
        ),
    ]


DEFAULT_SECTIONS = _default_sections


def generate_report(
    path: Optional[Union[str, Path]] = None,
    scale: float = 1.0,
    sections: Optional[Sequence[ReportSection]] = None,
    include_headline: bool = True,
) -> str:
    """Run every experiment and render the markdown report.

    Returns the markdown text; writes it to *path* when given.
    *scale* multiplies every round count (0.1 for a quick look).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    sections = list(sections) if sections is not None else _default_sections(scale)
    parts: List[str] = [
        "# CBMA reproduction report",
        "",
        f"Generated by `repro.analysis.report` (scale {scale}).",
        "",
    ]
    # perf_counter, not time.time(): a wall-clock (NTP) jump mid-report
    # would make the elapsed footer negative or wildly wrong.
    t0 = time.perf_counter()
    for section in sections:
        result = section.runner(section.rounds)
        parts.append(_section_markdown(section, result))

    if include_headline:
        m = headline_throughput(rounds=max(int(30 * scale), 5)).metrics
        parts.append("## Headline — 10-tag throughput")
        parts.append("")
        parts.append(
            f"- on-air OOK rate: {m['aggregate_raw_bps'] / 1e6:.1f} Mbps (paper: 8 Mbps)\n"
            f"- CBMA goodput: {m['cbma_bps'] / 1e3:.1f} kbps at FER {m['cbma_fer']:.3f}\n"
            f"- speedup vs genie TDMA: {m['speedup_vs_single']:.1f}x\n"
            f"- speedup vs FSA (distributed single-tag): {m['speedup_vs_fsa']:.1f}x (paper: >10x)"
        )
        parts.append("")

    parts.append(f"_Total run time: {time.perf_counter() - t0:.0f} s._")
    text = "\n".join(parts)
    if path is not None:
        Path(path).write_text(text)
    return text
