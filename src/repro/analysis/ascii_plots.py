"""Terminal plotting: sparklines, bar charts and heatmaps.

The benchmark harness runs headless; these helpers turn experiment
series into compact unicode plots so the printed reports read like the
paper's figures without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["sparkline", "bar_chart", "heatmap", "line_plot"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_HEAT_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], lo: float = None, hi: float = None) -> str:
    """A one-line unicode sparkline of *values*."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return ""
    lo = float(arr.min()) if lo is None else lo
    hi = float(arr.max()) if hi is None else hi
    span = max(hi - lo, 1e-12)
    idx = np.clip(((arr - lo) / span) * (len(_SPARK_LEVELS) - 1), 0, len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(i)] for i in idx)


def bar_chart(labels: Sequence[str], values: Sequence[float], width: int = 40, unit: str = "") -> str:
    """Horizontal bar chart with right-aligned labels."""
    if len(labels) != len(values):
        raise ValueError("one label per value required")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return ""
    peak = max(float(arr.max()), 1e-12)
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, v in zip(labels, arr):
        bar = "█" * max(int(round(width * v / peak)), 1 if v > 0 else 0)
        lines.append(f"{str(label).rjust(label_w)} | {bar} {v:.3g}{unit}")
    return "\n".join(lines)


def heatmap(matrix: np.ndarray, flip_rows: bool = True) -> str:
    """Dense ASCII rendering of a 2-D array (rows top-down by default
    flipped so increasing y points up, like a figure)."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("heatmap needs a 2-D array")
    lo, hi = float(arr.min()), float(arr.max())
    span = max(hi - lo, 1e-12)
    idx = ((arr - lo) / span * (len(_HEAT_LEVELS) - 1)).astype(int)
    rows = idx[::-1] if flip_rows else idx
    return "\n".join("".join(_HEAT_LEVELS[v] for v in row) for row in rows)


def line_plot(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
) -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series gets a marker (``*+ox#``...).  Axis ranges adapt to the
    pooled data; y grows upward.
    """
    markers = "*+ox#@&%"
    xs = np.asarray(xs, dtype=np.float64)
    all_y = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    if xs.size == 0 or all_y.size == 0:
        return ""
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    for k, (name, ys) in enumerate(series.items()):
        marker = markers[k % len(markers)]
        for x, y in zip(xs, np.asarray(ys, dtype=np.float64)):
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = ["".join(row) for row in grid]
    legend = "   ".join(
        f"{markers[k % len(markers)]} {name}" for k, name in enumerate(series)
    )
    header = f"y: {y_lo:.3g} .. {y_hi:.3g}    x: {x_lo:.3g} .. {x_hi:.3g}"
    return "\n".join([header] + lines + [legend])
