"""Result analysis: statistics and plain-text report rendering.

- :mod:`repro.analysis.stats` -- CDFs, confidence intervals, summaries.
- :mod:`repro.analysis.tables` -- ASCII tables/series for benchmarks.
- :mod:`repro.analysis.ascii_plots` -- sparklines, bars, heatmaps.
- :mod:`repro.analysis.shapes` -- qualitative shape assertions.
- :mod:`repro.analysis.report` -- one-shot markdown experiment report.
"""

from repro.analysis.ascii_plots import bar_chart, heatmap, line_plot, sparkline
from repro.analysis.shapes import (
    dominates,
    is_roughly_monotone,
    knee_index,
    ordering_holds,
    plateau_stats,
)
from repro.analysis.stats import Summary, cdf_at, empirical_cdf, summarize, wilson_interval
from repro.analysis.tables import format_percent, render_series, render_table

__all__ = [
    "bar_chart",
    "heatmap",
    "line_plot",
    "sparkline",
    "dominates",
    "is_roughly_monotone",
    "knee_index",
    "ordering_holds",
    "plateau_stats",
    "Summary",
    "cdf_at",
    "empirical_cdf",
    "summarize",
    "wilson_interval",
    "format_percent",
    "render_series",
    "render_table",
]
