"""Shape assertions for noisy experiment series.

Benchmarks must assert the paper's *qualitative* findings -- who wins,
where the knee falls, what grows with what -- against Monte-Carlo-noisy
series.  Raw ``assert a < b`` comparisons either flake (too tight) or
stop meaning anything (too loose).  This module gives the benchmark
suite a shared, tested vocabulary:

- :func:`is_roughly_monotone` -- trend with bounded local violations;
- :func:`dominates` -- one series at-or-below another everywhere;
- :func:`knee_index` -- where a flat-then-rising series takes off;
- :func:`plateau_stats` -- level and spread of a fluctuating plateau;
- :func:`ordering_holds` -- multi-series ordering with slack.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "is_roughly_monotone",
    "dominates",
    "knee_index",
    "plateau_stats",
    "ordering_holds",
]


def is_roughly_monotone(
    values: Sequence[float],
    increasing: bool = True,
    slack: float = 0.05,
) -> bool:
    """True when the series trends in one direction.

    Requires (a) every local counter-move to be within *slack* and
    (b) the endpoints to respect the direction (with the same slack).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size < 2:
        return True
    diffs = np.diff(arr if increasing else -arr)
    if np.any(diffs < -slack):
        return False
    span = (arr[-1] - arr[0]) if increasing else (arr[0] - arr[-1])
    return span >= -slack


def dominates(
    better: Sequence[float],
    worse: Sequence[float],
    slack: float = 0.02,
) -> bool:
    """True when *better* <= *worse* pointwise (lower-is-better), with slack."""
    a = np.asarray(better, dtype=np.float64)
    b = np.asarray(worse, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return bool(np.all(a <= b + slack))


def knee_index(
    xs: Sequence[float],
    values: Sequence[float],
    rise_fraction: float = 0.5,
) -> int:
    """Index where a flat-then-rising series takes off.

    Defined as the first index whose value exceeds
    ``flat_level + rise_fraction * (max - flat_level)`` where the flat
    level is the median of the first third.  Returns ``len(values)``
    when the series never rises (no knee within range).
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size < 3:
        raise ValueError("need at least 3 points to locate a knee")
    flat = float(np.median(v[: max(v.size // 3, 1)]))
    peak = float(v.max())
    if peak <= flat:
        return int(v.size)
    threshold = flat + rise_fraction * (peak - flat)
    above = np.flatnonzero(v > threshold)
    return int(above[0]) if above.size else int(v.size)


def plateau_stats(values: Sequence[float]) -> Tuple[float, float]:
    """(mean, peak-to-peak) of a fluctuating plateau."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("empty plateau")
    return float(v.mean()), float(v.max() - v.min())


def ordering_holds(
    series_in_order: Sequence[Sequence[float]],
    slack: float = 0.02,
    on: str = "mean",
) -> bool:
    """True when the given series are ordered best-to-worst.

    ``on`` selects the statistic compared: "mean" or "median".
    Lower is better (error-rate convention).
    """
    if on not in ("mean", "median"):
        raise ValueError("on must be 'mean' or 'median'")
    stat = np.mean if on == "mean" else np.median
    levels = [float(stat(np.asarray(s, dtype=np.float64))) for s in series_in_order]
    return all(a <= b + slack for a, b in zip(levels, levels[1:]))
