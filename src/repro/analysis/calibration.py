"""Automatic recalibration of the simulator's one fitted constant.

The simulator pins its operating regime with a single number --
``CALIBRATED_EXTRA_NOISE_DB`` (see ``docs/physics.md`` §3).  Any change
to the receiver, codes or impedance model shifts where the FER
waterfall sits, and the constant must follow.  Rather than re-deriving
it by hand, :func:`calibrate_noise_floor` searches for the noise level
that places a chosen reference condition at a chosen FER, and
:func:`waterfall` maps the FER-vs-noise curve so the margin around the
chosen point is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.channel.geometry import Deployment
from repro.channel.noise import NoiseModel
from repro.sim.network import CbmaConfig, CbmaNetwork

__all__ = ["ReferenceCondition", "calibrate_noise_floor", "waterfall"]


@dataclass(frozen=True)
class ReferenceCondition:
    """The scenario whose FER anchors the calibration.

    Defaults reproduce the paper's benchmark: 2 tags on the bench row,
    ES-tag 0.5 m, tag-RX 1 m, defaults elsewhere.
    """

    n_tags: int = 2
    tag_to_rx_m: float = 1.0
    rounds: int = 60
    seed: int = 7

    def measure_fer(self, extra_noise_db: float) -> float:
        """FER of the reference condition at a given noise floor."""
        cfg = CbmaConfig(
            n_tags=self.n_tags,
            seed=self.seed,
            noise=NoiseModel(extra_noise_db=extra_noise_db),
        )
        net = CbmaNetwork(cfg, Deployment.linear(self.n_tags, tag_to_rx=self.tag_to_rx_m))
        return net.run_rounds(self.rounds).fer


def calibrate_noise_floor(
    target_fer: float = 0.02,
    condition: Optional[ReferenceCondition] = None,
    lo_db: float = 30.0,
    hi_db: float = 70.0,
    tolerance_db: float = 0.5,
    max_iterations: int = 12,
) -> Tuple[float, float]:
    """Bisection search for the extra-noise level hitting *target_fer*.

    FER is monotone (noisily) in the noise floor, so bisection on the
    measured FER converges to the dB level where the reference
    condition crosses the target.  Returns ``(extra_noise_db, fer)``
    at the solution.
    """
    if not 0.0 < target_fer < 1.0:
        raise ValueError("target_fer must be in (0, 1)")
    if lo_db >= hi_db:
        raise ValueError("lo_db must be below hi_db")
    condition = condition or ReferenceCondition()

    fer_lo = condition.measure_fer(lo_db)
    fer_hi = condition.measure_fer(hi_db)
    if fer_lo > target_fer:
        return lo_db, fer_lo  # even the quiet end is above target
    if fer_hi < target_fer:
        return hi_db, fer_hi  # even the loud end is below target

    lo, hi = lo_db, hi_db
    fer_mid = fer_hi
    for _ in range(max_iterations):
        if hi - lo <= tolerance_db:
            break
        mid = (lo + hi) / 2.0
        fer_mid = condition.measure_fer(mid)
        if fer_mid < target_fer:
            lo = mid
        else:
            hi = mid
    mid = (lo + hi) / 2.0
    return mid, condition.measure_fer(mid)


def waterfall(
    noise_levels_db: Sequence[float],
    condition: Optional[ReferenceCondition] = None,
) -> List[Tuple[float, float]]:
    """(noise_db, fer) samples of the reference condition's waterfall."""
    condition = condition or ReferenceCondition()
    return [(float(db), condition.measure_fer(float(db))) for db in noise_levels_db]
