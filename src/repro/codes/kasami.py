"""Kasami (small set) spreading codes.

An extension beyond the paper's two families: the *small Kasami set*
achieves the Welch lower bound on maximum cross-correlation --
``(2^(n/2) + 1) / (2^n - 1)`` for even degree ``n`` -- which is roughly
half the Gold bound.  The set is small (``2^(n/2)`` codes), so it fits
CBMA's 10-tag regime perfectly and serves as the "how much better could
the codes be?" ablation in the benchmarks.

Construction: take an m-sequence ``u`` of even degree ``n`` and its
decimation ``w`` by ``2^(n/2) + 1`` (an m-sequence of degree ``n/2``
repeated); the set is ``{u} U {u XOR shift(w, k)}`` for all shifts of
``w``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.codes.lfsr import PRIMITIVE_POLYNOMIALS, m_sequence

__all__ = ["KasamiFamily", "kasami_codes"]


class KasamiFamily:
    """The small Kasami set for even *degree*.

    Parameters
    ----------
    degree:
        Even LFSR degree ``n``; code length ``2^n - 1``, family size
        ``2^(n/2)``.  Supported degrees: 4, 6, 8, 10.
    """

    def __init__(self, degree: int):
        if degree % 2 != 0:
            raise ValueError(f"Kasami small set needs even degree, got {degree}")
        if degree not in PRIMITIVE_POLYNOMIALS:
            raise ValueError(f"no primitive polynomial catalogued for degree {degree}")
        self.degree = degree
        self.length = (1 << degree) - 1
        self.size = 1 << (degree // 2)
        taps = PRIMITIVE_POLYNOMIALS[degree][0]
        self._u = m_sequence(taps)
        decimation = (1 << (degree // 2)) + 1
        # w: decimate u by 2^(n/2)+1; its period divides 2^(n/2)-1.
        idx = (np.arange(self.length) * decimation) % self.length
        self._w = self._u[idx]

    def code(self, index: int) -> np.ndarray:
        """The *index*-th Kasami code as a 0/1 uint8 array.

        Index 0 is the base m-sequence; index ``k + 1`` is
        ``u XOR roll(w, k)``.
        """
        if not 0 <= index < self.size:
            raise ValueError(f"index {index} outside family of size {self.size}")
        if index == 0:
            return self._u.copy()
        return np.bitwise_xor(self._u, np.roll(self._w, index - 1)).astype(np.uint8)

    def codes(self, count: int = None) -> List[np.ndarray]:
        """The first *count* codes (all by default)."""
        count = self.size if count is None else count
        if count > self.size:
            raise ValueError(f"requested {count} codes but family has {self.size}")
        return [self.code(i) for i in range(count)]

    @property
    def welch_bound(self) -> float:
        """The theoretical max-cross-correlation of the small set."""
        return ((1 << (self.degree // 2)) + 1) / self.length

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KasamiFamily(degree={self.degree}, length={self.length}, size={self.size})"


def kasami_codes(count: int, length: int = 63) -> List[np.ndarray]:
    """Convenience constructor: *count* Kasami codes of chip length *length*.

    *length* must be ``2^n - 1`` for an even supported degree.
    """
    degree = int(np.log2(length + 1))
    if (1 << degree) - 1 != length:
        raise ValueError(f"length {length} is not 2^n - 1")
    family = KasamiFamily(degree)
    return family.codes(count)
