"""Walsh-Hadamard codes.

Walsh codes are *perfectly* orthogonal under synchronous alignment and
are the textbook contrast to PN families: CBMA cannot use them directly
because its tags are asynchronous (Sec. II-C), but they serve as the
synchronous upper-bound baseline in our ablation benchmarks and tests.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["hadamard_matrix", "walsh_codes", "WalshFamily"]


def hadamard_matrix(order: int) -> np.ndarray:
    """Sylvester-construction Hadamard matrix of the given *order*.

    *order* must be a power of two.  Entries are +/-1 (int8).
    """
    if order < 1 or order & (order - 1):
        raise ValueError(f"order must be a power of two, got {order}")
    h = np.array([[1]], dtype=np.int8)
    while h.shape[0] < order:
        h = np.block([[h, h], [h, -h]]).astype(np.int8)
    return h


def walsh_codes(count: int, length: int) -> List[np.ndarray]:
    """The first *count* Walsh codes of chip length *length* as 0/1 arrays.

    Row 0 (all ones) is skipped because an all-ones spreading code is a
    plain unmodulated carrier and carries no code-domain separation.
    """
    if count + 1 > length:
        raise ValueError(f"at most {length - 1} usable Walsh codes of length {length}")
    h = hadamard_matrix(length)
    return [((h[i + 1] + 1) // 2).astype(np.uint8) for i in range(count)]


class WalshFamily:
    """Family wrapper matching the Gold/2NC interface."""

    def __init__(self, size: int, length: int = 32):
        self.size = size
        self.length = length
        self._codes = walsh_codes(size, length)

    def code(self, index: int) -> np.ndarray:
        if not 0 <= index < self.size:
            raise ValueError(f"index {index} outside family of size {self.size}")
        return self._codes[index].copy()

    def codes(self, count: int = None) -> List[np.ndarray]:
        count = self.size if count is None else count
        if count > self.size:
            raise ValueError(f"requested {count} codes but family has {self.size}")
        return [self.code(i) for i in range(count)]

    def __len__(self) -> int:
        return self.size
