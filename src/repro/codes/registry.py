"""Factory for spreading-code families.

Experiment configuration names a code family by string ("gold", "2nc",
"walsh"); this registry turns that name plus (size, length) into the
actual code set, and is the single place new families plug in.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.codes.gold import gold_codes
from repro.codes.kasami import kasami_codes
from repro.codes.twonc import twonc_codes
from repro.codes.walsh import walsh_codes

__all__ = ["available_families", "make_codes", "register_family"]

_FAMILIES: Dict[str, Callable[[int, int], List[np.ndarray]]] = {}


def register_family(name: str, builder: Callable[[int, int], List[np.ndarray]]) -> None:
    """Register *builder(count, length)* under *name* (case-insensitive)."""
    key = name.lower()
    if key in _FAMILIES:
        raise ValueError(f"code family {name!r} already registered")
    _FAMILIES[key] = builder


def available_families() -> List[str]:
    """Sorted list of registered family names."""
    return sorted(_FAMILIES)


def make_codes(family: str, count: int, length: int) -> List[np.ndarray]:
    """Build *count* spreading codes of chip length *length*.

    Parameters
    ----------
    family:
        One of :func:`available_families` ("gold", "2nc", "walsh",
        "kasami").  Gold/Kasami lengths must be ``2^n - 1`` (Kasami:
        even degree); Walsh lengths a power of two; 2NC lengths even.
    """
    key = family.lower()
    if key not in _FAMILIES:
        raise ValueError(f"unknown code family {family!r}; available: {available_families()}")
    return _FAMILIES[key](count, length)


register_family("gold", lambda count, length: gold_codes(count, length))
register_family("2nc", lambda count, length: twonc_codes(count, length))
register_family("walsh", lambda count, length: walsh_codes(count, length))
register_family("kasami", lambda count, length: kasami_codes(count, length))
