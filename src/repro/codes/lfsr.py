"""Linear-feedback shift registers and maximal-length sequences.

Gold codes (paper Sec. III-A, ref. [8]) are built from *preferred pairs*
of m-sequences, which in turn come from LFSRs with primitive feedback
polynomials.  This module provides a Fibonacci LFSR and a catalogue of
primitive polynomials for the register lengths used in spread-spectrum
practice (5..12 bits, i.e. code lengths 31..4095).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Lfsr", "m_sequence", "PRIMITIVE_POLYNOMIALS", "PREFERRED_PAIRS"]

# Primitive polynomial taps (exponents with non-zero coefficients,
# excluding x^0) for GF(2), indexed by register degree.  Standard tables.
PRIMITIVE_POLYNOMIALS = {
    3: [(3, 1)],
    4: [(4, 1)],
    5: [(5, 2), (5, 4, 3, 2), (5, 4, 2, 1)],
    6: [(6, 1), (6, 5, 2, 1), (6, 5, 3, 2)],
    7: [(7, 3), (7, 3, 2, 1), (7, 4, 3, 2), (7, 6, 4, 2), (7, 6, 3, 1), (7, 6, 5, 2)],
    8: [(8, 4, 3, 2), (8, 6, 5, 3), (8, 6, 5, 2), (8, 5, 3, 1)],
    9: [(9, 4), (9, 6, 4, 3), (9, 8, 5, 4)],
    10: [(10, 3), (10, 8, 3, 2), (10, 4, 3, 1)],
    11: [(11, 2), (11, 8, 5, 2)],
    12: [(12, 6, 4, 1)],
}

# Preferred pairs of polynomials for Gold code construction: for each
# degree, a pair of primitive polynomials whose m-sequences have
# three-valued cross-correlation.  These are classic published pairs.
PREFERRED_PAIRS = {
    5: ((5, 2), (5, 4, 3, 2)),
    6: ((6, 1), (6, 5, 2, 1)),
    7: ((7, 3), (7, 3, 2, 1)),
    9: ((9, 4), (9, 6, 4, 3)),
    10: ((10, 3), (10, 8, 3, 2)),
    11: ((11, 2), (11, 8, 5, 2)),
}


class Lfsr:
    """A Fibonacci linear-feedback shift register over GF(2).

    Parameters
    ----------
    taps:
        Exponents of the feedback polynomial with non-zero coefficients,
        e.g. ``(5, 2)`` for x^5 + x^2 + 1.  The largest exponent sets the
        register degree.
    state:
        Initial register contents as an iterable of bits (length equal
        to the degree).  Defaults to all ones, the conventional non-zero
        seed.
    """

    def __init__(self, taps: Sequence[int], state: Optional[Sequence[int]] = None):
        taps = tuple(sorted(set(int(t) for t in taps), reverse=True))
        if not taps or taps[-1] < 1:
            raise ValueError(f"invalid taps {taps!r}: exponents must be >= 1")
        self.taps = taps
        self.degree = taps[0]
        if state is None:
            state = [1] * self.degree
        state = [int(b) & 1 for b in state]
        if len(state) != self.degree:
            raise ValueError(f"state length {len(state)} != degree {self.degree}")
        if not any(state):
            raise ValueError("LFSR state must be non-zero")
        self._state = list(state)
        # Fibonacci recurrence for p(x) = x^n + ... + 1 is
        #   s[k+n] = s[k] XOR (XOR of s[k+e] for lower exponents e).
        # With state[i] holding s[k+i], the feedback therefore reads
        # cell 0 (the constant term) plus each tap exponent below n.
        self._tap_idx = [0] + [t for t in self.taps if t != self.degree]

    @property
    def state(self) -> List[int]:
        """Current register contents (a copy)."""
        return list(self._state)

    @property
    def period(self) -> int:
        """Maximal period for this degree: 2^degree - 1."""
        return (1 << self.degree) - 1

    def step(self) -> int:
        """Advance one clock; return the output bit."""
        out = self._state[0]
        feedback = 0
        for idx in self._tap_idx:
            feedback ^= self._state[idx]
        self._state = self._state[1:] + [feedback]
        return out

    def run(self, n: int) -> np.ndarray:
        """Generate *n* output bits as a uint8 array."""
        if n < 0:
            raise ValueError("n must be non-negative")
        out = np.empty(n, dtype=np.uint8)
        for i in range(n):
            out[i] = self.step()
        return out


def m_sequence(taps: Sequence[int], state: Optional[Sequence[int]] = None) -> np.ndarray:
    """One full period (2^degree - 1 bits) of the m-sequence for *taps*.

    Raises :class:`ValueError` if the polynomial is not primitive (the
    produced sequence would repeat early); this is verified by checking
    that the register does not return to its initial state before the
    full period.
    """
    reg = Lfsr(taps, state)
    initial = reg.state
    out = np.empty(reg.period, dtype=np.uint8)
    for i in range(reg.period):
        out[i] = reg.step()
        if i + 1 < reg.period and reg.state == initial:
            raise ValueError(f"taps {taps!r} are not primitive: period {i + 1} < {reg.period}")
    if reg.state != initial:
        raise ValueError(f"taps {taps!r} are not primitive: register did not cycle")
    return out
