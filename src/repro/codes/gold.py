"""Gold code construction (paper ref. [8], R. Gold 1967).

A Gold family of length ``N = 2^n - 1`` is built from a preferred pair
of m-sequences ``u`` and ``v``: the family contains ``u``, ``v`` and the
N sequences ``u XOR shift(v, k)``, giving ``N + 2`` codes whose pairwise
cross-correlation takes only three values — the property that lets CBMA
assign one code per tag and separate concurrent transmissions.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.codes.lfsr import PREFERRED_PAIRS, m_sequence

__all__ = ["GoldFamily", "gold_codes"]


class GoldFamily:
    """The full Gold code family for register degree *degree*.

    Parameters
    ----------
    degree:
        LFSR degree ``n``; code length is ``2^n - 1``.  Supported
        degrees are those with a catalogued preferred pair
        (5, 6, 7, 9, 10, 11).  Degree 8 has no preferred pair (a known
        number-theoretic fact), so it is rejected.
    """

    def __init__(self, degree: int):
        if degree not in PREFERRED_PAIRS:
            raise ValueError(
                f"no preferred pair catalogued for degree {degree}; "
                f"available: {sorted(PREFERRED_PAIRS)}"
            )
        self.degree = degree
        self.length = (1 << degree) - 1
        taps_u, taps_v = PREFERRED_PAIRS[degree]
        self._u = m_sequence(taps_u)
        self._v = m_sequence(taps_v)

    @property
    def size(self) -> int:
        """Number of codes in the family (2^n + 1)."""
        return self.length + 2

    def code(self, index: int) -> np.ndarray:
        """The *index*-th code of the family as a 0/1 uint8 array.

        Index 0 is the first m-sequence, index 1 the second, and index
        ``k + 2`` is ``u XOR roll(v, k)``.
        """
        if not 0 <= index < self.size:
            raise ValueError(f"index {index} outside family of size {self.size}")
        if index == 0:
            return self._u.copy()
        if index == 1:
            return self._v.copy()
        shift = index - 2
        return np.bitwise_xor(self._u, np.roll(self._v, shift)).astype(np.uint8)

    def codes(self, count: int) -> List[np.ndarray]:
        """The first *count* codes of the family."""
        if count > self.size:
            raise ValueError(f"requested {count} codes but family has {self.size}")
        return [self.code(i) for i in range(count)]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GoldFamily(degree={self.degree}, length={self.length}, size={self.size})"


def gold_codes(count: int, length: int = 31, offset: int = 0) -> List[np.ndarray]:
    """Convenience constructor: *count* Gold codes of chip length *length*.

    *length* must be ``2^n - 1`` for a supported degree.  *offset* skips
    the first codes of the family, useful for assigning disjoint code
    sets to different cells.
    """
    degree = int(np.log2(length + 1))
    if (1 << degree) - 1 != length:
        raise ValueError(f"length {length} is not 2^n - 1")
    family = GoldFamily(degree)
    if offset + count > family.size:
        raise ValueError(f"offset {offset} + count {count} exceeds family size {family.size}")
    return [family.code(offset + i) for i in range(count)]
