"""Forward error correction for frame payloads.

An extension beyond the paper: CBMA frames fail on a single wrong bit
(CRC), so at the FER knee a little FEC buys a lot.  The paper's
discussion rules out computationally heavy schemes at the *tag* --
which is exactly why a Hamming code fits: encoding is a handful of XOR
taps (cheaper than the spreading operation the tag already performs),
and all decoding cost lives at the receiver.

Provided:

- :class:`HammingCode` -- the classic (7,4) single-error-correcting
  code, plus the extended (8,4) variant that also detects double
  errors;
- :class:`BlockInterleaver` -- spreads burst errors (a faded chip
  window hits adjacent bits) across many codewords;
- :class:`FecPipeline` -- encode/decode helper chaining both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.bits import as_bit_array

__all__ = ["HammingCode", "BlockInterleaver", "FecPipeline"]


class HammingCode:
    """Hamming (7,4) or extended (8,4) block code over GF(2).

    Parameters
    ----------
    extended:
        When true, appends an overall parity bit: the (8,4) code
        corrects single errors *and* flags (uncorrectable) double
        errors per block.
    """

    #: Generator matrix for (7,4): data bits d1..d4 -> p1 p2 d1 p3 d2 d3 d4.
    _G = np.array(
        [
            [1, 1, 1, 0, 0, 0, 0],
            [1, 0, 0, 1, 1, 0, 0],
            [0, 1, 0, 1, 0, 1, 0],
            [1, 1, 0, 1, 0, 0, 1],
        ],
        dtype=np.uint8,
    )
    #: Parity-check matrix H for (7,4); syndrome = H @ codeword.
    _H = np.array(
        [
            [1, 0, 1, 0, 1, 0, 1],
            [0, 1, 1, 0, 0, 1, 1],
            [0, 0, 0, 1, 1, 1, 1],
        ],
        dtype=np.uint8,
    )

    def __init__(self, extended: bool = False):
        self.extended = extended
        self.k = 4
        self.n = 8 if extended else 7

    @property
    def rate(self) -> float:
        """Code rate k/n."""
        return self.k / self.n

    def encode(self, bits) -> np.ndarray:
        """Encode a bit array (length multiple of 4) into codewords."""
        data = as_bit_array(bits)
        if data.size % self.k != 0:
            raise ValueError(f"data length {data.size} not a multiple of {self.k}")
        blocks = data.reshape(-1, self.k)
        codewords = (blocks @ self._G) % 2
        if self.extended:
            parity = codewords.sum(axis=1) % 2
            codewords = np.concatenate([codewords, parity[:, None]], axis=1)
        return codewords.reshape(-1).astype(np.uint8)

    def decode(self, bits) -> tuple:
        """Decode codewords back to data bits.

        Returns ``(data_bits, corrected, detected_uncorrectable)``:
        the decoded bits, how many single-bit errors were corrected,
        and how many blocks showed uncorrectable corruption (extended
        code only; plain (7,4) miscorrects double errors silently, as
        theory says it must).
        """
        coded = as_bit_array(bits)
        if coded.size % self.n != 0:
            raise ValueError(f"coded length {coded.size} not a multiple of {self.n}")
        words = coded.reshape(-1, self.n).copy()
        corrected = 0
        uncorrectable = 0
        inner = words[:, :7]
        syndromes = (inner @ self._H.T) % 2
        syndrome_val = syndromes @ np.array([1, 2, 4])
        for i in range(words.shape[0]):
            s = int(syndrome_val[i])
            if self.extended:
                overall = int(words[i].sum() % 2)
                if s and overall:  # single error (possibly in parity pos 1..7)
                    inner[i, s - 1] ^= 1
                    corrected += 1
                elif s and not overall:  # double error: detectable, not fixable
                    uncorrectable += 1
                # s == 0 and overall == 1: error in the extra parity bit; ignore.
            else:
                if s:
                    inner[i, s - 1] ^= 1
                    corrected += 1
        # Data bits live at codeword positions 3, 5, 6, 7 (1-indexed).
        data = inner[:, [2, 4, 5, 6]].reshape(-1).astype(np.uint8)
        return data, corrected, uncorrectable


@dataclass(frozen=True)
class BlockInterleaver:
    """Row-in, column-out block interleaver of the given *depth*.

    Writing rows and reading columns separates bits that were adjacent
    on the air by *depth* positions, turning a burst (a faded window, a
    Bluetooth slot hit) into isolated single-bit errors that Hamming
    can fix.
    """

    depth: int = 8

    def interleave(self, bits) -> np.ndarray:
        """Permute *bits* (length multiple of depth)."""
        arr = as_bit_array(bits)
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if arr.size % self.depth != 0:
            raise ValueError(f"length {arr.size} not a multiple of depth {self.depth}")
        return arr.reshape(-1, self.depth).T.reshape(-1).copy()

    def deinterleave(self, bits) -> np.ndarray:
        """Inverse of :meth:`interleave`."""
        arr = as_bit_array(bits)
        if arr.size % self.depth != 0:
            raise ValueError(f"length {arr.size} not a multiple of depth {self.depth}")
        cols = arr.size // self.depth
        return arr.reshape(self.depth, cols).T.reshape(-1).copy()


@dataclass
class FecPipeline:
    """Hamming + interleaving, sized automatically for a payload.

    ``encode`` pads the input to a whole number of data blocks, FEC
    encodes, then interleaves; ``decode`` inverts the chain and strips
    the padding.  The original bit length must be conveyed out of band
    (CBMA's length field does this for payload bytes).
    """

    code: HammingCode
    interleaver: Optional[BlockInterleaver] = None

    def encoded_length(self, n_bits: int) -> int:
        """Bits on the air for *n_bits* of data."""
        blocks = -(-n_bits // self.code.k)
        coded = blocks * self.code.n
        if self.interleaver and coded % self.interleaver.depth != 0:
            coded += self.interleaver.depth - coded % self.interleaver.depth
        return coded

    def encode(self, bits) -> np.ndarray:
        data = as_bit_array(bits)
        pad = (-data.size) % self.code.k
        padded = np.concatenate([data, np.zeros(pad, dtype=np.uint8)])
        coded = self.code.encode(padded)
        if self.interleaver:
            extra = (-coded.size) % self.interleaver.depth
            coded = np.concatenate([coded, np.zeros(extra, dtype=np.uint8)])
            coded = self.interleaver.interleave(coded)
        return coded

    def decode(self, bits, n_data_bits: int) -> tuple:
        """Decode and truncate to *n_data_bits*; returns (bits, corrected)."""
        coded = as_bit_array(bits)
        if self.interleaver:
            coded = self.interleaver.deinterleave(coded)
        usable = (coded.size // self.code.n) * self.code.n
        data, corrected, _uncorrectable = self.code.decode(coded[:usable])
        if data.size < n_data_bits:
            raise ValueError(f"decoded {data.size} bits < requested {n_data_bits}")
        return data[:n_data_bits], corrected
