"""Spreading-code families for coded backscatter multiple access.

CBMA separates concurrent tags in the *code domain*: each tag spreads
its bits with a per-tag PN sequence (paper Sec. II-B/II-C).  This
subpackage implements every family the paper uses or contrasts with:

- :mod:`repro.codes.lfsr` -- LFSRs and maximal-length sequences.
- :mod:`repro.codes.gold` -- Gold codes (ref. [8]).
- :mod:`repro.codes.twonc` -- 2NC codes as modified by CBMA (ref. [9]).
- :mod:`repro.codes.walsh` -- Walsh-Hadamard synchronous baseline.
- :mod:`repro.codes.kasami` -- small Kasami set (Welch-bound optimal).
- :mod:`repro.codes.properties` -- correlation analytics and invariants.
- :mod:`repro.codes.registry` -- name-based family factory.
"""

from repro.codes.gold import GoldFamily, gold_codes
from repro.codes.kasami import KasamiFamily, kasami_codes
from repro.codes.lfsr import Lfsr, m_sequence, PRIMITIVE_POLYNOMIALS, PREFERRED_PAIRS
from repro.codes.properties import (
    CodeFamilyReport,
    analyze_family,
    balance,
    periodic_autocorrelation,
    periodic_crosscorrelation,
)
from repro.codes.registry import available_families, make_codes, register_family
from repro.codes.twonc import TwoNCFamily, twonc_codes
from repro.codes.walsh import WalshFamily, hadamard_matrix, walsh_codes

__all__ = [
    "GoldFamily",
    "gold_codes",
    "KasamiFamily",
    "kasami_codes",
    "Lfsr",
    "m_sequence",
    "PRIMITIVE_POLYNOMIALS",
    "PREFERRED_PAIRS",
    "CodeFamilyReport",
    "analyze_family",
    "balance",
    "periodic_autocorrelation",
    "periodic_crosscorrelation",
    "available_families",
    "make_codes",
    "register_family",
    "TwoNCFamily",
    "twonc_codes",
    "WalshFamily",
    "hadamard_matrix",
    "walsh_codes",
]
