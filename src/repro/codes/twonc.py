"""2NC spreading codes (paper ref. [9], as modified by CBMA).

The paper adopts "2NC codes" -- length-2N chip sequences, one per tag --
and modifies them so that *the chip sequence representing bit 0 is the
bitwise negation of the one representing bit 1* (footnote 2).  The paper
reports that 2NC codes exhibit better orthogonality than Gold codes for
its small tag populations (2..10 tags), which is what Fig. 9(b)
measures.

The original reference gives a construction only for specific
parameters, so this reproduction *reconstructs* the family as a
deterministic numerically-optimised code set: starting from LFSR-seeded
balanced candidates, a greedy minimax search selects codes that minimise
the worst pairwise periodic cross-correlation.  For small families this
beats the Gold three-valued bound, reproducing the paper's observed
ordering (2NC < Gold error rate, with Gold degrading sharply at 5 tags).
The search is seeded and cached, so the family is a pure function of
``(size, length)`` -- tags and receiver independently derive identical
codes, as required for a distributed system.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.utils.bits import bits_to_bipolar

__all__ = ["TwoNCFamily", "twonc_codes"]

_SEARCH_SEED = 0x27C3  # fixed seed so tags and receiver derive identical codes
_CANDIDATE_POOL = 768
_REFINE_ROUNDS = 4


def _max_periodic_crosscorr(a: np.ndarray, b: np.ndarray) -> float:
    """Worst absolute periodic cross-correlation over all cyclic shifts.

    Codes are compared in bipolar form and the value is normalised by
    the code length, so 0 is perfectly orthogonal and 1 identical.
    Periodic (cyclic) correlation is the right metric for CBMA because
    tags are *asynchronous*: a receiver may align anywhere within a
    neighbour's repeating chip stream.
    """
    fa = np.fft.fft(a)
    fb = np.fft.fft(b)
    corr = np.fft.ifft(fa * np.conj(fb)).real
    return float(np.max(np.abs(corr)) / a.size)


def _max_offpeak_autocorr(a: np.ndarray) -> float:
    """Worst absolute periodic autocorrelation away from zero shift."""
    fa = np.fft.fft(a)
    corr = np.fft.ifft(fa * np.conj(fa)).real
    corr[0] = 0.0
    return float(np.max(np.abs(corr)) / a.size)


def _balanced_candidates(length: int, pool: int, rng: np.random.Generator) -> List[np.ndarray]:
    """Generate *pool* distinct balanced 0/1 candidate codes."""
    seen = set()
    out: List[np.ndarray] = []
    half = length // 2
    base = np.array([1] * half + [0] * (length - half), dtype=np.uint8)
    while len(out) < pool:
        cand = rng.permutation(base)
        key = cand.tobytes()
        if key in seen:
            continue
        seen.add(key)
        out.append(cand)
    return out


def _family_score(indices: List[int], cross: np.ndarray, auto: np.ndarray) -> float:
    """Minimax family score: worst pairwise cross + small auto penalty."""
    worst_cross = 0.0
    for a in range(len(indices)):
        for b in range(a + 1, len(indices)):
            worst_cross = max(worst_cross, cross[indices[a], indices[b]])
    worst_auto = max(auto[i] for i in indices)
    return worst_cross + 0.25 * worst_auto


@lru_cache(maxsize=32)
def _search_family(size: int, length: int) -> Tuple[Tuple[int, ...], ...]:
    """Greedy-plus-refinement minimax search for *size* codes.

    Returns tuples (hashable, for the cache); callers convert back to
    arrays.  Phase 1 greedily grows the family, always adding the
    candidate whose worst correlation against the chosen set is
    smallest.  Phase 2 repeatedly tries to swap each member for a pool
    candidate that lowers the family's minimax score, stopping when a
    full round makes no improvement.
    """
    rng = np.random.default_rng(_SEARCH_SEED + 1000 * size + length)
    # Keep the O(pool^2) pairwise matrix tractable for long codes.
    pool = _CANDIDATE_POOL if length <= 64 else _CANDIDATE_POOL // 2
    candidates = _balanced_candidates(length, pool, rng)
    bipolar = np.array([bits_to_bipolar(c) for c in candidates])
    auto = np.array([_max_offpeak_autocorr(b) for b in bipolar])

    # Full pairwise worst-cyclic-cross matrix via batched FFTs.
    spec = np.fft.fft(bipolar, axis=1)
    cross = np.zeros((pool, pool))
    for i in range(pool):
        corr = np.fft.ifft(spec * np.conj(spec[i]), axis=1).real
        cross[i] = np.max(np.abs(corr), axis=1) / length
    np.fill_diagonal(cross, np.inf)

    selected: List[int] = [int(np.argmin(auto))]
    worst = cross[selected[0]].copy()
    while len(selected) < size:
        score = worst + 0.25 * auto
        score[selected] = np.inf
        nxt = int(np.argmin(score))
        if not np.isfinite(score[nxt]):
            raise ValueError(f"candidate pool exhausted at {len(selected)} codes")
        selected.append(nxt)
        worst = np.maximum(worst, cross[nxt])

    family = [candidates[i].copy() for i in selected]
    family = _anneal(family, rng)
    return tuple(tuple(int(x) for x in code) for code in family)


def _score_matrix(bipolar: np.ndarray) -> float:
    """Minimax objective over a concrete family (bipolar rows).

    Three terms: the worst cyclic cross-correlation over all shifts
    (asynchronous interference), the worst *zero-shift* cross
    (synchronised tags should be the best case -- the property the
    paper's Fig. 11 measures), and the worst off-peak autocorrelation
    (false synchronisation).
    """
    length = bipolar.shape[1]
    spec = np.fft.fft(bipolar, axis=1)
    worst_cross = 0.0
    worst_zero = 0.0
    worst_auto = 0.0
    for i in range(bipolar.shape[0]):
        corr = np.fft.ifft(spec * np.conj(spec[i]), axis=1).real / length
        mags = np.abs(corr)
        ac = mags[i].copy()
        ac[0] = 0.0
        worst_auto = max(worst_auto, float(ac.max()))
        mags[i] = 0.0
        if bipolar.shape[0] > 1:
            worst_cross = max(worst_cross, float(mags.max()))
            zero = mags[:, 0].copy()
            worst_zero = max(worst_zero, float(zero.max()))
    return worst_cross + 0.5 * worst_zero + 0.25 * worst_auto


def _anneal(family: List[np.ndarray], rng: np.random.Generator, iterations: int = 6000) -> List[np.ndarray]:
    """Balance-preserving simulated annealing on the whole family.

    Each move swaps one '1' chip with one '0' chip inside a single code
    (keeping the code balanced) and is accepted when it lowers the
    minimax correlation objective, or with a temperature-decayed
    probability otherwise.  For families of <= 16 codes this reliably
    pushes the worst cyclic cross-correlation below the Gold bound,
    which is exactly the advantage the paper attributes to 2NC codes.
    """
    codes = [c.copy() for c in family]
    bipolar = np.array([bits_to_bipolar(c) for c in codes])
    best_codes = [c.copy() for c in codes]
    current = _score_matrix(bipolar)
    best = current
    t0, t1 = 0.05, 0.001
    for it in range(iterations):
        temp = t0 * (t1 / t0) ** (it / max(iterations - 1, 1))
        k = int(rng.integers(len(codes)))
        ones = np.flatnonzero(codes[k] == 1)
        zeros = np.flatnonzero(codes[k] == 0)
        i1 = int(ones[rng.integers(ones.size)])
        i0 = int(zeros[rng.integers(zeros.size)])
        codes[k][i1], codes[k][i0] = 0, 1
        bipolar[k, i1], bipolar[k, i0] = -1.0, 1.0
        trial = _score_matrix(bipolar)
        if trial < current or rng.random() < np.exp((current - trial) / max(temp, 1e-9)):
            current = trial
            if trial < best:
                best = trial
                best_codes = [c.copy() for c in codes]
        else:
            codes[k][i1], codes[k][i0] = 1, 0
            bipolar[k, i1], bipolar[k, i0] = 1.0, -1.0
    return best_codes


class TwoNCFamily:
    """A deterministic family of 2NC codes.

    Parameters
    ----------
    size:
        Number of codes (tags) the family must support.
    length:
        Chip length of each code.  The "2N" naming reflects the even
        length; by default the family uses ``2 * max(size, 16)`` chips,
        matching the Gold-31 regime used in the paper's evaluation when
        ``size <= 16``.
    """

    def __init__(self, size: int, length: int = None):
        if size < 1:
            raise ValueError("size must be >= 1")
        if length is None:
            length = 2 * max(size, 16)
        if length % 2 != 0:
            raise ValueError(f"2NC length must be even, got {length}")
        if length < 2 * size // 1 and length < 8:
            raise ValueError(f"length {length} too short for {size} codes")
        self.size = size
        self.length = length
        self._codes = [np.array(c, dtype=np.uint8) for c in _search_family(size, length)]

    def code(self, index: int) -> np.ndarray:
        """The *index*-th code as a 0/1 uint8 array (a copy)."""
        if not 0 <= index < self.size:
            raise ValueError(f"index {index} outside family of size {self.size}")
        return self._codes[index].copy()

    def codes(self, count: int = None) -> List[np.ndarray]:
        """The first *count* codes (all of them by default)."""
        count = self.size if count is None else count
        if count > self.size:
            raise ValueError(f"requested {count} codes but family has {self.size}")
        return [self.code(i) for i in range(count)]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TwoNCFamily(size={self.size}, length={self.length})"


def twonc_codes(count: int, length: int = 32) -> List[np.ndarray]:
    """Convenience constructor: *count* 2NC codes of chip length *length*."""
    return TwoNCFamily(count, length).codes()
