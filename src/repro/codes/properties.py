"""Correlation analytics for spreading-code families.

CBMA's decoding quality is governed by the auto- and cross-correlation
profile of the code family (paper Sec. II-C and Fig. 9(b)).  These
helpers quantify a family so tests can assert the invariants the paper
relies on -- balance, sharp autocorrelation, bounded cross-correlation --
and so benchmarks can report *why* 2NC beats Gold at small populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.bits import bits_to_bipolar

__all__ = [
    "periodic_autocorrelation",
    "periodic_crosscorrelation",
    "balance",
    "CodeFamilyReport",
    "analyze_family",
]


def periodic_autocorrelation(code: np.ndarray) -> np.ndarray:
    """Normalised periodic autocorrelation of a 0/1 code over all shifts.

    Entry ``k`` is the correlation of the bipolar code with itself
    cyclically shifted by ``k`` chips, divided by the length; entry 0 is
    exactly 1.
    """
    b = bits_to_bipolar(code)
    f = np.fft.fft(b)
    corr = np.fft.ifft(f * np.conj(f)).real / b.size
    return corr


def periodic_crosscorrelation(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Normalised periodic cross-correlation of two equal-length codes."""
    xa, xb = bits_to_bipolar(a), bits_to_bipolar(b)
    if xa.size != xb.size:
        raise ValueError(f"length mismatch: {xa.size} != {xb.size}")
    corr = np.fft.ifft(np.fft.fft(xa) * np.conj(np.fft.fft(xb))).real / xa.size
    return corr


def balance(code: np.ndarray) -> float:
    """Fraction of ones minus fraction of zeros; 0 is perfectly balanced.

    Balance matters for OOK backscatter: a code heavy in ones keeps the
    antenna reflecting (more energy but more MAI), a code heavy in
    zeros starves the correlator.
    """
    arr = np.asarray(code, dtype=np.float64)
    return float(2.0 * arr.mean() - 1.0)


@dataclass(frozen=True)
class CodeFamilyReport:
    """Summary statistics of a spreading-code family."""

    size: int
    length: int
    max_offpeak_auto: float
    mean_offpeak_auto: float
    max_cross: float
    mean_cross: float
    worst_balance: float

    def merit(self) -> float:
        """Scalar figure of merit: lower is better.

        Weighted combination of the worst cross-correlation (dominant
        driver of multi-access interference) and the worst off-peak
        autocorrelation (drives false synchronisation).
        """
        return 0.7 * self.max_cross + 0.3 * self.max_offpeak_auto


def analyze_family(codes: Sequence[np.ndarray]) -> CodeFamilyReport:
    """Compute the correlation report for a list of equal-length codes."""
    codes = [np.asarray(c, dtype=np.uint8) for c in codes]
    if not codes:
        raise ValueError("family must contain at least one code")
    length = codes[0].size
    if any(c.size != length for c in codes):
        raise ValueError("all codes in a family must share one length")

    auto_max: List[float] = []
    auto_mean: List[float] = []
    for code in codes:
        ac = periodic_autocorrelation(code)
        off = np.abs(ac[1:])
        auto_max.append(float(off.max()) if off.size else 0.0)
        auto_mean.append(float(off.mean()) if off.size else 0.0)

    cross_max: List[float] = []
    cross_mean: List[float] = []
    for i in range(len(codes)):
        for j in range(i + 1, len(codes)):
            cc = np.abs(periodic_crosscorrelation(codes[i], codes[j]))
            cross_max.append(float(cc.max()))
            cross_mean.append(float(cc.mean()))

    return CodeFamilyReport(
        size=len(codes),
        length=length,
        max_offpeak_auto=max(auto_max),
        mean_offpeak_auto=float(np.mean(auto_mean)),
        max_cross=max(cross_max) if cross_max else 0.0,
        mean_cross=float(np.mean(cross_mean)) if cross_mean else 0.0,
        worst_balance=max(abs(balance(c)) for c in codes),
    )
