"""The macro tier's link layer: a cached FER(SNR, k) surface.

The sample-domain simulator (:class:`repro.sim.network.CbmaNetwork`)
decodes IQ samples and tops out around ten concurrent tags.  The macro
tier replaces that per-transmission decode with a table lookup: a
rectangular grid of frame error rates indexed by per-tag SNR and the
number of concurrent transmitters *k*, swept **once** from the real
PHY by :mod:`repro.macro.calibration` and cached as a versioned JSON
artifact.  Per transmission the engine asks
:meth:`FerSurface.fer_at` -- bilinear interpolation inside the grid,
clamping at its edges -- which costs nanoseconds instead of
milliseconds and is what lets the event engine reach 10^5-10^6 tags.

The artifact is self-describing: a ``schema`` string
(:data:`SURFACE_SCHEMA`) guards the layout and a ``provenance`` header
records exactly which calibration produced the numbers (grid, rounds,
seed, PHY config digest), so a cache can be verified against the spec
that wants it instead of trusted blindly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

__all__ = ["FerSurface", "SURFACE_SCHEMA"]

#: Artifact schema identifier; bump on any layout change.
SURFACE_SCHEMA = "repro.macro.fersurface/1"


@dataclass
class FerSurface:
    """FER over a rectangular (SNR, concurrency) grid.

    Attributes
    ----------
    snr_db_axis:
        Strictly ascending per-tag SNR grid points (dB).
    k_axis:
        Strictly ascending concurrent-transmitter counts.
    fer:
        Frame error rate, shape ``(len(k_axis), len(snr_db_axis))``,
        every value in ``[0, 1]``.
    provenance:
        The calibration that produced the grid (see
        :meth:`repro.macro.calibration.CalibrationSpec.provenance`).
    """

    snr_db_axis: np.ndarray
    k_axis: np.ndarray
    fer: np.ndarray
    provenance: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.snr_db_axis = np.asarray(self.snr_db_axis, dtype=np.float64)
        self.k_axis = np.asarray(self.k_axis, dtype=np.float64)
        self.fer = np.asarray(self.fer, dtype=np.float64)
        if self.snr_db_axis.ndim != 1 or self.snr_db_axis.size == 0:
            raise ValueError("snr_db_axis must be a non-empty 1-D array")
        if self.k_axis.ndim != 1 or self.k_axis.size == 0:
            raise ValueError("k_axis must be a non-empty 1-D array")
        if np.any(np.diff(self.snr_db_axis) <= 0):
            raise ValueError("snr_db_axis must be strictly ascending")
        if np.any(np.diff(self.k_axis) <= 0):
            raise ValueError("k_axis must be strictly ascending")
        if self.fer.shape != (self.k_axis.size, self.snr_db_axis.size):
            raise ValueError(
                f"fer shape {self.fer.shape} != "
                f"(k={self.k_axis.size}, snr={self.snr_db_axis.size})"
            )
        if np.any(~np.isfinite(self.fer)) or np.any((self.fer < 0) | (self.fer > 1)):
            raise ValueError("fer values must be finite and in [0, 1]")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @staticmethod
    def _axis_weights(axis: np.ndarray, x: np.ndarray):
        """Lower index and fractional weight of *x* along *axis*, with
        queries outside the grid clamped to its edges."""
        x = np.clip(x, axis[0], axis[-1])
        if axis.size == 1:
            i = np.zeros(x.shape, dtype=np.intp)
            return i, np.zeros_like(x)
        i = np.clip(np.searchsorted(axis, x, side="right") - 1, 0, axis.size - 2)
        t = (x - axis[i]) / (axis[i + 1] - axis[i])
        return i, t

    def fer_at(self, snr_db, k):
        """Bilinearly interpolated FER at ``(snr_db, k)``.

        Both arguments broadcast; queries outside the calibrated grid
        clamp to the nearest edge (a k above the calibrated maximum
        behaves like the maximum -- the surface's honest answer, and
        tests pin this so silent extrapolation can't creep in).
        Scalars in, scalar out; arrays in, array out.
        """
        snr = np.asarray(snr_db, dtype=np.float64)
        kk = np.asarray(k, dtype=np.float64)
        scalar = snr.ndim == 0 and kk.ndim == 0
        snr, kk = np.atleast_1d(snr), np.atleast_1d(kk)
        snr, kk = np.broadcast_arrays(snr, kk)
        si, st = self._axis_weights(self.snr_db_axis, snr)
        ki, kt = self._axis_weights(self.k_axis, kk)
        lo = (1.0 - st) * self.fer[ki, si] + st * self.fer[ki, np.minimum(si + 1, self.snr_db_axis.size - 1)]
        hi_row = np.minimum(ki + 1, self.k_axis.size - 1)
        hi = (1.0 - st) * self.fer[hi_row, si] + st * self.fer[hi_row, np.minimum(si + 1, self.snr_db_axis.size - 1)]
        out = (1.0 - kt) * lo + kt * hi
        return float(out[0]) if scalar else out

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SURFACE_SCHEMA,
            "provenance": dict(self.provenance),
            "snr_db_axis": self.snr_db_axis.tolist(),
            "k_axis": self.k_axis.tolist(),
            "fer": self.fer.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FerSurface":
        schema = data.get("schema")
        if schema != SURFACE_SCHEMA:
            raise ValueError(
                f"unsupported surface schema {schema!r} (expected {SURFACE_SCHEMA!r})"
            )
        return cls(
            snr_db_axis=np.asarray(data["snr_db_axis"]),
            k_axis=np.asarray(data["k_axis"]),
            fer=np.asarray(data["fer"]),
            provenance=dict(data.get("provenance", {})),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the artifact as indented JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FerSurface":
        return cls.from_dict(json.loads(Path(path).read_text()))
