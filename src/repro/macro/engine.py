"""The fleet-scale event engine.

One simulation step is a *window* (one frame airtime).  Per window the
engine injects arrivals through a :mod:`repro.sim.traffic` model (one
vectorised draw covering the whole fleet), lets every backlogged tag
whose backoff timer expired transmit, and resolves each transmission
against the calibrated :class:`~repro.macro.linkmodel.FerSurface`
instead of decoding samples -- the design that turns a ~25 ms/round
sample-domain simulation into ~10^6 transmission events per second and
makes 10^5-10^6 tags tractable.

Per-tag hot state (backlog depth, head-of-line arrival time/attempts,
backoff window, retransmission timer) lives in flat numpy arrays;
Python-level objects appear only for the rare tags whose queue holds
more than the head message.  The reliability semantics mirror
:class:`repro.mac.arq.ArqSimulator` exactly -- stop-and-wait with a
retry limit, contention-window backoff
(:mod:`repro.macro.backoff`), ACK loss turning deliveries into
duplicates (deduped, never double-counted), tail-drop at the queue
cap -- which is what makes the macro tier directly
cross-validatable against the sample-domain tier
(:func:`repro.macro.scenarios.cross_validate`).

Access modes:

- **slotted** -- every same-window transmission is concurrent: the
  surface is consulted at ``k =`` window occupancy;
- **unslotted** -- each transmission starts at a uniform offset inside
  its window and ``k`` counts only the transmissions whose airtime
  actually overlaps (including the previous window's tail), so light
  load behaves like ALOHA instead of worst-case collision.

Determinism: one seeded generator drives arrivals, link draws, ACK
draws and backoff delays in a fixed order; same seed, same config,
same surface => identical :class:`MacroStats`, bit for bit.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Union

import numpy as np

from repro.macro.backoff import make_backoff
from repro.macro.calibration import geometry_snr_db
from repro.macro.linkmodel import FerSurface
from repro.obs.taxonomy import C, G
from repro.obs.tracer import as_tracer
from repro.utils.rng import make_rng, spawn_seed

__all__ = ["MacroConfig", "MacroStats", "MacroSimulator"]

#: Latency reservoir size: percentiles stay exact until this many
#: deliveries, then uniform reservoir sampling keeps memory flat.
_LATENCY_RESERVOIR = 65536


@dataclass
class MacroConfig:
    """Tunables of one macro-tier run.

    ``traffic=None`` selects *saturated* mode: every tag always holds a
    frame (the regime the sample-domain tier measures FER in, used by
    cross-validation).  ``snr_db`` fixes the per-tag link quality
    directly (scalar or one value per tag); when ``None`` it is derived
    from ``distance_m`` through the same analytic link budget the
    calibration labelled its axis with.
    """

    n_tags: int = 1000
    traffic: Optional[Any] = None
    slotted: bool = True
    slot_s: Optional[float] = None
    """Window/airtime length; ``None`` reads ``frame_duration_s`` from
    the surface's provenance (the calibrated PHY's frame airtime)."""
    distance_m: float = 1.0
    snr_db: Optional[Union[float, np.ndarray]] = None
    backoff: Union[str, Any] = "beb"
    backoff_params: Dict[str, Any] = field(default_factory=dict)
    max_retries: int = 8
    max_queue: int = 32
    ack_loss_prob: float = 0.0
    payload_bytes: int = 16
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_tags < 1:
            raise ValueError("n_tags must be >= 1")
        if self.max_retries < 1 or self.max_queue < 1:
            raise ValueError("max_retries and max_queue must be >= 1")
        if not 0.0 <= self.ack_loss_prob <= 1.0:
            raise ValueError("ack_loss_prob must be in [0, 1]")
        if self.slot_s is not None and self.slot_s <= 0:
            raise ValueError("slot_s must be positive")


@dataclass
class MacroStats:
    """Aggregate outcome of a macro run (mirrors
    :class:`repro.mac.arq.ArqStats` where the semantics coincide)."""

    offered: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicates: int = 0
    acks_lost: int = 0
    transmissions: int = 0
    link_failures: int = 0
    """Transmission attempts the FER surface failed (the macro tier's
    collision/noise losses, counted as ``macro.collisions``)."""
    windows: int = 0
    elapsed_s: float = 0.0
    wall_s: float = 0.0
    peak_backlog: int = 0
    final_backlog: int = 0
    latencies_s: List[float] = field(default_factory=list)
    """Reservoir sample of delivery latencies (exact until
    ``_LATENCY_RESERVOIR`` deliveries)."""
    latency_seen: int = 0

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.offered if self.offered else 1.0

    @property
    def link_fer(self) -> float:
        return self.link_failures / self.transmissions if self.transmissions else 0.0

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self.latencies_s)) if self.latencies_s else 0.0

    @property
    def p95_latency_s(self) -> float:
        return float(np.percentile(self.latencies_s, 95)) if self.latencies_s else 0.0

    @property
    def events(self) -> int:
        """Arrival + transmission events the engine processed."""
        return self.offered + self.transmissions

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def goodput_bps(self, payload_bits: int) -> float:
        """Delivered application bits per simulated second."""
        return self.delivered * payload_bits / self.elapsed_s if self.elapsed_s else 0.0


class MacroSimulator:
    """Event-driven fleet simulator over a calibrated link surface.

    Parameters
    ----------
    config:
        :class:`MacroConfig`; a ``backoff`` given by name is resolved
        through :func:`repro.macro.backoff.make_backoff`.
    surface:
        The calibrated :class:`~repro.macro.linkmodel.FerSurface`.
    tracer:
        Optional :class:`repro.obs.Tracer`; the run is wrapped in a
        ``macro_run`` span and the ``macro.*`` counters/gauges are
        emitted once, aggregated, at the end (never per event).
    """

    def __init__(self, config: MacroConfig, surface: FerSurface, tracer=None):
        self.config = config
        self.surface = surface
        self.tracer = as_tracer(tracer)
        self.backoff = (
            make_backoff(config.backoff, **config.backoff_params)
            if isinstance(config.backoff, str)
            else config.backoff
        )
        self.rng = make_rng(config.seed)
        self._reservoir_rng = make_rng(spawn_seed(self.rng))
        n = config.n_tags
        if config.snr_db is None:
            snr = geometry_snr_db(config.distance_m)
        else:
            snr = config.snr_db
        self.snr_db = np.broadcast_to(
            np.asarray(snr, dtype=np.float64), (n,)
        ).copy()
        self.slot_s = (
            config.slot_s
            if config.slot_s is not None
            else float(surface.provenance.get("frame_duration_s", 1e-2))
        )
        if hasattr(config.traffic, "reset"):
            config.traffic.reset()
        # --- per-tag hot state, flat arrays -------------------------------
        self._backlog = np.zeros(n, dtype=np.int64)
        self._head_arrival = np.zeros(n, dtype=np.float64)
        self._head_attempts = np.zeros(n, dtype=np.int64)
        self._head_delivered = np.zeros(n, dtype=bool)
        self._next_slot = np.zeros(n, dtype=np.int64)
        self._cw = np.full(n, self.backoff.initial_cw(), dtype=np.float64)
        #: Arrival times queued *behind* the head, only for the rare
        #: tags holding more than one message.
        self._queues: Dict[int, Deque[float]] = {}
        self._prev_starts = np.empty(0, dtype=np.float64)
        #: Absolute window cursor; survives across :meth:`run` calls so
        #: a scenario can advance the same fleet in segments.
        self._slot = 0

    @classmethod
    def from_config(
        cls,
        config: MacroConfig,
        surface: Union[FerSurface, str],
        tracer=None,
    ) -> "MacroSimulator":
        """Build a simulator, loading *surface* from a path if given as
        one (the CLI/bench entry point)."""
        if not isinstance(surface, FerSurface):
            surface = FerSurface.load(surface)
        return cls(config, surface, tracer=tracer)

    # ------------------------------------------------------------------
    # Arrival injection
    # ------------------------------------------------------------------

    def _saturate(self, stats: MacroStats, now: float) -> None:
        """Saturated mode: refill every idle tag with a fresh frame."""
        idle = self._backlog == 0
        n_new = int(idle.sum())
        if n_new == 0:
            return
        stats.offered += n_new
        self._backlog[idle] = 1
        self._head_arrival[idle] = now
        self._head_attempts[idle] = 0
        self._head_delivered[idle] = False

    def _inject(self, stats: MacroStats, t: int, now: float) -> None:
        cfg = self.config
        if cfg.traffic is None:
            self._saturate(stats, now)
            return
        counts = np.asarray(cfg.traffic.draw(cfg.n_tags, self.slot_s, self.rng))
        nz = np.nonzero(counts)[0]
        if nz.size == 0:
            return
        stats.offered += int(counts[nz].sum())
        # Fast path: exactly one arrival at an idle tag (the vast
        # majority, including a whole fire-ring storm) is pure numpy.
        one_idle = (counts[nz] == 1) & (self._backlog[nz] == 0)
        simple, rest = nz[one_idle], nz[~one_idle]
        if simple.size:
            self._backlog[simple] = 1
            self._head_arrival[simple] = now
            self._head_attempts[simple] = 0
            self._head_delivered[simple] = False
            self._next_slot[simple] = np.maximum(self._next_slot[simple], t)
        for i in rest:
            i = int(i)
            c = int(counts[i])
            room = cfg.max_queue - int(self._backlog[i])
            take = min(c, room)
            stats.dropped += c - take
            if take <= 0:
                continue
            if self._backlog[i] == 0:
                self._head_arrival[i] = now
                self._head_attempts[i] = 0
                self._head_delivered[i] = False
                self._next_slot[i] = max(int(self._next_slot[i]), t)
                extra = take - 1
            else:
                extra = take
            if extra:
                self._queues.setdefault(i, deque()).extend([now] * extra)
            self._backlog[i] += take

    # ------------------------------------------------------------------
    # Head-of-line queue maintenance
    # ------------------------------------------------------------------

    def _pop_heads(self, tags: np.ndarray, stats: MacroStats, t: int, now: float) -> None:
        """Retire the head message of every tag in *tags* and promote
        the next queued arrival (if any) to head-of-line."""
        if tags.size == 0:
            return
        self._head_attempts[tags] = 0
        self._head_delivered[tags] = False
        if self.config.traffic is None:
            # Saturated: the queue never drains -- a fresh frame
            # replaces the retired one immediately.
            stats.offered += tags.size
            self._head_arrival[tags] = now
        else:
            self._backlog[tags] -= 1
            refill = tags[self._backlog[tags] > 0]
            for i in refill:
                i = int(i)
                q = self._queues[i]
                self._head_arrival[i] = q.popleft()
                if not q:
                    del self._queues[i]
        self._next_slot[tags] = t + 1

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def _concurrency(self, active: np.ndarray, now: float) -> np.ndarray:
        """Per-transmission concurrency *k* (including self)."""
        k = active.size
        if self.config.slotted:
            return np.full(k, float(k))
        # Unslotted: each transmission starts at a uniform offset in
        # the window; k counts airtime-overlapping starts, including
        # the previous window's tail.
        starts = np.sort(now + self.rng.random(k) * self.slot_s)
        air = self.slot_s
        tail = self._prev_starts[self._prev_starts > now - air]
        pool = np.concatenate([tail, starts]) if tail.size else starts
        lo = np.searchsorted(pool, starts - air, side="right")
        hi = np.searchsorted(pool, starts + air, side="left")
        self._prev_starts = starts
        return np.maximum(hi - lo, 1).astype(np.float64)

    def _record_latencies(self, values: np.ndarray, stats: MacroStats) -> None:
        for v in values:
            stats.latency_seen += 1
            if len(stats.latencies_s) < _LATENCY_RESERVOIR:
                stats.latencies_s.append(float(v))
            else:
                j = int(self._reservoir_rng.integers(0, stats.latency_seen))
                if j < _LATENCY_RESERVOIR:
                    stats.latencies_s[j] = float(v)

    def run(self, n_slots: int) -> MacroStats:
        """Simulate *n_slots* windows; returns the aggregate stats."""
        if n_slots < 0:
            raise ValueError("n_slots must be non-negative")
        cfg = self.config
        stats = MacroStats()
        t0 = time.perf_counter()
        tracer = self.tracer
        with tracer.span("macro_run", tags=cfg.n_tags, slots=n_slots):
            for t in range(self._slot, self._slot + n_slots):
                now = t * self.slot_s
                self._inject(stats, t, now)
                stats.windows += 1
                active = np.nonzero((self._backlog > 0) & (self._next_slot <= t))[0]
                if active.size:
                    self._step_transmissions(active, stats, t, now)
                backlog_total = int(self._backlog.sum())
                stats.peak_backlog = max(stats.peak_backlog, backlog_total)
                stats.elapsed_s += self.slot_s
            self._slot += n_slots
            stats.final_backlog = int(self._backlog.sum())
        stats.wall_s = time.perf_counter() - t0
        if tracer.enabled:
            tracer.count(C.MACRO_OFFERED, stats.offered)
            tracer.count(C.MACRO_DELIVERED, stats.delivered)
            tracer.count(C.MACRO_DROPPED, stats.dropped)
            tracer.count(C.MACRO_DUPLICATES, stats.duplicates)
            tracer.count(C.MACRO_ACKS_LOST, stats.acks_lost)
            tracer.count(C.MACRO_TRANSMISSIONS, stats.transmissions)
            tracer.count(C.MACRO_COLLISIONS, stats.link_failures)
            tracer.count(C.MACRO_WINDOWS, stats.windows)
            tracer.gauge(G.MACRO_BACKLOG, stats.final_backlog)
            tracer.gauge(G.MACRO_FER, stats.link_fer)
            tracer.gauge(G.MACRO_EVENTS_PER_SEC, stats.events_per_sec)
        return stats

    def _step_transmissions(
        self, active: np.ndarray, stats: MacroStats, t: int, now: float
    ) -> None:
        rng = self.rng
        k_per_tx = self._concurrency(active, now)
        fer = self.surface.fer_at(self.snr_db[active], k_per_tx)
        stats.transmissions += active.size
        fail = rng.random(active.size) < fer
        stats.link_failures += int(fail.sum())
        success = active[~fail]

        # Deliveries: dedupe retransmits of an already-delivered head
        # (the receiver saw the sequence number before).
        dup_mask = self._head_delivered[success]
        stats.duplicates += int(dup_mask.sum())
        fresh = success[~dup_mask]
        stats.delivered += fresh.size
        if fresh.size:
            self._record_latencies(
                now + self.slot_s - self._head_arrival[fresh], stats
            )
        # The downlink ACK: lost ACKs keep the (now delivered) head
        # queued, so the tag retries like any failure.
        if cfg_ack := self.config.ack_loss_prob:
            ack_lost = rng.random(success.size) < cfg_ack
        else:
            ack_lost = np.zeros(success.size, dtype=bool)
        stats.acks_lost += int(ack_lost.sum())
        self._head_delivered[fresh] = True
        acked = success[~ack_lost]
        self._cw[acked] = self.backoff.on_success(self._cw[acked])
        self._pop_heads(acked, stats, t, now)

        # Failure path: real link failures plus ACK-lost successes.
        retry_set = np.concatenate([active[fail], success[ack_lost]])
        if retry_set.size == 0:
            return
        retry_set = np.sort(retry_set)
        self._head_attempts[retry_set] += 1
        exhausted = retry_set[self._head_attempts[retry_set] >= self.config.max_retries]
        retry = retry_set[self._head_attempts[retry_set] < self.config.max_retries]
        if exhausted.size:
            # A head that was delivered but never acked is not data
            # loss -- only undelivered heads count as drops.
            stats.dropped += int((~self._head_delivered[exhausted]).sum())
            self._pop_heads(exhausted, stats, t, now)
        if retry.size:
            self._cw[retry] = self.backoff.on_failure(
                self._cw[retry], self._head_attempts[retry]
            )
            delays = self.backoff.delay_slots(self._cw[retry], rng)
            self._next_slot[retry] = t + 1 + np.asarray(delays, dtype=np.int64)
