"""Macro-tier scenario drivers.

Three studies the sample-domain tier cannot run (scale) or should not
have to (speed), each returning the standard
:class:`~repro.obs.result.ExperimentResult`:

- :func:`offered_load_sweep` -- delivery ratio / goodput / tail
  latency versus offered Poisson load, the macro analogue of the ARQ
  layer's throughput study;
- :func:`fire_ring` -- a spatial-event stress test: tags scattered in
  an annulus, an event front expanding from the centre triggers each
  tag the moment the ring crosses its radius, producing a travelling
  collision storm the backoff strategy must drain;
- :func:`cross_validate` -- the macro<->sample-domain contract: the
  same 10-tag paper workloads run through both tiers must agree on
  FER, delivery ratio and goodput within the documented tolerances
  (:data:`FER_TOLERANCE`, :data:`DELIVERY_TOLERANCE`,
  :data:`GOODPUT_REL_TOLERANCE`).  CI runs it in the macro smoke job;
  a tolerance breach means the surface no longer represents the PHY
  it claims to.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.macro.backoff import BinaryExponentialBackoff
from repro.macro.calibration import CalibrationSpec, calibrate, geometry_snr_db
from repro.macro.engine import MacroConfig, MacroSimulator, MacroStats
from repro.macro.linkmodel import FerSurface
from repro.obs.result import ExperimentResult
from repro.sim.traffic import PoissonArrivals
from repro.utils.rng import make_rng

__all__ = [
    "FireRingTraffic",
    "offered_load_sweep",
    "fire_ring",
    "cross_validate",
    "FER_TOLERANCE",
    "DELIVERY_TOLERANCE",
    "GOODPUT_REL_TOLERANCE",
]

#: Cross-validation contract: absolute FER disagreement allowed between
#: the macro tier and a fresh (independently seeded) sample-domain run
#: of the same saturated 10-tag workload.  Dominated by Monte-Carlo
#: noise of the PHY reference (~50-100 rounds per point).
FER_TOLERANCE = 0.08

#: Absolute delivery-ratio disagreement allowed between the macro tier
#: and :class:`repro.mac.arq.ArqSimulator` under the same Poisson load.
DELIVERY_TOLERANCE = 0.08

#: Relative goodput disagreement allowed on the same comparison.
GOODPUT_REL_TOLERANCE = 0.25


@dataclass
class FireRingTraffic:
    """Spatial-event arrivals: one message per tag, triggered when an
    expanding ring crosses the tag's radius.

    ``crossing_s[i]`` is tag *i*'s trigger time (radius / front
    speed).  Follows the standard traffic-model window contract, so it
    plugs into the macro engine (or the ARQ layer) unchanged.
    """

    crossing_s: np.ndarray

    def __post_init__(self) -> None:
        self.crossing_s = np.asarray(self.crossing_s, dtype=np.float64)
        self._elapsed = 0.0

    def reset(self) -> None:
        self._elapsed = 0.0

    def draw(self, n_tags: int, duration_s: float, rng=None) -> np.ndarray:
        if n_tags != self.crossing_s.size:
            raise ValueError(
                f"fleet size {n_tags} != {self.crossing_s.size} crossing times"
            )
        start = self._elapsed
        self._elapsed = end = start + duration_s
        return ((self.crossing_s >= start) & (self.crossing_s < end)).astype(np.int64)


@dataclass
class _ReplayTraffic:
    """A pre-drawn arrival schedule, replayed window by window.

    Cross-validation feeds the *same* schedule to both tiers so the
    comparison is paired: any disagreement is delivery dynamics, not
    two independent Poisson draws of the offered load.
    """

    counts: np.ndarray  # shape (n_windows, n_tags)

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=np.int64)
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def draw(self, n_tags: int, duration_s: float, rng=None) -> np.ndarray:
        if n_tags != self.counts.shape[1]:
            raise ValueError("fleet size does not match the recorded schedule")
        if self._cursor >= self.counts.shape[0]:
            return np.zeros(n_tags, dtype=np.int64)
        row = self.counts[self._cursor]
        self._cursor += 1
        return row


def _accumulate(total: MacroStats, part: MacroStats) -> None:
    """Fold one segment's stats into the running total."""
    for name in (
        "offered",
        "delivered",
        "dropped",
        "duplicates",
        "acks_lost",
        "transmissions",
        "link_failures",
        "windows",
        "latency_seen",
    ):
        setattr(total, name, getattr(total, name) + getattr(part, name))
    total.elapsed_s += part.elapsed_s
    total.wall_s += part.wall_s
    total.peak_backlog = max(total.peak_backlog, part.peak_backlog)
    total.final_backlog = part.final_backlog
    total.latencies_s.extend(part.latencies_s)


def _default_surface(surface: Optional[Union[FerSurface, str]]) -> FerSurface:
    if surface is None:
        return calibrate(CalibrationSpec.tiny())
    if not isinstance(surface, FerSurface):
        return FerSurface.load(surface)
    return surface


def offered_load_sweep(
    surface: Optional[Union[FerSurface, str]] = None,
    rates_per_slot: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.4, 0.8),
    n_tags: int = 1000,
    n_slots: int = 300,
    slotted: bool = True,
    backoff: str = "beb",
    seed: int = 17,
) -> ExperimentResult:
    """Delivery ratio, goodput and tail latency versus offered load.

    *rates_per_slot* is the per-tag arrival probability per window;
    each sweep point runs a fresh fleet (fresh traffic model, fresh
    engine) so no state leaks across points.
    """
    t0 = time.perf_counter()
    surface = _default_surface(surface)
    delivery, goodput, p95, fer = [], [], [], []
    slot_s = float(surface.provenance.get("frame_duration_s", 1e-2))
    for rate in rates_per_slot:
        cfg = MacroConfig(
            n_tags=n_tags,
            traffic=PoissonArrivals(rate_hz=rate / slot_s),
            slotted=slotted,
            backoff=backoff,
            seed=seed,
        )
        sim = MacroSimulator(cfg, surface)
        stats = sim.run(n_slots)
        delivery.append(stats.delivery_ratio)
        goodput.append(stats.goodput_bps(8 * cfg.payload_bytes))
        p95.append(stats.p95_latency_s)
        fer.append(stats.link_fer)
    result = ExperimentResult(
        experiment_id="macro_load_sweep",
        x_label="offered load (arrivals/tag/slot)",
        x=list(rates_per_slot),
        series={
            "delivery_ratio": delivery,
            "goodput_bps": goodput,
            "p95_latency_s": p95,
            "link_fer": fer,
        },
        params={
            "n_tags": n_tags,
            "n_slots": n_slots,
            "slotted": slotted,
            "backoff": backoff,
        },
        seed=seed,
        notes="macro tier: FER-surface link model, per-point fresh fleet",
    )
    return result.summarize_series().finish(t0)


def fire_ring(
    surface: Optional[Union[FerSurface, str]] = None,
    n_tags: int = 10000,
    r_min_m: float = 0.5,
    r_max_m: float = 4.0,
    front_speed_m_s: float = 2.0,
    n_slots: Optional[int] = None,
    n_segments: int = 20,
    backoff: str = "beb",
    slotted: bool = True,
    seed: int = 23,
) -> ExperimentResult:
    """The fire-ring stress scenario.

    *n_tags* sensors sit at random radii in the annulus
    ``[r_min_m, r_max_m]`` around the receiver; an event front expands
    from the centre at *front_speed_m_s*, triggering each tag as it
    passes.  Nearby tags fire first (with strong links); the storm
    then travels outward into progressively weaker links.  The run is
    segmented so the result carries deliveries/backlog over time --
    the drain profile is the scenario's entire point.
    """
    t0 = time.perf_counter()
    surface = _default_surface(surface)
    rng = make_rng(seed)
    radii = np.sort(rng.uniform(r_min_m, r_max_m, n_tags))
    crossing_s = radii / front_speed_m_s
    snr_db = np.array([geometry_snr_db(float(r)) for r in radii])
    slot_s = float(surface.provenance.get("frame_duration_s", 1e-2))
    if n_slots is None:
        # Cover the full sweep of the front plus drain headroom.
        n_slots = int(np.ceil(crossing_s[-1] / slot_s)) + 400
    cfg = MacroConfig(
        n_tags=n_tags,
        traffic=FireRingTraffic(crossing_s),
        slotted=slotted,
        snr_db=snr_db,
        backoff=backoff,
        seed=seed,
    )
    sim = MacroSimulator(cfg, surface)
    seg = max(n_slots // n_segments, 1)
    times, delivered_t, backlog_t = [], [], []
    total = MacroStats()
    done = 0
    while done < n_slots:
        part = sim.run(min(seg, n_slots - done))
        done += min(seg, n_slots - done)
        _accumulate(total, part)
        times.append(done * slot_s)
        delivered_t.append(total.delivered)
        backlog_t.append(part.final_backlog)
    result = ExperimentResult(
        experiment_id="macro_fire_ring",
        x_label="time (s)",
        x=times,
        series={"delivered_cumulative": delivered_t, "backlog": backlog_t},
        params={
            "n_tags": n_tags,
            "r_min_m": r_min_m,
            "r_max_m": r_max_m,
            "front_speed_m_s": front_speed_m_s,
            "backoff": backoff,
            "slotted": slotted,
            "n_slots": n_slots,
        },
        metrics={
            "delivery_ratio": total.delivery_ratio,
            "p95_latency_s": total.p95_latency_s,
            "peak_backlog": float(total.peak_backlog),
            "final_backlog": float(total.final_backlog),
            "link_fer": total.link_fer,
            "events_per_sec": total.events_per_sec,
        },
        seed=seed,
        notes="expanding event front; storm drains outward through weakening links",
    )
    return result.finish(t0)


def cross_validate(
    surface: Optional[Union[FerSurface, str]] = None,
    distances_m: Sequence[float] = (1.0, 2.0, 3.0),
    n_tags: int = 10,
    phy_rounds: int = 50,
    arq_rounds: int = 60,
    macro_slots: int = 2000,
    rate_per_slot: float = 0.1,
    seed: int = 123,
) -> ExperimentResult:
    """The macro <-> sample-domain agreement contract.

    Two comparisons on the paper's 10-tag workloads, both seeded and
    deterministic:

    1. **Saturated FER** (fig-8/9 operating points): a fresh,
       independently seeded :class:`~repro.sim.network.CbmaNetwork`
       runs *phy_rounds* saturated rounds at each distance; the macro
       engine runs the same fleet saturated against the surface.
       ``|fer_macro - fer_phy|`` must stay within
       :data:`FER_TOLERANCE` at every point.
    2. **ARQ under Poisson load**: the same traffic and backoff
       strategy through :class:`~repro.mac.arq.ArqSimulator` (sample
       domain) and the macro engine; delivery ratio within
       :data:`DELIVERY_TOLERANCE`, goodput within
       :data:`GOODPUT_REL_TOLERANCE` (relative).

    The result's ``metrics["max_abs_fer_err"]`` /
    ``metrics["delivery_err"]`` / ``metrics["goodput_rel_err"]`` and
    the ``metrics["within_tolerance"]`` flag are what the macro-smoke
    CI job asserts on.
    """
    from repro.channel.geometry import Deployment
    from repro.mac.arq import ArqSimulator
    from repro.sim.network import CbmaConfig, CbmaNetwork

    t0 = time.perf_counter()
    surface = _default_surface(surface)
    root = make_rng(seed)
    slot_s = float(surface.provenance.get("frame_duration_s", 1e-2))

    # --- 1: saturated FER at the fig-8(a) operating points -------------
    fer_phy, fer_macro = [], []
    for d in distances_m:
        phy_seed = int(root.integers(0, 2**31))
        net = CbmaNetwork(
            CbmaConfig(n_tags=n_tags, seed=phy_seed),
            Deployment.linear(n_tags, tag_to_rx=float(d)),
        )
        fer_phy.append(net.run_rounds(phy_rounds).fer)
        cfg = MacroConfig(
            n_tags=n_tags,
            traffic=None,  # saturated
            snr_db=geometry_snr_db(float(d)),
            # cw pinned to 1 => zero wait: every tag transmits every
            # slot, exactly like the PHY reference's saturated rounds.
            backoff=BinaryExponentialBackoff(cw_min=1.0, cw_max=1.0),
            seed=phy_seed + 1,
        )
        stats = MacroSimulator(cfg, surface).run(macro_slots)
        fer_macro.append(stats.link_fer)
    fer_err = [abs(a - b) for a, b in zip(fer_macro, fer_phy)]

    # --- 2: ARQ vs macro under one shared Poisson schedule --------------
    arq_seed = int(root.integers(0, 2**31))
    strategy = BinaryExponentialBackoff(cw_min=2.0, cw_max=16.0)
    rate_hz = rate_per_slot / slot_s
    schedule = PoissonArrivals(rate_hz=rate_hz).draw(
        n_tags * arq_rounds, slot_s, make_rng(arq_seed + 1)
    ).reshape(arq_rounds, n_tags)
    net = CbmaNetwork(
        CbmaConfig(n_tags=n_tags, seed=arq_seed),
        Deployment.linear(n_tags, tag_to_rx=float(distances_m[0])),
    )
    arq = ArqSimulator(
        net,
        _ReplayTraffic(schedule),
        backoff=strategy,
    )
    arq_stats = arq.run(arq_rounds, rng=make_rng(arq_seed + 1))
    payload_bits = 8 * net.config.payload_bytes

    cfg = MacroConfig(
        n_tags=n_tags,
        traffic=_ReplayTraffic(schedule),
        snr_db=geometry_snr_db(float(distances_m[0])),
        backoff=strategy,
        seed=arq_seed + 2,
    )
    macro_stats = MacroSimulator(cfg, surface).run(arq_rounds)
    delivery_err = abs(macro_stats.delivery_ratio - arq_stats.delivery_ratio)
    g_arq = arq_stats.goodput_bps(payload_bits)
    g_macro = macro_stats.goodput_bps(payload_bits)
    goodput_rel_err = abs(g_macro - g_arq) / max(g_arq, g_macro, 1e-12)

    within = (
        max(fer_err) <= FER_TOLERANCE
        and delivery_err <= DELIVERY_TOLERANCE
        and goodput_rel_err <= GOODPUT_REL_TOLERANCE
    )
    result = ExperimentResult(
        experiment_id="macro_cross_validation",
        x_label="tag-to-RX distance (m)",
        x=list(distances_m),
        series={"fer_phy": fer_phy, "fer_macro": fer_macro},
        params={
            "n_tags": n_tags,
            "phy_rounds": phy_rounds,
            "arq_rounds": arq_rounds,
            "macro_slots": macro_slots,
            "rate_per_slot": rate_per_slot,
            "fer_tolerance": FER_TOLERANCE,
            "delivery_tolerance": DELIVERY_TOLERANCE,
            "goodput_rel_tolerance": GOODPUT_REL_TOLERANCE,
        },
        metrics={
            "max_abs_fer_err": float(max(fer_err)),
            "delivery_arq": arq_stats.delivery_ratio,
            "delivery_macro": macro_stats.delivery_ratio,
            "delivery_err": float(delivery_err),
            "goodput_arq_bps": g_arq,
            "goodput_macro_bps": g_macro,
            "goodput_rel_err": float(goodput_rel_err),
            "within_tolerance": float(within),
        },
        seed=seed,
        notes=(
            "saturated FER at fig-8(a) points + ARQ-vs-macro Poisson load; "
            "both tiers seeded and deterministic"
        ),
    )
    return result.finish(t0)
