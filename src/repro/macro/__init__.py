"""The macro tier: fleet-scale simulation on a PHY-calibrated link model.

The sample-domain tier (:mod:`repro.sim`) decodes IQ samples and tops
out around ten concurrent tags; the deployments the ROADMAP targets
(and NetScatter demonstrates) run to hundreds of thousands.  This
package is the second simulation tier that bridges the gap:

- :mod:`repro.macro.calibration` sweeps the real PHY **once** into a
  FER(SNR, k) grid;
- :mod:`repro.macro.linkmodel` caches that grid as a versioned,
  provenance-stamped artifact and answers per-transmission lookups by
  bilinear interpolation;
- :mod:`repro.macro.engine` is the event-driven MAC simulator that
  consults the surface instead of decoding -- 10^5-10^6 tags, numpy
  per-tag state, ARQ-mirrored reliability semantics;
- :mod:`repro.macro.backoff` grows the ARQ backoff into a strategy
  zoo (BEB, Fibonacci, EIED, adaptive) shared by both tiers;
- :mod:`repro.macro.scenarios` drives load sweeps, the fire-ring
  spatial stress test, and the cross-validation contract that keeps
  the macro tier honest against the sample domain.
"""

from repro.macro.backoff import (
    AdaptiveBackoff,
    BinaryExponentialBackoff,
    EiedBackoff,
    FibonacciBackoff,
    make_backoff,
)
from repro.macro.calibration import (
    CalibrationSpec,
    calibrate,
    geometry_snr_db,
    load_or_calibrate,
)
from repro.macro.engine import MacroConfig, MacroSimulator, MacroStats
from repro.macro.linkmodel import FerSurface
from repro.macro.scenarios import (
    FireRingTraffic,
    cross_validate,
    fire_ring,
    offered_load_sweep,
)

__all__ = [
    "FerSurface",
    "CalibrationSpec",
    "calibrate",
    "load_or_calibrate",
    "geometry_snr_db",
    "MacroConfig",
    "MacroStats",
    "MacroSimulator",
    "BinaryExponentialBackoff",
    "FibonacciBackoff",
    "EiedBackoff",
    "AdaptiveBackoff",
    "make_backoff",
    "FireRingTraffic",
    "offered_load_sweep",
    "fire_ring",
    "cross_validate",
]
