"""Contention-window backoff strategies (the MAC's congestion knob).

The ARQ layer's original retransmission timer was a single hard-coded
binary-exponential rule.  Fleet-scale studies need to compare backoff
*families* -- how fast the window opens under collisions and how fast
it recovers -- so this module grows that rule into a zoo behind one
stateless-per-call protocol:

- ``initial_cw()``            -- the window a fresh tag starts with;
- ``on_failure(cw, attempts)`` -- the widened window after a failed
  (or unacknowledged) attempt number *attempts*;
- ``on_success(cw)``          -- the window after an acknowledged
  delivery;
- ``delay_slots(cw, rng)``    -- the drawn wait, uniform in
  ``[0, ceil(cw))`` slots.

Strategies hold only their *parameters*; the per-tag window lives with
the caller (a float per tag), which is what lets the macro engine keep
10^5 windows in one numpy array and update them vectorised -- every
method accepts scalars or arrays and broadcasts.  The same objects
plug into :class:`repro.mac.arq.ArqSimulator` (scalar path) unchanged.

The shapes follow the classic literature: binary exponential (BEB),
Fibonacci, EIED (exponential increase, exponential decrease) and an
AIMD-flavoured adaptive rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Type

import numpy as np

__all__ = [
    "BinaryExponentialBackoff",
    "FibonacciBackoff",
    "EiedBackoff",
    "AdaptiveBackoff",
    "make_backoff",
    "BACKOFF_REGISTRY",
]

#: Fibonacci numbers F(1)..F(32), enough for any sane retry limit.
_FIB = np.array([1, 1], dtype=np.float64)
while _FIB.size < 32:
    _FIB = np.append(_FIB, _FIB[-1] + _FIB[-2])


def _draw(cw, rng):
    """Uniform integer wait in ``[0, ceil(cw))``; broadcasts over cw."""
    high = np.maximum(np.ceil(np.asarray(cw)), 1.0).astype(np.int64)
    if high.ndim == 0:
        return int(rng.integers(0, int(high)))
    return rng.integers(0, high)


@dataclass(frozen=True)
class BinaryExponentialBackoff:
    """Classic BEB: double on failure, snap shut on success."""

    cw_min: float = 2.0
    cw_max: float = 1024.0

    def __post_init__(self) -> None:
        if not 1.0 <= self.cw_min <= self.cw_max:
            raise ValueError("need 1 <= cw_min <= cw_max")

    def initial_cw(self) -> float:
        return float(self.cw_min)

    def on_failure(self, cw, attempts):
        return np.minimum(np.asarray(cw, dtype=np.float64) * 2.0, self.cw_max)

    def on_success(self, cw):
        return np.full_like(np.asarray(cw, dtype=np.float64), self.cw_min)

    def delay_slots(self, cw, rng):
        return _draw(cw, rng)


@dataclass(frozen=True)
class FibonacciBackoff:
    """Window follows ``cw_min * F(attempts)`` -- sub-exponential
    growth that trades recovery speed for gentler idle waste."""

    cw_min: float = 2.0
    cw_max: float = 1024.0

    def __post_init__(self) -> None:
        if not 1.0 <= self.cw_min <= self.cw_max:
            raise ValueError("need 1 <= cw_min <= cw_max")

    def initial_cw(self) -> float:
        return float(self.cw_min)

    def on_failure(self, cw, attempts):
        idx = np.clip(np.asarray(attempts, dtype=np.int64) - 1, 0, _FIB.size - 1)
        return np.minimum(self.cw_min * _FIB[idx], self.cw_max)

    def on_success(self, cw):
        return np.full_like(np.asarray(cw, dtype=np.float64), self.cw_min)

    def delay_slots(self, cw, rng):
        return _draw(cw, rng)


@dataclass(frozen=True)
class EiedBackoff:
    """Exponential increase, exponential decrease: multiply by
    ``r_increase`` on failure, divide by ``r_decrease`` on success --
    the window remembers recent congestion instead of snapping shut."""

    cw_min: float = 2.0
    cw_max: float = 1024.0
    r_increase: float = 2.0
    r_decrease: float = 1.4142135623730951  # sqrt(2)

    def __post_init__(self) -> None:
        if not 1.0 <= self.cw_min <= self.cw_max:
            raise ValueError("need 1 <= cw_min <= cw_max")
        if self.r_increase <= 1.0 or self.r_decrease <= 1.0:
            raise ValueError("ratios must exceed 1")

    def initial_cw(self) -> float:
        return float(self.cw_min)

    def on_failure(self, cw, attempts):
        return np.minimum(np.asarray(cw, dtype=np.float64) * self.r_increase, self.cw_max)

    def on_success(self, cw):
        return np.maximum(np.asarray(cw, dtype=np.float64) / self.r_decrease, self.cw_min)

    def delay_slots(self, cw, rng):
        return _draw(cw, rng)


@dataclass(frozen=True)
class AdaptiveBackoff:
    """AIMD-flavoured rule: multiplicative widen on failure, *additive*
    close on success.  Converges on a window proportional to the local
    contention level rather than oscillating between extremes."""

    cw_min: float = 2.0
    cw_max: float = 1024.0
    increase_factor: float = 2.0
    decrease_step: float = 1.0

    def __post_init__(self) -> None:
        if not 1.0 <= self.cw_min <= self.cw_max:
            raise ValueError("need 1 <= cw_min <= cw_max")
        if self.increase_factor <= 1.0 or self.decrease_step <= 0.0:
            raise ValueError("increase_factor must exceed 1, decrease_step be positive")

    def initial_cw(self) -> float:
        return float(self.cw_min)

    def on_failure(self, cw, attempts):
        return np.minimum(
            np.asarray(cw, dtype=np.float64) * self.increase_factor, self.cw_max
        )

    def on_success(self, cw):
        return np.maximum(
            np.asarray(cw, dtype=np.float64) - self.decrease_step, self.cw_min
        )

    def delay_slots(self, cw, rng):
        return _draw(cw, rng)


BACKOFF_REGISTRY: Dict[str, Type] = {
    "beb": BinaryExponentialBackoff,
    "fibonacci": FibonacciBackoff,
    "eied": EiedBackoff,
    "adaptive": AdaptiveBackoff,
}


def make_backoff(name: str, **params):
    """Build a strategy by registry name (``beb``, ``fibonacci``,
    ``eied``, ``adaptive``); extra keywords reach its constructor."""
    try:
        cls = BACKOFF_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backoff {name!r} (allowed: {', '.join(sorted(BACKOFF_REGISTRY))})"
        ) from None
    return cls(**params)
