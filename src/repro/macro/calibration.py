"""Calibrating the macro link model from the sample-domain PHY.

A `repro.bench`-style workload sweeps the real simulator
(:class:`~repro.sim.network.CbmaNetwork`, fading on, paper-default
config) over a grid of (tag count *k*, tag-to-RX distance *d*),
measuring the Monte-Carlo FER of each cell, and labels each distance
with its **analytic** SNR from the link budget (Friis path loss over
the noise floor, no fading), so every *k* row shares one SNR axis and
the result is the rectangular :class:`~repro.macro.linkmodel.FerSurface`
grid the engine interpolates.

The sweep costs tens of seconds (it runs the full receiver), so it is
run once and cached: :func:`load_or_calibrate` reuses an artifact on
disk whenever its provenance header matches the requesting spec, and
re-sweeps (then overwrites) when it does not.  CI keeps a committed
artifact for the default spec; the ``tiny`` spec exists so smoke jobs
can calibrate from scratch in seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.channel.geometry import Deployment, PAPER_D_METERS
from repro.channel.noise import NoiseModel
from repro.channel.pathloss import LinkBudget
from repro.macro.linkmodel import FerSurface
from repro.obs.taxonomy import C
from repro.obs.tracer import as_tracer
from repro.sim.network import CALIBRATED_EXTRA_NOISE_DB, CbmaConfig, CbmaNetwork
from repro.utils.rng import make_rng, spawn_seed

__all__ = [
    "CalibrationSpec",
    "geometry_snr_db",
    "calibrate",
    "load_or_calibrate",
]


def geometry_snr_db(
    tag_to_rx_m: float,
    es_to_tag_m: float = PAPER_D_METERS,
    budget: Optional[LinkBudget] = None,
    noise: Optional[NoiseModel] = None,
) -> float:
    """Analytic per-tag SNR (dB) of the paper's linear layout.

    Friis backscatter power (eq. (1), unit ``|delta Gamma|``) over the
    calibrated noise floor -- the deterministic axis label the
    calibration grid uses, deliberately excluding fading so the same
    distance always maps to the same SNR.
    """
    budget = budget or LinkBudget()
    noise = noise or NoiseModel(extra_noise_db=CALIBRATED_EXTRA_NOISE_DB)
    amp = budget.received_amplitude(es_to_tag_m, tag_to_rx_m)
    return float(10.0 * np.log10(max(amp**2 / noise.power_w, 1e-30)))


@dataclass(frozen=True)
class CalibrationSpec:
    """What to sweep: the grid, the Monte-Carlo depth, the seed.

    The defaults cover the paper's operating regime: 1-10 concurrent
    tags (the sample-domain ceiling) by 0.5-4 m tag-to-RX distance
    (the Fig. 8(a) sweep), 60 fading realisations per cell.
    """

    tag_counts: Tuple[int, ...] = (1, 2, 4, 6, 8, 10)
    distances_m: Tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0)
    rounds: int = 60
    seed: int = 7
    es_to_tag_m: float = PAPER_D_METERS

    def __post_init__(self) -> None:
        if not self.tag_counts or not self.distances_m:
            raise ValueError("grid axes must be non-empty")
        if list(self.tag_counts) != sorted(set(self.tag_counts)):
            raise ValueError("tag_counts must be strictly ascending")
        if any(k < 1 for k in self.tag_counts):
            raise ValueError("tag counts must be >= 1")
        if len(set(self.distances_m)) != len(self.distances_m):
            raise ValueError("distances must be distinct")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")

    @classmethod
    def tiny(cls) -> "CalibrationSpec":
        """A seconds-scale grid for smoke jobs and tests."""
        return cls(tag_counts=(1, 4, 10), distances_m=(0.5, 1.5, 3.0), rounds=8)

    def provenance(self) -> Dict[str, Any]:
        """The header written into (and matched against) the artifact."""
        cfg = CbmaConfig()
        return {
            "calibrated_from": "repro.sim.network.CbmaNetwork",
            "tag_counts": list(self.tag_counts),
            "distances_m": list(self.distances_m),
            "rounds": self.rounds,
            "seed": self.seed,
            "es_to_tag_m": self.es_to_tag_m,
            "code": f"{cfg.code_family}-{cfg.code_length}",
            "payload_bytes": cfg.payload_bytes,
            "frame_duration_s": cfg.frame_duration_s(),
            "extra_noise_db": CALIBRATED_EXTRA_NOISE_DB,
            "fading": "on",
        }


def calibrate(spec: Optional[CalibrationSpec] = None, tracer=None) -> FerSurface:
    """Sweep the sample-domain PHY into a :class:`FerSurface`.

    Each grid cell builds a fresh :class:`CbmaNetwork` (paper-default
    config, fading on) on the :meth:`Deployment.linear` layout and
    averages FER over ``spec.rounds`` rounds.  Cell seeds derive from
    ``spec.seed`` through one root generator, so the whole sweep is
    reproducible from a single integer yet cells stay independent.
    """
    spec = spec or CalibrationSpec()
    tracer = as_tracer(tracer)
    root = make_rng(spec.seed)
    # Distances sorted by *descending* distance = ascending SNR, the
    # axis order FerSurface requires.
    order = sorted(range(len(spec.distances_m)), key=lambda i: -spec.distances_m[i])
    snr_axis = np.array(
        [geometry_snr_db(spec.distances_m[i], spec.es_to_tag_m) for i in order]
    )
    fer = np.empty((len(spec.tag_counts), len(spec.distances_m)))
    with tracer.span("macro_calibration", cells=fer.size):
        for row, k in enumerate(spec.tag_counts):
            for col, i in enumerate(order):
                d = spec.distances_m[i]
                cfg = CbmaConfig(n_tags=k, seed=spawn_seed(root))
                net = CbmaNetwork(
                    cfg,
                    Deployment.linear(k, tag_to_rx=d, es_to_tag=spec.es_to_tag_m),
                )
                fer[row, col] = net.run_rounds(spec.rounds).fer
                tracer.count(C.MACRO_CALIBRATION_ROUNDS, spec.rounds)
    return FerSurface(
        snr_db_axis=snr_axis,
        k_axis=np.array(spec.tag_counts, dtype=np.float64),
        fer=fer,
        provenance=spec.provenance(),
    )


def _provenance_matches(surface: FerSurface, spec: CalibrationSpec) -> bool:
    want = spec.provenance()
    have = surface.provenance
    return all(have.get(key) == val for key, val in want.items())


def load_or_calibrate(
    path: Union[str, Path],
    spec: Optional[CalibrationSpec] = None,
    tracer=None,
) -> FerSurface:
    """The cached calibration: load *path* if its provenance matches
    *spec*, otherwise sweep fresh and save over it.

    A stale or foreign artifact (different grid, rounds, seed or PHY
    config) is never silently reused -- the provenance header is the
    cache key.
    """
    spec = spec or CalibrationSpec()
    tracer = as_tracer(tracer)
    path = Path(path)
    if path.exists():
        try:
            surface = FerSurface.load(path)
        except (ValueError, KeyError, OSError):
            surface = None
        if surface is not None and _provenance_matches(surface, spec):
            tracer.count(C.MACRO_SURFACE_CACHE_HITS)
            return surface
    t0 = time.perf_counter()
    surface = calibrate(spec, tracer=tracer)
    surface.provenance["sweep_wall_s"] = round(time.perf_counter() - t0, 3)
    path.parent.mkdir(parents=True, exist_ok=True)
    surface.save(path)
    return surface
