"""Tag-side power control -- paper Algorithm 1.

The loop the paper runs on its testbed:

1. every tag transmits ``m`` packets; the receiver ACKs the decoded
   ones (the tag only ever learns its own ACK count);
2. the epoch's frame error rate is computed; if it exceeds a
   threshold, every tag whose ACK ratio is below 50% advances its
   impedance state ``Z`` cyclically (more/other power);
3. repeat, bounded by ``3 x n_tags`` cycles to avoid an infinite loop
   (the paper's own safeguard).

The controller is transport-agnostic: it drives any ``epoch_runner``
callable -- the simulator in this library, a radio in a real system --
that transmits one epoch and reports per-tag ACK counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.tag.tag import Tag

__all__ = ["PowerController", "PowerControlResult", "EpochRunner"]

#: Signature: epoch_runner(tags, packets_per_epoch) -> {tag_id: acked_count}
EpochRunner = Callable[[Sequence[Tag], int], Dict[int, int]]


@dataclass
class PowerControlResult:
    """Outcome of a power-control run."""

    epochs: int
    final_fer: float
    fer_history: List[float] = field(default_factory=list)
    impedance_history: List[List[int]] = field(default_factory=list)
    converged: bool = False
    """True when the FER threshold was met before the cycle limit."""


@dataclass
class PowerController:
    """Algorithm 1 driver.

    Attributes
    ----------
    fer_threshold:
        The FER above which adjustment continues (line 15).
    ack_ratio_floor:
        Tags below this ACK ratio adjust their impedance (line 17,
        the paper's 50%).
    packets_per_epoch:
        ``m``: packets each tag sends per measurement epoch.
    max_cycles_per_tag:
        The paper bounds execution to 3x the number of tags.
    """

    fer_threshold: float = 0.05
    ack_ratio_floor: float = 0.5
    packets_per_epoch: int = 10
    max_cycles_per_tag: int = 3

    def run(self, tags: Sequence[Tag], epoch_runner: EpochRunner) -> PowerControlResult:
        """Run the control loop until convergence or the cycle bound."""
        if not tags:
            raise ValueError("power control needs at least one tag")
        max_epochs = self.max_cycles_per_tag * len(tags)
        result = PowerControlResult(epochs=0, final_fer=1.0)
        best_fer = float("inf")
        best_impedances = [t.impedance_index for t in tags]
        # Per-tag evidence: ack counts and trials per impedance state.
        n_states = {t.tag_id: len(t.codebook) for t in tags}
        acked_at: Dict[int, List[int]] = {t.tag_id: [0] * len(t.codebook) for t in tags}
        tried_at: Dict[int, List[int]] = {t.tag_id: [0] * len(t.codebook) for t in tags}

        for _ in range(max_epochs):
            for tag in tags:
                tag.reset_epoch()
            acks = epoch_runner(tags, self.packets_per_epoch)
            for tag in tags:
                tag.stats.sent = self.packets_per_epoch
                tag.stats.acked = int(acks.get(tag.tag_id, 0))
                acked_at[tag.tag_id][tag.impedance_index] += tag.stats.acked
                tried_at[tag.tag_id][tag.impedance_index] += self.packets_per_epoch

            ratios = [t.stats.ack_ratio for t in tags]
            fer = 1.0 - sum(ratios) / len(ratios)
            result.epochs += 1
            result.fer_history.append(fer)
            result.impedance_history.append([t.impedance_index for t in tags])

            if fer < best_fer:
                best_fer = fer
                best_impedances = [t.impedance_index for t in tags]

            if fer <= self.fer_threshold:
                result.converged = True
                break

            for tag in tags:
                if tag.stats.ack_ratio < self.ack_ratio_floor:
                    tag.step_impedance()

        if result.converged:
            for tag, z in zip(tags, best_impedances):
                tag.set_impedance(z)
            result.final_fer = best_fer
            return result

        # The cyclic search tried every power level (the paper runs it
        # "circularly to try every possible power level").  Two natural
        # final configurations exist: the best *joint* configuration
        # observed, and each tag's individually best-evidence state.
        # One verification epoch per candidate picks the winner.
        per_tag: List[int] = []
        for tag, z_best in zip(tags, best_impedances):
            tid = tag.tag_id
            scores = [
                acked_at[tid][z] / tried_at[tid][z] if tried_at[tid][z] else -1.0
                for z in range(n_states[tid])
            ]
            z_star = int(max(range(len(scores)), key=scores.__getitem__))
            per_tag.append(z_star if scores[z_star] >= 0 else z_best)

        candidates = [best_impedances]
        if per_tag != best_impedances:
            candidates.append(per_tag)
        final_fer = best_fer if best_fer != float("inf") else 1.0
        winner = candidates[0]
        for config in candidates:
            for tag, z in zip(tags, config):
                tag.set_impedance(z)
            acks = epoch_runner(tags, self.packets_per_epoch)
            fer = 1.0 - sum(
                acks.get(t.tag_id, 0) / self.packets_per_epoch for t in tags
            ) / len(tags)
            result.epochs += 1
            result.fer_history.append(fer)
            result.impedance_history.append(list(config))
            if fer < final_fer:
                final_fer = fer
                winner = config

        for tag, z in zip(tags, winner):
            tag.set_impedance(z)
        result.final_fer = final_fer
        return result
