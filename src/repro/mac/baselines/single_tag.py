"""Single-tag (TDMA round-robin) baseline.

The scheme every prior WiFi-backscatter system in the paper's Table I
effectively uses: only one tag occupies the channel at a time, rotating
in round-robin order.  Per-slot success depends only on that tag's own
link (no MAI), so with N tags the aggregate goodput is one tag's
goodput -- the reference against which CBMA's ">10x" claim is measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.utils.rng import make_rng

__all__ = ["SingleTagTdma", "TdmaResult"]


@dataclass
class TdmaResult:
    """Outcome of a TDMA simulation."""

    slots: int
    successes: int
    per_tag_successes: Dict[int, int] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        return self.successes / self.slots if self.slots else 0.0

    def goodput_bps(self, payload_bits: int, slot_duration_s: float) -> float:
        """Aggregate delivered payload bits per second."""
        if slot_duration_s <= 0:
            raise ValueError("slot duration must be positive")
        return self.successes * payload_bits / (self.slots * slot_duration_s)


@dataclass
class SingleTagTdma:
    """Round-robin single-tag access.

    Parameters
    ----------
    tag_ids:
        The tags sharing the channel.
    success_probability:
        Callable ``tag_id -> p_success`` for a solo transmission
        (produced by the PHY simulator; no MAI in this scheme).
    """

    tag_ids: Sequence[int]
    success_probability: Callable[[int], float]

    def run(self, n_slots: int, rng=None) -> TdmaResult:
        """Simulate *n_slots* slots of round-robin access."""
        if n_slots < 0:
            raise ValueError("n_slots must be non-negative")
        rng = make_rng(rng)
        result = TdmaResult(slots=n_slots, successes=0)
        ids: List[int] = list(self.tag_ids)
        if not ids:
            return result
        probs = {tid: float(self.success_probability(tid)) for tid in ids}
        for slot in range(n_slots):
            tid = ids[slot % len(ids)]
            if rng.random() < probs[tid]:
                result.successes += 1
                result.per_tag_successes[tid] = result.per_tag_successes.get(tid, 0) + 1
        return result
