"""Multiple-access baselines the paper contrasts CBMA against.

- :mod:`repro.mac.baselines.single_tag` -- one tag at a time (TDMA
  round-robin), the single-tag-solution reference for the >10x claim.
- :mod:`repro.mac.baselines.fsa` -- framed slotted ALOHA, the
  receiver-coordinated probabilistic TDMA of RFID systems.
- :mod:`repro.mac.baselines.fdma` -- static frequency-division
  assignment.
- :mod:`repro.mac.baselines.netscatter` -- chirp-spread-spectrum
  concurrent access (NetScatter-style, Table I's closest neighbour).
"""

from repro.mac.baselines.fdma import Fdma, FdmaResult
from repro.mac.baselines.fsa import FramedSlottedAloha, FsaResult
from repro.mac.baselines.netscatter import ChirpPhy, NetscatterResult, NetscatterSimulator
from repro.mac.baselines.single_tag import SingleTagTdma, TdmaResult

__all__ = [
    "Fdma",
    "FdmaResult",
    "FramedSlottedAloha",
    "FsaResult",
    "ChirpPhy",
    "NetscatterResult",
    "NetscatterSimulator",
    "SingleTagTdma",
    "TdmaResult",
]
