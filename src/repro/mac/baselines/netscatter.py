"""NetScatter-style chirp-spread-spectrum baseline.

NetScatter (Hessar et al., ref. [6]) is the paper's Table-I neighbour:
it supports hundreds of concurrent tags by giving each tag one *cyclic
shift* of a shared chirp and keying it ON/OFF per symbol; the receiver
de-chirps and takes an FFT, where every tag collapses to its own
frequency bin.  This module implements that physical layer at sample
level so the Table-I comparison ("many tags, low rate" vs CBMA's
"fewer tags, high rate") rests on simulation rather than citation:

- :class:`ChirpPhy` -- chirp generation, cyclic shifting, de-chirp +
  FFT demodulation;
- :class:`NetscatterSimulator` -- N concurrent OOK-keyed tags through
  AWGN with per-tag amplitudes, per-symbol bin detection, BER and
  aggregate throughput accounting.

The scheme's structural properties emerge naturally: capacity scales
with the symbol length (one tag per bin), the per-tag rate *falls* as
1/N-symbol-length, and near-far shows up as FFT leakage between bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["ChirpPhy", "NetscatterSimulator", "NetscatterResult"]


class ChirpPhy:
    """Chirp modulation over *n_bins* samples per symbol.

    The base up-chirp sweeps the full (normalised) bandwidth once per
    symbol; tag *k*'s waveform is the base chirp cyclically shifted by
    ``k`` samples, which after de-chirping becomes a complex tone in
    FFT bin ``k``.
    """

    def __init__(self, n_bins: int):
        if n_bins < 2 or n_bins & (n_bins - 1):
            raise ValueError("n_bins must be a power of two >= 2")
        self.n_bins = n_bins
        n = np.arange(n_bins)
        #: The base up-chirp (unit amplitude).
        self.base_chirp = np.exp(1j * np.pi * n * n / n_bins)

    def tag_symbol(self, shift: int) -> np.ndarray:
        """The waveform of one ON symbol for the tag at *shift*."""
        if not 0 <= shift < self.n_bins:
            raise ValueError(f"shift {shift} outside 0..{self.n_bins - 1}")
        return np.roll(self.base_chirp, shift)

    def bin_of_shift(self, shift: int) -> int:
        """FFT bin where a *shift*-rolled chirp lands after de-chirping.

        ``roll(c, s)[n] * conj(c[n]) = exp(j pi s^2 / N) * exp(-j 2 pi s n / N)``
        -- a *negative*-frequency tone, i.e. bin ``(N - s) mod N``.
        """
        return (self.n_bins - shift) % self.n_bins

    def dechirp(self, symbol: np.ndarray) -> np.ndarray:
        """De-chirp + FFT: per-bin complex amplitudes of one symbol."""
        symbol = np.asarray(symbol)
        if symbol.size != self.n_bins:
            raise ValueError(f"symbol must have {self.n_bins} samples")
        return np.fft.fft(symbol * np.conj(self.base_chirp)) / self.n_bins

    def detect_bins(self, symbol: np.ndarray, threshold: float) -> np.ndarray:
        """Bin indices whose magnitude exceeds *threshold*."""
        spectrum = np.abs(self.dechirp(symbol))
        return np.flatnonzero(spectrum > threshold)


@dataclass
class NetscatterResult:
    """Outcome of a NetScatter simulation."""

    n_tags: int
    symbols: int
    bit_errors: int
    bits_total: int
    symbol_rate_hz: float

    @property
    def ber(self) -> float:
        return self.bit_errors / self.bits_total if self.bits_total else 0.0

    @property
    def per_tag_rate_bps(self) -> float:
        """Raw per-tag bit rate (one OOK bit per symbol)."""
        return self.symbol_rate_hz

    @property
    def aggregate_rate_bps(self) -> float:
        """Raw aggregate rate across tags."""
        return self.n_tags * self.symbol_rate_hz

    def goodput_bps(self) -> float:
        """Error-discounted aggregate rate."""
        return self.aggregate_rate_bps * (1.0 - self.ber)


@dataclass
class NetscatterSimulator:
    """N concurrent CSS tags through AWGN.

    Parameters
    ----------
    n_tags:
        Concurrent tags; must be <= ``n_bins`` (one bin each).  Tags
        use shifts spread evenly across the bins so adjacent-bin
        leakage is representative.
    n_bins:
        Chirp length in samples (NetScatter uses sizeable symbols --
        hundreds of bins -- which is exactly why its per-tag rate is
        low).
    bandwidth_hz:
        Occupied bandwidth; the symbol rate is ``bandwidth / n_bins``.
    snr_db:
        Per-tag chip SNR at the receiver.
    amplitude_spread_db:
        Peak-to-peak random per-tag power spread (near-far) applied on
        top of the nominal SNR.
    """

    n_tags: int
    n_bins: int = 256
    bandwidth_hz: float = 1.0e6
    snr_db: float = 6.0
    amplitude_spread_db: float = 0.0
    threshold_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.n_tags < 1:
            raise ValueError("n_tags must be >= 1")
        if self.n_tags > self.n_bins:
            raise ValueError(f"at most {self.n_bins} tags fit in {self.n_bins} bins")
        self.phy = ChirpPhy(self.n_bins)
        step = self.n_bins // self.n_tags
        self.shifts = [i * step for i in range(self.n_tags)]

    @property
    def symbol_rate_hz(self) -> float:
        return self.bandwidth_hz / self.n_bins

    def run(self, n_symbols: int, rng=None) -> NetscatterResult:
        """Simulate *n_symbols* OOK symbols from every tag."""
        if n_symbols < 0:
            raise ValueError("n_symbols must be non-negative")
        rng = make_rng(rng)
        # Unit-amplitude tags; noise sized for the requested SNR at the
        # *bin* level: de-chirp integrates n_bins samples, so per-sample
        # noise power n_bins times the bin noise target.
        signal_amp = np.ones(self.n_tags)
        if self.amplitude_spread_db > 0:
            spread = rng.uniform(
                -self.amplitude_spread_db / 2, self.amplitude_spread_db / 2, self.n_tags
            )
            signal_amp = 10.0 ** (spread / 20.0)
        bin_noise_power = 10.0 ** (-self.snr_db / 10.0)
        sample_noise_std = np.sqrt(bin_noise_power * self.n_bins / 2.0)

        waveforms = np.array([self.phy.tag_symbol(s) for s in self.shifts])
        phases = np.exp(1j * rng.uniform(0, 2 * np.pi, self.n_tags))

        bit_errors = 0
        bits_total = 0
        for _ in range(n_symbols):
            bits = rng.integers(0, 2, self.n_tags)
            symbol = (
                (signal_amp * phases * bits) @ waveforms
                if self.n_tags
                else np.zeros(self.n_bins, dtype=complex)
            )
            noise = sample_noise_std * (
                rng.normal(size=self.n_bins) + 1j * rng.normal(size=self.n_bins)
            )
            spectrum = np.abs(self.phy.dechirp(symbol + noise))
            for k, shift in enumerate(self.shifts):
                bin_k = self.phy.bin_of_shift(shift)
                decided = int(spectrum[bin_k] > self.threshold_factor * signal_amp[k])
                bit_errors += int(decided != bits[k])
                bits_total += 1
        return NetscatterResult(
            n_tags=self.n_tags,
            symbols=n_symbols,
            bit_errors=bit_errors,
            bits_total=bits_total,
            symbol_rate_hz=self.symbol_rate_hz,
        )
