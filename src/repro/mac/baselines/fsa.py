"""Framed Slotted ALOHA (FSA) baseline -- the TDMA anti-collision scheme.

The paper names FSA as the dominant probabilistic TDMA access method
for backscatter/RFID (EPC Gen2 style) and criticises it on two counts:
the receiver must act as a centralised controller (choosing the frame
size), and throughput is capped by the slotted-ALOHA limit.  This
implementation includes the standard dynamic frame-size adaptation
(Q-algorithm flavour: next frame size tracks the estimated backlog) so
the baseline is as strong as the classic literature allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["FramedSlottedAloha", "FsaResult"]


@dataclass
class FsaResult:
    """Outcome of an FSA simulation."""

    frames: int
    slots: int
    singleton_slots: int
    collision_slots: int
    empty_slots: int
    successes: int
    per_tag_successes: Dict[int, int] = field(default_factory=dict)

    @property
    def slot_efficiency(self) -> float:
        """Successful slots over all slots (<= 1/e ~ 0.368 at best)."""
        return self.successes / self.slots if self.slots else 0.0

    def goodput_bps(self, payload_bits: int, slot_duration_s: float) -> float:
        """Aggregate delivered payload bits per second."""
        if slot_duration_s <= 0:
            raise ValueError("slot duration must be positive")
        return self.successes * payload_bits / (self.slots * slot_duration_s)


@dataclass
class FramedSlottedAloha:
    """Dynamic framed slotted ALOHA.

    Parameters
    ----------
    tag_ids:
        Contending tags.  Every tag transmits in one random slot per
        frame (all tags always have traffic -- saturation analysis,
        the regime of the paper's throughput comparison).
    success_probability:
        ``tag_id -> p_success`` for a *collision-free* transmission;
        slots with >= 2 tags are always lost (no capture).
    initial_frame_size:
        Starting frame size; ``None`` uses the optimum (one slot per
        tag).
    adapt:
        When true, the next frame size is set to the estimated number
        of still-unresolved contenders (2.39x collision count, the
        classic Vogt estimator), clamped to [1, 4 * n_tags].
    """

    tag_ids: Sequence[int]
    success_probability: Callable[[int], float]
    initial_frame_size: Optional[int] = None
    adapt: bool = True

    def run(self, n_frames: int, rng=None) -> FsaResult:
        """Simulate *n_frames* frames of saturated FSA."""
        if n_frames < 0:
            raise ValueError("n_frames must be non-negative")
        rng = make_rng(rng)
        ids: List[int] = list(self.tag_ids)
        n = len(ids)
        frame_size = self.initial_frame_size or max(n, 1)
        probs = {tid: float(self.success_probability(tid)) for tid in ids}

        result = FsaResult(
            frames=n_frames, slots=0, singleton_slots=0, collision_slots=0,
            empty_slots=0, successes=0,
        )
        for _ in range(n_frames):
            choices = rng.integers(0, frame_size, size=n)
            counts = np.bincount(choices, minlength=frame_size)
            result.slots += frame_size
            result.empty_slots += int(np.count_nonzero(counts == 0))
            result.collision_slots += int(np.count_nonzero(counts >= 2))
            singleton_slots = np.flatnonzero(counts == 1)
            result.singleton_slots += singleton_slots.size
            for slot in singleton_slots:
                tid = ids[int(np.flatnonzero(choices == slot)[0])]
                if rng.random() < probs[tid]:
                    result.successes += 1
                    result.per_tag_successes[tid] = result.per_tag_successes.get(tid, 0) + 1
            if self.adapt:
                collisions = int(np.count_nonzero(counts >= 2))
                estimate = max(int(round(2.39 * collisions)), n)
                frame_size = int(np.clip(estimate, 1, 4 * max(n, 1)))
        return result
