"""FDMA baseline.

The paper's other anti-collision strawman: tags are assigned disjoint
frequency sub-channels.  Its criticisms are structural -- the tag needs
an agile (expensive) oscillator, the receiver must centrally assign
channels, and the usable bandwidth divides among tags -- and all three
appear in this model: with ``n_channels`` sub-channels each tag gets a
collision-free link at ``1/n_channels`` of the aggregate symbol rate,
and tags beyond the channel count must time-share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.utils.rng import make_rng

__all__ = ["Fdma", "FdmaResult"]


@dataclass
class FdmaResult:
    """Outcome of an FDMA simulation."""

    rounds: int
    successes: int
    per_tag_successes: Dict[int, int] = field(default_factory=dict)

    def goodput_bps(self, payload_bits: int, round_duration_s: float, n_channels: int) -> float:
        """Aggregate delivered payload bits per second.

        Each sub-channel carries ``1/n_channels`` of the full-band
        symbol rate, so a "round" on a sub-channel lasts
        ``n_channels`` times longer than a full-band frame.
        """
        if round_duration_s <= 0 or n_channels < 1:
            raise ValueError("invalid round duration or channel count")
        return self.successes * payload_bits / (self.rounds * round_duration_s * n_channels)


@dataclass
class Fdma:
    """Static FDMA channel assignment.

    Parameters
    ----------
    tag_ids:
        Tags to serve.
    n_channels:
        Available sub-channels.  Tags are assigned round-robin; when
        ``len(tag_ids) > n_channels`` the extras time-share their
        channel in successive rounds.
    success_probability:
        ``tag_id -> p_success`` for an interference-free transmission.
    """

    tag_ids: Sequence[int]
    n_channels: int
    success_probability: Callable[[int], float]

    def run(self, n_rounds: int, rng=None) -> FdmaResult:
        """Simulate *n_rounds* rounds; each round every channel carries
        one transmission from its currently scheduled tag."""
        if self.n_channels < 1:
            raise ValueError("n_channels must be >= 1")
        if n_rounds < 0:
            raise ValueError("n_rounds must be non-negative")
        rng = make_rng(rng)
        ids: List[int] = list(self.tag_ids)
        result = FdmaResult(rounds=n_rounds, successes=0)
        if not ids:
            return result
        probs = {tid: float(self.success_probability(tid)) for tid in ids}
        # Channel k serves tags k, k + n_channels, ... in rotation.
        assignments: List[List[int]] = [[] for _ in range(self.n_channels)]
        for i, tid in enumerate(ids):
            assignments[i % self.n_channels].append(tid)
        for rnd in range(n_rounds):
            for channel_tags in assignments:
                if not channel_tags:
                    continue
                tid = channel_tags[rnd % len(channel_tags)]
                if rng.random() < probs[tid]:
                    result.successes += 1
                    result.per_tag_successes[tid] = result.per_tag_successes.get(tid, 0) + 1
        return result
