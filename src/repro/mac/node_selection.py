"""Node (tag) selection -- paper Sec. V-C.

When power control alone cannot equalise the group (a tag is too far,
or two tags sit within half a wavelength of each other), CBMA swaps
"bad" tags -- those whose ACK ratio stays below 70% -- for idle tags at
better positions.  The paper's procedure is a greedy walk with a
simulated-annealing acceptance rule:

- candidate idle tags are drawn at random, excluding those too close
  to already-selected tags;
- a candidate with higher *theoretical* received signal strength
  (Friis eq. (1), which both sides can compute from geometry) is
  always accepted;
- a worse candidate is accepted with probability that decays as the
  round counter ``T`` grows -- exploration early, exploitation late.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.channel.geometry import Deployment
from repro.channel.pathloss import LinkBudget
from repro.utils.rng import make_rng

__all__ = ["NodeSelector", "SelectionResult"]


@dataclass
class SelectionResult:
    """Outcome of one selection round."""

    replaced: List[int] = field(default_factory=list)
    """Indices (into the deployment) of tags that were swapped out."""
    accepted_worse: int = 0
    """How many swaps were annealing-accepted despite lower strength."""
    group: List[int] = field(default_factory=list)
    """Deployment indices of the active group after selection."""
    blacklisted: List[int] = field(default_factory=list)
    """Tags newly blacklisted this round (persistently bad)."""
    readmitted: List[int] = field(default_factory=list)
    """Previously blacklisted tags whose quarantine expired this round."""


@dataclass
class NodeSelector:
    """Greedy/annealing tag-group optimiser.

    Attributes
    ----------
    deployment:
        All tag positions (active + idle candidates).
    budget:
        Link budget for the theoretical strength comparisons.
    ack_ratio_floor:
        Tags below this after power control are "bad" (paper: 70%).
    exclusion_radius_m:
        Candidates closer than this to any selected tag are skipped
        (default: half the carrier wavelength, the paper's coupling
        limit).
    initial_temperature / cooling:
        Annealing schedule; acceptance of a worse candidate is
        ``exp(delta / temperature(T))`` with ``temperature(T) =
        initial_temperature * cooling^T`` and ``delta < 0`` in dB.
    blacklist_after:
        A tag observed bad (below the ACK floor) this many consecutive
        selection rounds is blacklisted: removed from the idle
        candidate pool so the annealer stops re-admitting a tag that a
        hardware fault (stuck switch, browned-out harvester) keeps
        breaking.  Geometry says nothing about such faults, which is
        why strength-based selection alone keeps picking them.
    readmit_after:
        Blacklisted tags are quarantined for this many selection
        rounds, then readmitted on probation (their bad-streak counter
        reset) -- transient faults clear, and a permanent one simply
        re-earns the blacklist.
    """

    deployment: Deployment
    budget: LinkBudget
    ack_ratio_floor: float = 0.7
    exclusion_radius_m: Optional[float] = None
    initial_temperature: float = 6.0
    cooling: float = 0.7
    blacklist_after: int = 3
    readmit_after: int = 10
    _round: int = field(default=0, init=False)
    _consecutive_bad: Dict[int, int] = field(default_factory=dict, init=False)
    _blacklist: Dict[int, int] = field(default_factory=dict, init=False)
    """Deployment index -> round at which it was blacklisted."""

    def __post_init__(self) -> None:
        if self.exclusion_radius_m is None:
            self.exclusion_radius_m = self.budget.wavelength_m / 2.0
        if self.blacklist_after < 1 or self.readmit_after < 1:
            raise ValueError("blacklist_after and readmit_after must be >= 1")

    @property
    def blacklisted(self) -> List[int]:
        """Deployment indices currently quarantined."""
        return sorted(self._blacklist)

    def strength_dbm(self, index: int) -> float:
        """Theoretical received strength of deployment tag *index*."""
        d1, d2 = self.deployment.tag_distances(index)
        return self.budget.received_power_dbm(d1, d2)

    def _temperature(self) -> float:
        return self.initial_temperature * (self.cooling**self._round)

    def _too_close(self, candidate: int, group: Sequence[int]) -> bool:
        cand_point = self.deployment.tags[candidate]
        for idx in group:
            if idx == candidate:
                continue
            if cand_point.distance_to(self.deployment.tags[idx]) < self.exclusion_radius_m:
                return True
        return False

    def select_round(
        self,
        group: Sequence[int],
        ack_ratios: Sequence[float],
        rng=None,
        candidates_per_bad_tag: int = 8,
    ) -> SelectionResult:
        """Swap out the group's bad tags for better-placed idle tags.

        Parameters
        ----------
        group:
            Deployment indices of the currently active tags.
        ack_ratios:
            Post-power-control ACK ratio per group member (same order).
        candidates_per_bad_tag:
            Random idle candidates examined per bad tag before giving
            up (the paper notes there may not be enough tags; then the
            bad tag simply stays).
        """
        if len(group) != len(ack_ratios):
            raise ValueError("one ack ratio per group member required")
        rng = make_rng(rng)
        group = list(group)
        result = SelectionResult(group=group)

        # Quarantine bookkeeping: readmit tags whose sentence expired
        # (on probation -- their bad streak restarts from zero), then
        # fold this round's observations into the streak counters and
        # blacklist tags that stayed bad for ``blacklist_after`` rounds.
        for idx in sorted(self._blacklist):
            if self._round - self._blacklist[idx] >= self.readmit_after:
                del self._blacklist[idx]
                self._consecutive_bad.pop(idx, None)
                result.readmitted.append(idx)
        for idx, ratio in zip(group, ack_ratios):
            if ratio < self.ack_ratio_floor:
                streak = self._consecutive_bad.get(idx, 0) + 1
                self._consecutive_bad[idx] = streak
                if streak >= self.blacklist_after and idx not in self._blacklist:
                    self._blacklist[idx] = self._round
                    result.blacklisted.append(idx)
            else:
                self._consecutive_bad.pop(idx, None)

        idle: Set[int] = (
            set(range(len(self.deployment.tags))) - set(group) - set(self._blacklist)
        )

        for pos, (idx, ratio) in enumerate(zip(list(group), ack_ratios)):
            if ratio >= self.ack_ratio_floor:
                continue
            if not idle:
                break
            old_strength = self.strength_dbm(idx)
            for _ in range(candidates_per_bad_tag):
                candidate = int(rng.choice(sorted(idle)))
                if self._too_close(candidate, group):
                    continue
                new_strength = self.strength_dbm(candidate)
                delta = new_strength - old_strength
                if delta >= 0:
                    accept, worse = True, False
                else:
                    accept = bool(rng.random() < math.exp(delta / max(self._temperature(), 1e-9)))
                    worse = accept
                if accept:
                    idle.discard(candidate)
                    if idx not in self._blacklist:
                        idle.add(idx)
                    group[pos] = candidate
                    result.replaced.append(idx)
                    if worse:
                        result.accepted_worse += 1
                    break

        self._round += 1
        result.group = group
        return result
