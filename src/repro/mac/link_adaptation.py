"""Adaptive spreading-factor control (the paper's "adaptive multiplexing").

The paper's contribution list promises "realizing the adaptive
multiplexing scheme" on top of node selection but never specifies it.
The natural knob is the spreading factor: longer codes buy MAI/noise
margin at proportional cost in per-tag rate, so the goodput-optimal
length sits exactly where the FER knee ends -- a moving target as tags
join, move, or the channel changes.

:class:`SpreadingFactorController` is a measurement-driven ladder
climber in the spirit of WiFi rate adaptation (Minstrel-lite):

- it maintains smoothed FER estimates per candidate code length;
- each epoch it *exploits* the length with the best estimated goodput
  (``rate x (1 - FER)``) and occasionally *probes* a neighbour;
- switching is hysteretic, so measurement noise does not thrash the
  network (every switch costs a control broadcast to all tags).

The controller is transport-agnostic like
:class:`~repro.mac.power_control.PowerController`: it drives any
``measure(code_length, rounds) -> fer`` callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.utils.rng import make_rng

__all__ = ["SpreadingFactorController", "AdaptationResult"]

#: Signature: measure(code_length, rounds) -> observed FER in [0, 1].
Measure = Callable[[int, int], float]


@dataclass
class AdaptationResult:
    """Outcome of an adaptation run."""

    chosen_length: int
    history: List[tuple] = field(default_factory=list)
    """(epoch, code_length, fer, goodput_score) per measurement."""

    def lengths_tried(self) -> List[int]:
        return sorted({h[1] for h in self.history})


@dataclass
class SpreadingFactorController:
    """Goodput-seeking spreading-factor ladder.

    Parameters
    ----------
    lengths:
        The candidate code lengths, ascending (must be valid for the
        code family in use -- e.g. even for 2NC).
    ewma_alpha:
        Smoothing for per-length FER estimates.
    probe_period:
        A neighbouring length is probed every this many epochs.
    hysteresis:
        A switch requires the challenger's goodput score to beat the
        incumbent's by this relative margin.
    """

    lengths: Sequence[int] = (32, 64, 128, 256)
    ewma_alpha: float = 0.4
    probe_period: int = 3
    hysteresis: float = 0.05
    _fer: Dict[int, float] = field(default_factory=dict, init=False)
    _seen: Dict[int, bool] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if not self.lengths or list(self.lengths) != sorted(set(self.lengths)):
            raise ValueError("lengths must be a non-empty ascending unique sequence")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")

    # ------------------------------------------------------------------

    def _update(self, length: int, fer: float) -> None:
        fer = min(max(fer, 0.0), 1.0)
        if length in self._fer:
            self._fer[length] += self.ewma_alpha * (fer - self._fer[length])
        else:
            self._fer[length] = fer
        self._seen[length] = True

    def goodput_score(self, length: int) -> float:
        """Estimated goodput, normalised: ``(1 - FER) / length``.

        Unmeasured lengths score optimistically at their rate ceiling;
        that optimism steers *probing*, never switching (a switch
        requires a measurement).
        """
        fer = self._fer.get(length, 0.0)
        return (1.0 - fer) / length

    def best_length(self, seen_only: bool = False) -> int:
        """The length with the best current goodput score."""
        pool = [l for l in self.lengths if not seen_only or self._seen.get(l)]
        if not pool:
            pool = list(self.lengths)
        return max(pool, key=self.goodput_score)

    def _neighbour(self, length: int, rng) -> int:
        """A neighbouring length to probe, preferring unmeasured ones."""
        idx = list(self.lengths).index(length)
        options = []
        if idx > 0:
            options.append(self.lengths[idx - 1])
        if idx < len(self.lengths) - 1:
            options.append(self.lengths[idx + 1])
        if not options:
            return length
        unseen = [o for o in options if not self._seen.get(o)]
        pool = unseen or options
        return int(rng.choice(pool))

    def run(
        self,
        measure: Measure,
        n_epochs: int = 12,
        rounds_per_epoch: int = 20,
        start_length: Optional[int] = None,
        rng=None,
    ) -> AdaptationResult:
        """Adapt for *n_epochs*; returns the chosen length and history."""
        if n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        rng = make_rng(rng)
        current = int(start_length) if start_length is not None else self.lengths[len(self.lengths) // 2]
        if current not in self.lengths:
            raise ValueError(f"start_length {current} not among candidates {self.lengths}")
        result = AdaptationResult(chosen_length=current)

        for epoch in range(n_epochs):
            probing = epoch % self.probe_period == self.probe_period - 1
            target = self._neighbour(current, rng) if probing else current
            fer = float(measure(int(target), rounds_per_epoch))
            self._update(target, fer)
            result.history.append((epoch, int(target), fer, self.goodput_score(target)))

            challenger = self.best_length(seen_only=True)
            if challenger != current:
                incumbent_score = self.goodput_score(current)
                if self.goodput_score(challenger) > incumbent_score * (1.0 + self.hysteresis):
                    current = challenger

        result.chosen_length = current
        return result
