"""Medium-access layer: power control, node selection, baselines.

- :mod:`repro.mac.power_control` -- the paper's Algorithm 1.
- :mod:`repro.mac.node_selection` -- greedy/annealing tag-group
  optimisation (Sec. V-C).
- :mod:`repro.mac.baselines` -- single-tag TDMA, FSA, FDMA.
- :mod:`repro.mac.fairness` -- starvation analysis and rotating group
  scheduling (Sec. VIII-D).
- :mod:`repro.mac.arq` -- stop-and-wait reliability over the ACK loop.
- :mod:`repro.mac.link_adaptation` -- goodput-seeking spreading-factor
  control (the paper's "adaptive multiplexing" thread).
"""

from repro.mac.baselines import (
    Fdma,
    FdmaResult,
    FramedSlottedAloha,
    FsaResult,
    SingleTagTdma,
    TdmaResult,
)
from repro.mac.arq import ArqSimulator, ArqStats, Message
from repro.mac.fairness import RotatingGroupScheduler, ServiceLog, jain_index
from repro.mac.link_adaptation import AdaptationResult, SpreadingFactorController
from repro.mac.node_selection import NodeSelector, SelectionResult
from repro.mac.power_control import PowerController, PowerControlResult

__all__ = [
    "ArqSimulator",
    "ArqStats",
    "Message",
    "AdaptationResult",
    "SpreadingFactorController",
    "Fdma",
    "FdmaResult",
    "FramedSlottedAloha",
    "FsaResult",
    "SingleTagTdma",
    "TdmaResult",
    "RotatingGroupScheduler",
    "ServiceLog",
    "jain_index",
    "NodeSelector",
    "SelectionResult",
    "PowerController",
    "PowerControlResult",
]
