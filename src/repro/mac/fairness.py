"""Fairness and starvation analysis of tag selection (paper Sec. VIII-D).

The paper discusses the *starvation problem* of its selection
algorithm: tags at weak positions could be excluded forever.  Its
answer is group rotation -- "the starvation problem can be probably
solved by selecting different groups of tags" -- plus mobility.  This
module implements both the measurement and the remedy:

- :func:`jain_index` quantifies service fairness;
- :class:`ServiceLog` tracks how often each tag is scheduled and
  delivers;
- :class:`RotatingGroupScheduler` rotates which tags form the active
  group across epochs, weighted so recently starved tags are scheduled
  sooner, while still honouring the spatial exclusion rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.channel.geometry import Deployment
from repro.utils.rng import make_rng

__all__ = ["jain_index", "ServiceLog", "RotatingGroupScheduler"]


def jain_index(shares: Sequence[float]) -> float:
    """Jain's fairness index: 1 means perfectly even, 1/n maximally unfair.

    ``J = (sum x)^2 / (n * sum x^2)`` over non-negative service shares.
    An all-zero allocation is defined as perfectly fair (no one was
    served, no one was favoured).
    """
    x = np.asarray(shares, dtype=np.float64)
    if x.size == 0:
        raise ValueError("shares must be non-empty")
    if (x < 0).any():
        raise ValueError("shares must be non-negative")
    total_sq = float(np.sum(x**2))
    if total_sq == 0:
        return 1.0
    return float(np.sum(x)) ** 2 / (x.size * total_sq)


@dataclass
class ServiceLog:
    """Per-tag scheduling and delivery bookkeeping."""

    n_tags: int
    scheduled: Dict[int, int] = field(default_factory=dict)
    delivered: Dict[int, int] = field(default_factory=dict)
    epochs: int = 0

    def record_epoch(self, group: Sequence[int], delivered_counts: Dict[int, int]) -> None:
        """Record one epoch's active group and its deliveries."""
        self.epochs += 1
        for idx in group:
            self.scheduled[idx] = self.scheduled.get(idx, 0) + 1
        for idx, count in delivered_counts.items():
            self.delivered[idx] = self.delivered.get(idx, 0) + int(count)

    def schedule_shares(self) -> np.ndarray:
        """Fraction of epochs each tag was scheduled."""
        if self.epochs == 0:
            return np.zeros(self.n_tags)
        return np.array(
            [self.scheduled.get(i, 0) / self.epochs for i in range(self.n_tags)]
        )

    def starved(self, min_share: float = 0.05) -> List[int]:
        """Tags scheduled less than *min_share* of epochs."""
        shares = self.schedule_shares()
        return [i for i in range(self.n_tags) if shares[i] < min_share]

    def fairness(self) -> float:
        """Jain index of the scheduling shares."""
        return jain_index(self.schedule_shares())


@dataclass
class RotatingGroupScheduler:
    """Group scheduler that prevents starvation by rotation.

    Each epoch it picks ``group_size`` tags from the deployment.  Tags
    are weighted by how long they have waited since last being
    scheduled (aged weighting), so every tag is served infinitely often
    regardless of position -- the paper's group-rotation remedy.  The
    spatial exclusion rule (no two scheduled tags within
    *exclusion_radius_m*) is still enforced where possible.
    """

    deployment: Deployment
    group_size: int
    exclusion_radius_m: float = 0.075
    _age: Dict[int, int] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        n = len(self.deployment.tags)
        if not 0 < self.group_size <= n:
            raise ValueError(f"group_size must be in 1..{n}")
        for i in range(n):
            self._age[i] = 1

    def _too_close(self, candidate: int, chosen: Sequence[int]) -> bool:
        p = self.deployment.tags[candidate]
        return any(
            p.distance_to(self.deployment.tags[c]) < self.exclusion_radius_m for c in chosen
        )

    def next_group(self, rng=None) -> List[int]:
        """Select the next epoch's active group (aged-weighted sampling)."""
        rng = make_rng(rng)
        n = len(self.deployment.tags)
        chosen: List[int] = []
        remaining: Set[int] = set(range(n))
        while len(chosen) < self.group_size and remaining:
            pool = sorted(remaining)
            weights = np.array([self._age[i] for i in pool], dtype=np.float64)
            weights /= weights.sum()
            pick = int(rng.choice(pool, p=weights))
            remaining.discard(pick)
            if self._too_close(pick, chosen):
                continue
            chosen.append(pick)
        # Relax the exclusion rule if it starved the group of members.
        if len(chosen) < self.group_size:
            leftovers = [i for i in sorted(set(range(n)) - set(chosen))]
            leftovers.sort(key=lambda i: -self._age[i])
            chosen.extend(leftovers[: self.group_size - len(chosen)])
        for i in range(n):
            if i in chosen:
                self._age[i] = 1
            else:
                self._age[i] += 1
        return chosen
