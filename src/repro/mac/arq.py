"""Stop-and-wait ARQ on top of CBMA rounds.

The paper's ACK broadcast (Sec. III-B) is used only to drive power
control; a real deployment also needs *reliability*: unacknowledged
frames must be retransmitted.  This layer adds exactly that, in the
simplest form a passive tag can implement -- stop-and-wait with a
1-byte sequence number prefixed to the payload:

- each tag keeps a FIFO of pending messages;
- every round, each backlogged tag whose retransmission timer expired
  transmits its head-of-line message;
- an ACK naming the tag pops the message (the receiver dedupes on the
  sequence number, so a lost ACK only costs a duplicate, never data --
  duplicates are counted in :attr:`ArqStats.duplicates`);
- an unacknowledged attempt backs off exponentially
  (``backoff_base_rounds * 2^(attempts-1)`` rounds, capped at
  ``backoff_cap_rounds``) before the next try, so a jammed or faulted
  channel is not hammered every round;
- after ``max_retries`` unacknowledged attempts the message is dropped
  and counted.

When the underlying network carries a :class:`repro.faults.FaultPlan`,
the ARQ round driver honours it end to end: transmit faults
(dropout/brownout), channel faults (burst jammer, ADC clipping), clock
drift, and downlink ACK loss all flow through the same code path as
:meth:`CbmaNetwork.run_round`.

The simulation advances in CBMA round units; a traffic model
(:mod:`repro.sim.traffic`) injects arrivals between rounds, giving
latency/throughput curves under offered load -- the network-facing view
the paper's evaluation stops short of.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.obs.taxonomy import C
from repro.sim.network import CbmaNetwork
from repro.utils.rng import make_rng

__all__ = ["Message", "ArqStats", "ArqSimulator"]


@dataclass
class Message:
    """One application message queued at a tag."""

    tag_id: int
    seq: int
    payload: bytes
    arrival_time_s: float
    attempts: int = 0
    delivered_time_s: Optional[float] = None
    next_round: int = 0
    """Earliest round index this message may (re)transmit -- the
    stop-and-wait retransmission timer, advanced by the exponential
    backoff after every unacknowledged attempt."""

    @property
    def latency_s(self) -> Optional[float]:
        if self.delivered_time_s is None:
            return None
        return self.delivered_time_s - self.arrival_time_s


@dataclass
class ArqStats:
    """Aggregate outcome of an ARQ simulation."""

    offered: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicates: int = 0
    """Retransmissions the receiver decoded again because the ACK for
    an earlier attempt never reached the tag (deduped on sequence
    number; never double-counted in :attr:`delivered`)."""
    acks_lost: int = 0
    """Downlink ACKs that failed to reach their tag (fault-injected or
    ``ack_loss_prob``-drawn)."""
    transmissions: int = 0
    latencies_s: List[float] = field(default_factory=list)
    backlog_samples: List[int] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.offered if self.offered else 1.0

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self.latencies_s)) if self.latencies_s else 0.0

    @property
    def p95_latency_s(self) -> float:
        return float(np.percentile(self.latencies_s, 95)) if self.latencies_s else 0.0

    @property
    def mean_attempts(self) -> float:
        return self.transmissions / self.delivered if self.delivered else 0.0

    def goodput_bps(self, payload_bits: int) -> float:
        """Delivered application bits per second."""
        return self.delivered * payload_bits / self.elapsed_s if self.elapsed_s else 0.0


class ArqSimulator:
    """Reliability layer driving a :class:`CbmaNetwork` round by round.

    Parameters
    ----------
    network:
        The PHY/MAC substrate.  Its configured ``payload_bytes`` must
        leave one byte for the sequence number.
    traffic:
        Arrival model with a ``draw(n_tags, duration_s, rng)`` method.
    max_retries:
        Transmission attempts per message before it is dropped.
    max_queue:
        Per-tag queue capacity; arrivals beyond it are dropped at the
        tail (counted as offered + dropped).
    backoff_base_rounds:
        Rounds waited after the first unacknowledged attempt; each
        further failure doubles the wait (exponential backoff).
    backoff_cap_rounds:
        Upper bound on the backoff wait (rounds).
    ack_loss_prob:
        Probability that the downlink ACK for a successful decode never
        reaches the tag (on top of any fault-injected
        :class:`~repro.faults.AckLoss`).  The receiver's dedupe on the
        sequence number turns each lost ACK into a duplicate, never a
        double delivery.
    backoff:
        Optional contention-window strategy (duck-typed to the
        :mod:`repro.macro.backoff` zoo: ``initial_cw()``,
        ``on_failure(cw, attempts)``, ``on_success(cw)``,
        ``delay_slots(cw, rng)``).  When given, it replaces the
        built-in deterministic exponential timer: each tag carries a
        contention window, failures widen it, acknowledged deliveries
        shrink it, and the retransmission wait is drawn from it.  When
        ``None`` (default) the legacy
        ``backoff_base_rounds * 2^(attempts-1)`` behaviour is
        unchanged.
    """

    def __init__(
        self,
        network: CbmaNetwork,
        traffic,
        max_retries: int = 8,
        max_queue: int = 32,
        backoff_base_rounds: int = 1,
        backoff_cap_rounds: int = 16,
        ack_loss_prob: float = 0.0,
        backoff=None,
    ):
        if network.config.payload_bytes < 2:
            raise ValueError("payload must fit a sequence byte plus data")
        if max_retries < 1 or max_queue < 1:
            raise ValueError("max_retries and max_queue must be >= 1")
        if backoff_base_rounds < 0 or backoff_cap_rounds < backoff_base_rounds:
            raise ValueError(
                "backoff_base_rounds must be >= 0 and backoff_cap_rounds >= backoff_base_rounds"
            )
        if not 0.0 <= ack_loss_prob <= 1.0:
            raise ValueError("ack_loss_prob must be in [0, 1]")
        self.network = network
        self.traffic = traffic
        self.max_retries = max_retries
        self.max_queue = max_queue
        self.backoff_base_rounds = int(backoff_base_rounds)
        self.backoff_cap_rounds = int(backoff_cap_rounds)
        self.ack_loss_prob = float(ack_loss_prob)
        self.backoff = backoff
        self.queues: Dict[int, Deque[Message]] = {
            i: deque() for i in range(network.config.n_tags)
        }
        self._next_seq: Dict[int, int] = {i: 0 for i in self.queues}
        self._last_delivered_seq: Dict[int, int] = {i: -1 for i in self.queues}
        self._cw: Dict[int, float] = (
            {i: backoff.initial_cw() for i in self.queues} if backoff is not None else {}
        )
        self._time_s = 0.0
        self._round = 0
        # Stateful traffic models (periodic window clock, bursty ON/OFF
        # occupancy) must not leak phase between simulator lifetimes.
        if hasattr(traffic, "reset"):
            traffic.reset()

    def _inject_arrivals(self, stats: ArqStats, duration_s: float, rng) -> None:
        tracer = self.network.tracer
        counts = self.traffic.draw(len(self.queues), duration_s, rng)
        data_bytes = self.network.config.payload_bytes - 1
        for tag_id, count in enumerate(counts):
            for _ in range(int(count)):
                stats.offered += 1
                tracer.count(C.ARQ_OFFERED)
                if len(self.queues[tag_id]) >= self.max_queue:
                    stats.dropped += 1
                    tracer.count(C.ARQ_DROPPED)
                    continue
                seq = self._next_seq[tag_id]
                self._next_seq[tag_id] = (seq + 1) % 256
                payload = bytes([seq]) + bytes(
                    rng.integers(0, 256, data_bytes, dtype=np.uint8)
                )
                self.queues[tag_id].append(
                    Message(tag_id=tag_id, seq=seq, payload=payload, arrival_time_s=self._time_s)
                )

    def run(self, n_rounds: int, rng=None) -> ArqStats:
        """Simulate *n_rounds* rounds of traffic + ARQ."""
        if n_rounds < 0:
            raise ValueError("n_rounds must be non-negative")
        rng = make_rng(rng)
        stats = ArqStats()
        round_s = self.network.config.frame_duration_s()
        for _ in range(n_rounds):
            self._inject_arrivals(stats, round_s, rng)
            # A tag is eligible only when its head-of-line message's
            # retransmission timer has expired.
            active = [
                tid
                for tid, q in self.queues.items()
                if q and q[0].next_round <= self._round
            ]
            stats.backlog_samples.append(sum(len(q) for q in self.queues.values()))
            if active:
                # Pin each active tag's payload to its head-of-line
                # message by running the round with explicit payloads.
                metrics = self._run_arq_round(active, stats, rng)
            self._time_s += round_s
            stats.elapsed_s += round_s
            self._round += 1
        return stats

    def _backoff_rounds(self, attempts: int) -> int:
        """Exponential backoff after *attempts* unacknowledged tries."""
        if self.backoff_base_rounds == 0:
            return 0
        return min(self.backoff_base_rounds * 2 ** max(attempts - 1, 0), self.backoff_cap_rounds)

    def _run_arq_round(self, active: List[int], stats: ArqStats, rng):
        """One collision round carrying head-of-line messages."""
        network = self.network
        cfg = network.config

        # The network draws random payloads internally; for ARQ the
        # payload must be the queued message, so this bypasses
        # run_round's payload draw by substituting the RNG-facing
        # pieces directly (same code path otherwise).
        from repro.sim.collision import CollisionScenario, simulate_round

        rf = network.next_round_faults()
        if network.fixed_offsets_chips is None:
            network._draw_oscillators()
        network.apply_fault_drift(rf)
        amplitudes = network._base_amplitudes()
        scenario = CollisionScenario(
            tags=network.tags,
            amplitudes=amplitudes,
            noise=cfg.noise,
            interference=cfg.interference,
            excitation_gate=cfg.excitation_gate,
            samples_per_chip=cfg.samples_per_chip,
            chip_rate_hz=cfg.chip_rate_hz,
            tx_faults=rf.tx_faults() if rf is not None else None,
        )
        tracer = network.tracer
        payloads = {tid: self.queues[tid][0].payload for tid in active}
        for tid in active:
            self.queues[tid][0].attempts += 1
            stats.transmissions += 1
            tracer.count(C.ARQ_TRANSMISSIONS)
        iq, _truth = simulate_round(scenario, payloads, network.rng)
        iq = network.apply_channel_faults(iq, rf)
        report = network.receiver.process(iq)

        for tid in active:
            message = self.queues[tid][0]
            frame = report.frame_for(tid)
            ok = (
                frame is not None
                and frame.success
                and frame.payload == message.payload
            )
            if ok:
                # The receiver got the data; dedupe on the sequence
                # number so a retransmit after a lost ACK counts as a
                # duplicate, never a second delivery.
                if message.seq == self._last_delivered_seq[tid]:
                    stats.duplicates += 1
                    tracer.count(C.ARQ_DUPLICATES)
                else:
                    self._last_delivered_seq[tid] = message.seq
                    message.delivered_time_s = self._time_s
                    stats.delivered += 1
                    tracer.count(C.ARQ_DELIVERED)
                    stats.latencies_s.append(message.latency_s)
                ack_lost = (rf is not None and tid in rf.ack_lost) or (
                    self.ack_loss_prob > 0.0 and rng.random() < self.ack_loss_prob
                )
                if not ack_lost:
                    if self.backoff is not None:
                        self._cw[tid] = float(self.backoff.on_success(self._cw[tid]))
                    self.queues[tid].popleft()
                    continue
                # The tag never heard the ACK: from its point of view
                # the attempt failed, so it keeps the message and backs
                # off like any other failure.
                stats.acks_lost += 1
                tracer.count(C.ARQ_ACKS_LOST)
            if message.attempts >= self.max_retries:
                self.queues[tid].popleft()
                if message.delivered_time_s is None:
                    stats.dropped += 1
                    tracer.count(C.ARQ_DROPPED)
            else:
                if self.backoff is None:
                    wait = self._backoff_rounds(message.attempts)
                else:
                    self._cw[tid] = float(
                        self.backoff.on_failure(self._cw[tid], message.attempts)
                    )
                    wait = int(self.backoff.delay_slots(self._cw[tid], rng))
                message.next_round = self._round + wait
        return report
