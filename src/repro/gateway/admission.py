"""Admission primitives: the token bucket and the retry policy.

Both are deterministic given their inputs: the bucket refills as a
pure function of the injected clock (so a soak driven by a virtual
clock admits identically every run), and the retry policy draws its
jittered delays from one seeded generator through the shared backoff
zoo (:mod:`repro.macro.backoff`) -- the same BEB/Fibonacci/EIED/
adaptive strategies the MAC and macro tiers use, with the drawn slot
count scaled to seconds.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Optional

import numpy as np

from repro.macro.backoff import make_backoff

__all__ = ["TokenBucket", "RetryPolicy"]


class TokenBucket:
    """Classic token bucket with an injectable clock and a throttle.

    ``throttle`` multiplies the refill rate -- the degradation ladder
    sets it below 1.0 while THROTTLED so admission slows without any
    per-request bookkeeping.  Tokens are fractional; one admitted
    chunk costs one token.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if rate <= 0.0 or burst < 1.0:
            raise ValueError("need rate > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.throttle = 1.0
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = float(burst)
        self._last = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        dt = now - self._last
        if dt > 0.0:
            self._tokens = min(
                self.burst, self._tokens + dt * self.rate * self.throttle
            )
        self._last = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the clock)."""
        self._refill()
        return self._tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take *n* tokens if available; never blocks."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def deficit_delay(self, n: float = 1.0) -> float:
        """Seconds until *n* tokens could be available (0 = now).

        Advisory only -- competing acquirers may drain the bucket in
        the meantime, which is why callers retry with jitter instead
        of sleeping exactly this long.
        """
        self._refill()
        missing = n - self._tokens
        if missing <= 0.0:
            return 0.0
        effective = self.rate * self.throttle
        if effective <= 0.0:
            return float("inf")
        return missing / effective


class RetryPolicy:
    """Jittered exponential backoff for admission retries.

    Wraps a :mod:`repro.macro.backoff` strategy: each failed attempt
    widens the contention window (``on_failure``) and the wait is a
    uniform draw in ``[0, cw)`` slots (``delay_slots`` -- the jitter),
    scaled by ``slot_s``.  One seeded generator makes the delay
    sequence reproducible.
    """

    def __init__(
        self,
        backoff: str = "beb",
        slot_s: float = 0.02,
        max_retries: int = 3,
        seed: int = 0,
        **params: float,
    ) -> None:
        if slot_s < 0.0 or max_retries < 0:
            raise ValueError("slot_s and max_retries must be non-negative")
        self.strategy = make_backoff(backoff, **params)
        self.slot_s = float(slot_s)
        self.max_retries = int(max_retries)
        self._rng = np.random.default_rng(seed)

    def delays(self) -> Iterator[float]:
        """The delay (seconds) before each retry, attempt by attempt."""
        cw = self.strategy.initial_cw()
        for attempt in range(1, self.max_retries + 1):
            cw = float(self.strategy.on_failure(cw, attempt))
            yield float(self.strategy.delay_slots(cw, self._rng)) * self.slot_s
