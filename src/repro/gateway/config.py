"""Gateway policy knobs: admission, watermarks, retries, retention.

:class:`GatewayConfig` is pure policy -- *how* the gateway admits,
throttles, sheds and retries -- deliberately separate from the PHY
config (what the sessions decode) and the
:class:`~repro.farm.config.FarmConfig` (how the pool is shaped), both
of which the :class:`~repro.gateway.gateway.Gateway` takes alongside
it.  Frozen and picklable like every other config record in the tree.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GatewayConfig"]


@dataclass(frozen=True)
class GatewayConfig:
    """Admission, backpressure and degradation policy of one gateway.

    Watermark semantics mirror the session health machine: crossing
    the *high* watermark on aggregate intake depth (or real-time
    factor) for ``patience`` consecutive observations steps the
    degradation ladder one rung down; sitting below the *low*
    watermarks steps it back up.  Hysteresis (high > low) prevents
    flapping.
    """

    # -- admission -----------------------------------------------------
    token_rate: float = 256.0
    """Token-bucket refill rate, in admitted chunks per second."""
    token_burst: float = 512.0
    """Bucket capacity: the largest instantaneous burst admitted."""
    max_intake_chunks: int = 32
    """Per-stream bound on queued-but-undispatched chunks."""
    max_streams: int = 256
    """Hard cap on concurrently open streams."""

    # -- degradation-ladder watermarks ---------------------------------
    queue_high: int = 64
    """Aggregate intake depth (chunks) that reads as saturation."""
    queue_low: int = 16
    """Aggregate intake depth that reads as recovered."""
    rtf_high: float = 1.0
    """Real-time factor (decode wall seconds per stream second) that
    reads as saturation -- above 1.0 the farm is losing the race."""
    rtf_low: float = 0.5
    patience: int = 3
    """Consecutive hot/cool observations before the ladder steps."""
    throttle_factor: float = 0.5
    """Token refill multiplier while THROTTLED (or worse)."""

    # -- retry / deadline ----------------------------------------------
    backoff: str = "beb"
    """Backoff-strategy registry name (:mod:`repro.macro.backoff`)."""
    slot_s: float = 0.02
    """Seconds per backoff slot: the drawn slot count scales by this."""
    max_retries: int = 3
    """Admission attempts after the first before a submit is rejected."""
    deadline_s: float = 30.0
    """Default per-submit deadline (clock units); a retry that cannot
    complete before it is abandoned as a deadline miss."""

    # -- dispatch / measurement ----------------------------------------
    dispatch_chunks: int = 64
    """Chunks moved intake -> farm per :meth:`Gateway.step` cycle."""
    sample_rate: float = 1.0e6
    """Samples per stream-second, for the real-time-factor gauge."""
    rtf_alpha: float = 0.2
    """EWMA weight of the newest real-time-factor observation."""
    idle_sleep_s: float = 0.005
    """`serve` loop sleep when there is nothing to dispatch."""

    # -- elasticity ----------------------------------------------------
    retain_chunks: int = 64
    """Fed chunks retained per stream for migration gap re-feed.  Must
    cover the session's fed-but-unprocessed span (backlog bound plus
    one widened window); too small a value fails a migrate loudly
    rather than resuming from a gap."""

    def __post_init__(self) -> None:
        if self.token_rate <= 0.0 or self.token_burst < 1.0:
            raise ValueError("need token_rate > 0 and token_burst >= 1")
        if self.max_intake_chunks < 1 or self.max_streams < 1:
            raise ValueError("max_intake_chunks and max_streams must be >= 1")
        if not 0 <= self.queue_low < self.queue_high:
            raise ValueError("need 0 <= queue_low < queue_high")
        if not 0.0 <= self.rtf_low < self.rtf_high:
            raise ValueError("need 0 <= rtf_low < rtf_high")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if not 0.0 < self.throttle_factor <= 1.0:
            raise ValueError("throttle_factor must be in (0, 1]")
        if self.max_retries < 0 or self.slot_s < 0.0 or self.deadline_s <= 0.0:
            raise ValueError("retry/deadline parameters must be non-negative")
        if self.dispatch_chunks < 1 or self.retain_chunks < 1:
            raise ValueError("dispatch_chunks and retain_chunks must be >= 1")
        if self.sample_rate <= 0.0 or not 0.0 < self.rtf_alpha <= 1.0:
            raise ValueError("need sample_rate > 0 and rtf_alpha in (0, 1]")
