"""Async ingestion gateway: the production service shape.

Public surface:

- :class:`Gateway` -- asyncio front-end over the decode farm;
  construction entry points are ``Gateway(phy_config, ...)`` and
  :meth:`Gateway.from_config`.
- :class:`GatewayConfig` -- admission/backpressure/retry policy.
- :class:`GatewayState` / :class:`DegradationLadder` -- the
  FULL -> THROTTLED -> SHED -> DRAINING ladder.
- :class:`TokenBucket` / :class:`RetryPolicy` -- admission primitives.
- :mod:`repro.gateway.soak` -- the deterministic chaos-soak harness
  (:func:`~repro.gateway.soak.run_gateway_soak`) with gateway-level
  fault plans that shrink through
  :func:`repro.sim.experiments.soak.shrink_fault_plan`.
"""

from repro.gateway.admission import RetryPolicy, TokenBucket
from repro.gateway.config import GatewayConfig
from repro.gateway.gateway import AdmissionRefused, Gateway, StreamReport
from repro.gateway.ladder import DegradationLadder, GatewayState

__all__ = [
    "AdmissionRefused",
    "DegradationLadder",
    "Gateway",
    "GatewayConfig",
    "GatewayState",
    "RetryPolicy",
    "StreamReport",
    "TokenBucket",
]
