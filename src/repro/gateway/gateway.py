"""The async ingestion gateway: many streams in, one decode farm out.

:class:`Gateway` is the production service shape around the decode
stack: concurrent capture streams submit IQ chunks through admission
control (token bucket + bounded per-stream intake queues), a
cooperative :meth:`Gateway.step` cycle fans the queued work out to a
:class:`~repro.farm.farm.DecodeFarm`, and decoded
:class:`~repro.receiver.streaming.StreamFrame` batches flow back per
stream.  Load feedback closes the loop end to end:

- the token bucket slows (THROTTLED) or queued intake is dropped,
  counted, from the lowest-priority streams (SHED) as the
  :mod:`degradation ladder <repro.gateway.ladder>` climbs on queue
  depth / real-time-factor watermarks;
- every refusal is observable -- ``submit`` returns ``False`` and the
  ``gateway.rejected`` / ``gateway.shed`` / ``gateway.deadline_misses``
  counters attribute it -- so nothing is ever dropped silently;
- checkpoint/restore is the elasticity primitive:
  :meth:`Gateway.drain_worker` migrates every session off a worker
  and re-feeds the fed-but-unprocessed gap from the gateway's
  retention buffers, bit-identical under live load.

Everything load-bearing takes an injectable clock, so a soak driven
by a virtual clock (:mod:`repro.gateway.soak`) admits, sheds and
climbs the ladder identically on every run.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Awaitable,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.farm.config import FarmConfig, SessionSpec
from repro.farm.farm import DecodeFarm
from repro.gateway.admission import RetryPolicy, TokenBucket
from repro.gateway.config import GatewayConfig
from repro.gateway.ladder import DegradationLadder, GatewayState
from repro.obs.taxonomy import C, G, gateway_transition
from repro.obs.tracer import as_tracer
from repro.receiver.streaming import StreamFrame

__all__ = ["AdmissionRefused", "Gateway", "StreamReport"]


class AdmissionRefused(RuntimeError):
    """A stream-level admission refusal (gateway full or draining)."""


@dataclass
class _StreamState:
    """Parent-side bookkeeping for one open stream."""

    stream_id: int
    priority: int
    intake: Deque[np.ndarray] = field(default_factory=deque)
    frames: List[StreamFrame] = field(default_factory=list)
    admitted: int = 0
    fed: int = 0
    shed: int = 0
    rejected: int = 0
    samples_fed: int = 0
    #: ``(absolute_offset, chunk)`` of recently fed chunks, oldest
    #: first -- the migration re-feed source.
    retained: Deque[Tuple[int, np.ndarray]] = field(default_factory=deque)

    @property
    def intake_depth(self) -> int:
        return len(self.intake)

    @property
    def retained_samples(self) -> int:
        return sum(c.size for _, c in self.retained)


@dataclass(frozen=True)
class StreamReport:
    """What :meth:`Gateway.close_stream` hands back."""

    stream_id: int
    frames: List[StreamFrame]
    stats: Dict[str, int]
    admitted: int
    fed: int
    shed: int
    rejected: int


class Gateway:
    """Async front-end fanning concurrent capture streams to a farm.

    Parameters
    ----------
    phy_config:
        Default :class:`~repro.sim.network.CbmaConfig` each stream's
        session decodes with (:meth:`open_stream` may override).
    gateway:
        :class:`~repro.gateway.config.GatewayConfig` policy
        (``None`` = defaults).
    farm / session:
        Pool shape and session policy forwarded to the underlying
        :class:`~repro.farm.farm.DecodeFarm` /
        :class:`~repro.receiver.session.SessionSupervisor`.
    backend:
        Farm backend (``"process"`` or ``"inline"``).
    clock:
        Monotonic-seconds callable used for the token bucket, retry
        deadlines and the real-time factor; ``None`` = wall clock.
        Injecting a virtual clock makes every admission decision a
        pure function of the submitted traffic.
    sleep:
        Async sleep used for retry backoff and the serve loop;
        ``None`` = :func:`asyncio.sleep`.  A virtual-clock driver
        injects one that advances its clock instead of waiting.
    seed:
        Seed of the retry-jitter generator.
    """

    def __init__(
        self,
        phy_config,
        gateway: Optional[GatewayConfig] = None,
        farm: Optional[FarmConfig] = None,
        session=None,
        tracer=None,
        backend: str = "process",
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], Awaitable[None]]] = None,
        seed: int = 0,
    ) -> None:
        self.config = gateway or GatewayConfig()
        self.phy_config = phy_config
        self.farm_config = farm or FarmConfig()
        self.session_config = session
        self.backend = backend
        self.tracer = as_tracer(tracer)
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self.bucket = TokenBucket(
            self.config.token_rate, self.config.token_burst, clock=self._clock
        )
        self.retry = RetryPolicy(
            backoff=self.config.backoff,
            slot_s=self.config.slot_s,
            max_retries=self.config.max_retries,
            seed=seed,
        )
        self.ladder = DegradationLadder(
            self.config.queue_high,
            self.config.queue_low,
            self.config.rtf_high,
            self.config.rtf_low,
            patience=self.config.patience,
        )
        self.farm: Optional[DecodeFarm] = None
        self._streams: Dict[int, _StreamState] = {}
        self._next_sid = 0
        self._closed = False
        self._emitted_transitions = 0

        #: Lifetime totals, mirrored into the ``gateway.*`` taxonomy.
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.retries = 0
        self.deadline_misses = 0
        self.chunks_dispatched = 0
        self.frames_delivered = 0
        self.migrations = 0
        self.peak_queue_depth = 0
        self.peak_retained_samples = 0
        self.rtf = 0.0
        """EWMA real-time factor: decode wall seconds per stream second."""

    @classmethod
    def from_config(
        cls,
        config,
        *,
        gateway: Optional[GatewayConfig] = None,
        farm: Optional[FarmConfig] = None,
        session=None,
        tracer=None,
        backend: str = "process",
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], Awaitable[None]]] = None,
        seed: int = 0,
    ) -> "Gateway":
        """Build a gateway whose streams decode with *config*.

        The one construction path from PHY config to service: streams
        opened without an explicit config share *config* (hence one
        memoised template bank per worker, so the farm's cross-session
        batched gate engages across streams).
        """
        return cls(
            config,
            gateway=gateway,
            farm=farm,
            session=session,
            tracer=tracer,
            backend=backend,
            clock=clock,
            sleep=sleep,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stream_ids(self) -> List[int]:
        return sorted(self._streams)

    @property
    def queue_depth(self) -> int:
        """Aggregate queued-but-undispatched chunks across streams."""
        return sum(st.intake_depth for st in self._streams.values())

    @property
    def state(self) -> GatewayState:
        return self.ladder.state

    # ------------------------------------------------------------------
    # Stream lifecycle
    # ------------------------------------------------------------------

    async def open_stream(self, config=None, priority: int = 0) -> int:
        """Admit a new capture stream; returns its stream id.

        Refused -- :class:`AdmissionRefused`, counted under
        ``gateway.rejected`` -- while DRAINING or at ``max_streams``.
        The stream id doubles as the farm session id.
        """
        self._check_open()
        if self.ladder.state is GatewayState.DRAINING:
            self.rejected += 1
            self._count(C.GATEWAY_REJECTED)
            raise AdmissionRefused("gateway is draining; not accepting streams")
        if len(self._streams) >= self.config.max_streams:
            self.rejected += 1
            self._count(C.GATEWAY_REJECTED)
            raise AdmissionRefused(
                f"gateway is at max_streams={self.config.max_streams}"
            )
        sid = self._next_sid
        self._next_sid += 1
        spec = SessionSpec(
            session_id=sid,
            config=config if config is not None else self.phy_config,
            session=self.session_config,
        )
        if self.farm is None:
            self.farm = DecodeFarm(
                [spec],
                farm=self.farm_config,
                tracer=self.tracer,
                backend=self.backend,
            )
        else:
            self.farm.add_session(spec)
        self._streams[sid] = _StreamState(stream_id=sid, priority=priority)
        self._count(C.GATEWAY_STREAMS_OPENED)
        self._gauge(G.GATEWAY_STREAMS_LIVE, len(self._streams))
        return sid

    async def submit(
        self,
        stream_id: int,
        chunk: np.ndarray,
        deadline_s: Optional[float] = None,
    ) -> bool:
        """Offer one IQ chunk; ``True`` iff admitted to the intake.

        Admission needs a bucket token and a free intake slot.  On
        refusal the submit retries up to ``max_retries`` times with
        jittered exponential backoff, abandoning early -- a counted
        deadline miss -- once the next retry could not complete before
        the deadline (default ``deadline_s`` from the config).  A
        ``False`` return is always counted under ``gateway.rejected``:
        the caller knows, and the accounting knows.
        """
        self._check_open()
        st = self._streams[stream_id]
        budget = deadline_s if deadline_s is not None else self.config.deadline_s
        deadline = self._clock() + budget
        x = np.asarray(chunk)
        delays = self.retry.delays()
        while True:
            if self._try_admit(st, x):
                return True
            delay = next(delays, None)
            if delay is None:
                break
            if self._clock() + delay > deadline:
                self.deadline_misses += 1
                self._count(C.GATEWAY_DEADLINE_MISSES)
                break
            self.retries += 1
            self._count(C.GATEWAY_RETRIES)
            await self._sleep(delay)
        st.rejected += 1
        self.rejected += 1
        self._count(C.GATEWAY_REJECTED)
        return False

    def _try_admit(self, st: _StreamState, chunk: np.ndarray) -> bool:
        if self.ladder.state is GatewayState.DRAINING:
            return False
        if st.intake_depth >= self.config.max_intake_chunks:
            return False
        if not self.bucket.try_acquire():
            return False
        st.intake.append(chunk)
        st.admitted += 1
        self.admitted += 1
        self._count(C.GATEWAY_ADMITTED)
        return True

    async def close_stream(self, stream_id: int, flush: bool = True) -> StreamReport:
        """Finish one stream and return its frames and accounting.

        With ``flush`` (default) queued intake is dispatched first so
        every admitted chunk reaches the decoder; otherwise the
        leftovers are counted as shed.  The per-stream invariant
        either way: ``admitted == fed + shed``.
        """
        self._check_open()
        st = self._streams[stream_id]
        if flush:
            while st.intake:
                await self.step()
        else:
            n = st.intake_depth
            if n:
                st.intake.clear()
                st.shed += n
                self.shed += n
                self._count(C.GATEWAY_SHED, n)
        stats: Dict[str, int] = {}
        if self.farm is not None and stream_id in self.farm.session_ids:
            tail = self.farm.finish_session(stream_id)
            self._deliver(stream_id, tail)
            stats = dict(self.farm.session_stats.get(stream_id, {}))
        del self._streams[stream_id]
        self._count(C.GATEWAY_STREAMS_CLOSED)
        self._gauge(G.GATEWAY_STREAMS_LIVE, len(self._streams))
        return StreamReport(
            stream_id=stream_id,
            frames=st.frames,
            stats=stats,
            admitted=st.admitted,
            fed=st.fed,
            shed=st.shed,
            rejected=st.rejected,
        )

    def poll_frames(self, stream_id: int) -> List[StreamFrame]:
        """Take the frames delivered to *stream_id* since the last poll."""
        st = self._streams[stream_id]
        out = st.frames
        st.frames = []
        return out

    # ------------------------------------------------------------------
    # The dispatch cycle
    # ------------------------------------------------------------------

    async def step(self, budget: Optional[int] = None) -> int:
        """One cooperative dispatch cycle; returns chunks dispatched.

        In order: observe the ladder (watermarks on queue depth and
        real-time factor), shed if the ladder says so, move up to
        *budget* chunks (default ``dispatch_chunks``) from the intake
        queues -- highest priority first -- into the farm, run one
        co-scheduled pump, route the decoded frames back to their
        streams, and refresh every gauge.
        """
        self._check_open()
        with self.tracer.span("gateway_step"):
            depth = self.queue_depth
            self.peak_queue_depth = max(self.peak_queue_depth, depth)
            self.ladder.observe(depth, self.rtf)
            self._sync_ladder()
            if self.ladder.state is GatewayState.SHED:
                self._shed_to_watermark()
            limit = budget if budget is not None else self.config.dispatch_chunks
            dispatched = 0
            dispatched_samples = 0
            order = sorted(
                self._streams.values(), key=lambda s: (-s.priority, s.stream_id)
            )
            for st in order:
                while st.intake and dispatched < limit:
                    chunk = st.intake.popleft()
                    self.farm.feed(st.stream_id, chunk)
                    st.retained.append((st.samples_fed, chunk))
                    while len(st.retained) > self.config.retain_chunks:
                        st.retained.popleft()
                    st.samples_fed += chunk.size
                    st.fed += 1
                    dispatched += 1
                    dispatched_samples += chunk.size
                    self.chunks_dispatched += 1
                    self._count(C.GATEWAY_CHUNKS)
                if dispatched >= limit:
                    break
            if dispatched:
                t0 = self._clock()
                fresh = self.farm.pump(wait=True)
                dt = self._clock() - t0
                stream_s = dispatched_samples / self.config.sample_rate
                if stream_s > 0.0:
                    a = self.config.rtf_alpha
                    self.rtf = (1.0 - a) * self.rtf + a * (dt / stream_s)
            elif self.farm is not None and self.backend == "process":
                fresh = self.farm.poll()
            else:
                fresh = {}
            for sid, frames in fresh.items():
                self._deliver(sid, frames)
            retained = sum(st.retained_samples for st in self._streams.values())
            self.peak_retained_samples = max(self.peak_retained_samples, retained)
            self._gauge(G.GATEWAY_QUEUE_DEPTH, self.queue_depth)
            self._gauge(G.GATEWAY_TOKENS, self.bucket.tokens)
            self._gauge(G.GATEWAY_RTF, self.rtf)
            self._gauge(G.GATEWAY_RETAINED_SAMPLES, retained)
            return dispatched

    async def serve(self, until: Callable[[], bool]) -> None:
        """Run :meth:`step` until *until()* is true, idling politely."""
        while not until():
            dispatched = await self.step()
            if not dispatched:
                await self._sleep(self.config.idle_sleep_s)

    def _shed_to_watermark(self) -> None:
        """Drop queued intake, lowest priority first, down to the low
        watermark.  Every dropped chunk is counted (``gateway.shed``
        and the stream's own ledger): shed work is lost, never lost
        track of."""
        order = sorted(
            (st for st in self._streams.values() if st.intake),
            key=lambda s: (s.priority, -s.stream_id),
        )
        depth = self.queue_depth
        for st in order:
            if depth <= self.config.queue_low:
                break
            n = min(st.intake_depth, depth - self.config.queue_low)
            for _ in range(n):
                st.intake.popleft()
            st.shed += n
            self.shed += n
            depth -= n
            self._count(C.GATEWAY_SHED, n)

    def _deliver(self, stream_id: int, frames: List[StreamFrame]) -> None:
        if not frames:
            return
        st = self._streams.get(stream_id)
        if st is None:
            return
        st.frames.extend(frames)
        self.frames_delivered += len(frames)
        self._count(C.GATEWAY_FRAMES, len(frames))

    # ------------------------------------------------------------------
    # Elasticity: drain a worker under live load
    # ------------------------------------------------------------------

    async def drain_worker(self, worker: int) -> List[int]:
        """Migrate every session off *worker*; returns the moved ids.

        The ladder is forced to DRAINING for the duration (admission
        pauses; nothing already admitted is touched), each resident
        session is checkpoint-drained, restored on the least-loaded
        other worker, and its fed-but-unprocessed sample gap is re-fed
        from the gateway's retention buffers -- the same records
        idiom as :meth:`DecodeFarm.migrate`, so continuation is
        bit-identical to never having moved.
        """
        self._check_open()
        if self.farm is None:
            return []
        if not 0 <= worker < self.farm_config.n_workers:
            raise ValueError(f"worker {worker} out of range")
        prior = self.ladder.state
        self.ladder.force(GatewayState.DRAINING)
        self._sync_ladder()
        try:
            if self.farm._dirty_workers:
                fresh = self.farm.pump(wait=True)
                for sid, frames in fresh.items():
                    self._deliver(sid, frames)
            moved = [
                sid
                for sid in self.farm.session_ids
                if self.farm.worker_of(sid) == worker
            ]
            for sid in moved:
                records = self.farm.drain(sid)
                target = self._pick_target(worker)
                self.farm.restore(sid, records, worker=target)
                gap = self._retained_gap(sid, records)
                if gap.size:
                    self.farm.feed(sid, gap)
                self.migrations += 1
                self._count(C.GATEWAY_MIGRATIONS)
            return moved
        finally:
            self.ladder.release(prior)
            self._sync_ladder()

    def _pick_target(self, excluded: int) -> int:
        loads = {
            w: 0
            for w in range(self.farm_config.n_workers)
            if w != excluded and w not in self.farm._dead_workers
        }
        if not loads:
            raise RuntimeError("no other live worker to migrate to")
        for sid in self.farm.session_ids:
            w = self.farm.worker_of(sid)
            if w in loads:
                loads[w] += 1
        return min(loads, key=lambda w: (loads[w], w))

    def _retained_gap(self, stream_id: int, records: List[Dict]) -> np.ndarray:
        """Samples in ``[checkpoint pos, samples fed)`` from retention."""
        state = next(r for r in records if r["type"] == "state")
        pos, fed = int(state["pos"]), int(state["samples_fed"])
        if pos >= fed:
            return np.empty(0, dtype=self.farm_config.numpy_dtype)
        st = self._streams[stream_id]
        if not st.retained or st.retained[0][0] > pos:
            raise RuntimeError(
                f"stream {stream_id}: retention window starts past checkpoint "
                f"position {pos}; raise GatewayConfig.retain_chunks"
            )
        pieces = []
        for off, chunk in st.retained:
            lo, hi = max(pos, off), min(fed, off + chunk.size)
            if lo < hi:
                pieces.append(chunk[lo - off : hi - off])
        gap = np.concatenate(pieces) if pieces else np.empty(0)
        if gap.size != fed - pos:
            raise RuntimeError(
                f"stream {stream_id}: retention covers {gap.size} of the "
                f"{fed - pos}-sample migration gap"
            )
        return gap

    # ------------------------------------------------------------------
    # Lifecycle / plumbing
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Tear down without finishing streams (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.farm is not None:
            self.farm.close()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("gateway is closed; create a new Gateway")

    def _sync_ladder(self) -> None:
        """Emit pending transition counters; retune the bucket."""
        pending = self.ladder.transitions[self._emitted_transitions :]
        self._emitted_transitions = len(self.ladder.transitions)
        for _frm, to, _forced in pending:
            self._count(gateway_transition(to.value))
        self.bucket.throttle = (
            1.0 if self.ladder.state is GatewayState.FULL
            else self.config.throttle_factor
        )

    def _count(self, counter: str, n: int = 1) -> None:
        if self.tracer.enabled:
            self.tracer.count(counter, n)

    def _gauge(self, gauge: str, value: float) -> None:
        if self.tracer.enabled:
            self.tracer.gauge(gauge, value)
