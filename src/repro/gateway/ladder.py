"""The degradation ladder: FULL -> THROTTLED -> SHED -> DRAINING.

The gateway's answer to the session layer's health machine: a small,
fully-observable state machine that reacts to load instead of decode
quality.  Two watermarked signals drive it -- aggregate intake depth
and the real-time factor -- with hysteresis (separate high/low
watermarks) and patience (consecutive observations before a step) so
transient spikes do not flap the service.

Rungs mean, in order:

- **FULL**       -- admit everything the token bucket allows;
- **THROTTLED**  -- refill the bucket at ``throttle_factor`` of the
  configured rate (admission slows, nothing is lost);
- **SHED**       -- additionally drop queued intake of the
  lowest-priority streams, counted and observable, until the
  aggregate depth falls back to the low watermark;
- **DRAINING**   -- admit nothing; reached only by :meth:`force`
  (worker drain/migration, shutdown), never by load alone.

Observed transitions move one rung at a time; :meth:`force` may jump
(its transitions are flagged ``forced`` in :attr:`transitions`).
"""

from __future__ import annotations

import enum
from typing import List, Tuple

__all__ = ["GatewayState", "DegradationLadder"]


class GatewayState(enum.Enum):
    """One rung of the gateway degradation ladder."""

    FULL = "full"
    THROTTLED = "throttled"
    SHED = "shed"
    DRAINING = "draining"


#: Rung order, mild to severe.  ``observe`` walks adjacent rungs only
#: and never enters DRAINING on its own.
_RUNGS: Tuple[GatewayState, ...] = (
    GatewayState.FULL,
    GatewayState.THROTTLED,
    GatewayState.SHED,
    GatewayState.DRAINING,
)


class DegradationLadder:
    """Watermark-and-patience state machine over the gateway rungs."""

    def __init__(
        self,
        queue_high: int,
        queue_low: int,
        rtf_high: float,
        rtf_low: float,
        patience: int = 3,
    ) -> None:
        if not 0 <= queue_low < queue_high:
            raise ValueError("need 0 <= queue_low < queue_high")
        if not 0.0 <= rtf_low < rtf_high:
            raise ValueError("need 0 <= rtf_low < rtf_high")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.queue_high = int(queue_high)
        self.queue_low = int(queue_low)
        self.rtf_high = float(rtf_high)
        self.rtf_low = float(rtf_low)
        self.patience = int(patience)
        self.state = GatewayState.FULL
        #: Every transition taken: ``(from, to, forced)`` in order.
        self.transitions: List[Tuple[GatewayState, GatewayState, bool]] = []
        self._hot = 0
        self._cool = 0
        self._forced = False

    @property
    def rung(self) -> int:
        """Index of the current rung (0 = FULL)."""
        return _RUNGS.index(self.state)

    def observe(self, queue_depth: int, rtf: float) -> GatewayState:
        """Feed one load observation; returns the (possibly new) state.

        A *hot* observation has either signal at or above its high
        watermark; a *cool* one has both at or below their lows.
        ``patience`` consecutive hot observations step one rung worse
        (capped at SHED); the same count of cool ones steps one rung
        better.  Mixed observations reset both counters -- the ladder
        only moves on sustained evidence.
        """
        if self._forced:
            return self.state
        hot = queue_depth >= self.queue_high or rtf >= self.rtf_high
        cool = queue_depth <= self.queue_low and rtf <= self.rtf_low
        if hot:
            self._hot += 1
            self._cool = 0
        elif cool:
            self._cool += 1
            self._hot = 0
        else:
            self._hot = 0
            self._cool = 0
        if self._hot >= self.patience and self.state not in (
            GatewayState.SHED,
            GatewayState.DRAINING,
        ):
            self._step(_RUNGS[self.rung + 1])
            self._hot = 0
        elif self._cool >= self.patience and self.state is not GatewayState.FULL:
            self._step(_RUNGS[self.rung - 1])
            self._cool = 0
        return self.state

    def force(self, state: GatewayState) -> None:
        """Pin the ladder to *state* (e.g. DRAINING during a migrate).

        While pinned, :meth:`observe` records nothing and moves
        nowhere; :meth:`release` unpins.
        """
        if state is not self.state:
            self._step(state, forced=True)
        self._forced = True
        self._hot = 0
        self._cool = 0

    def release(self, state: GatewayState = GatewayState.FULL) -> None:
        """Unpin a :meth:`force`, landing on *state* (default FULL)."""
        self._forced = False
        if state is not self.state:
            self._step(state, forced=True)

    def _step(self, to: GatewayState, forced: bool = False) -> None:
        self.transitions.append((self.state, to, forced))
        self.state = to
