"""Deterministic chaos soak for the gateway: spikes, brownouts, drains.

The session-level soak (:mod:`repro.sim.experiments.soak`) stresses
one decoder with waveform faults; this harness stresses the *service*
above it with load faults -- traffic spikes that multiply the offered
chunk rate and capacity brownouts that cut the dispatch budget -- and
verifies the gateway's own invariants: every offered chunk is
admitted or rejected (never silently lost), every admitted chunk is
decoded or counted as shed, frames stay ordered and duplicate-free
per stream, intake and retention memory stay bounded, and the
degradation ladder only ever moves one rung at a time unless forced.

Everything is a pure function of ``(config, plan)``: the gateway runs
on a virtual clock (admission, throttling and retries all derive from
it), fault plans resolve from dataclass parameters alone, and
``max_retries=0`` keeps the admission path free of sleeps -- so a red
soak replays bit-identically anywhere, and
:func:`repro.sim.experiments.soak.shrink_fault_plan` (which this
plan class is shaped for) can ddmin a failing plan to a minimal
reproduction.
"""

from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.farm.config import FarmConfig
from repro.gateway.config import GatewayConfig
from repro.gateway.gateway import Gateway, StreamReport
from repro.gateway.ladder import GatewayState
from repro.sim.experiments.soak import (
    InvariantViolation,
    SoakConfig,
    build_soak_stack,
    build_soak_stream,
)
from repro.sim.network import CbmaConfig

__all__ = [
    "TrafficSpike",
    "CapacityBrownout",
    "GatewayRoundFaults",
    "GatewayFaultPlan",
    "GatewaySoakConfig",
    "GatewaySoakResult",
    "random_gateway_fault_plan",
    "run_gateway_soak",
    "check_gateway_invariants",
]


# ----------------------------------------------------------------------
# Gateway-level fault models and plans
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TrafficSpike:
    """Offered traffic multiplied by *factor* over a round window."""

    factor: float = 3.0
    start_round: int = 0
    end_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("spike factor must be >= 1")
        if self.start_round < 0:
            raise ValueError("start_round must be >= 0")

    def active(self, round_index: int) -> bool:
        return round_index >= self.start_round and (
            self.end_round is None or round_index < self.end_round
        )


@dataclass(frozen=True)
class CapacityBrownout:
    """Dispatch budget cut to *factor* of normal over a round window.

    The load-side analogue of :class:`repro.faults.models.TagBrownout`:
    the decode pool slows (a noisy neighbour, a thermal throttle, a
    worker drain) while traffic keeps arriving.
    """

    factor: float = 0.25
    start_round: int = 0
    end_round: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.factor <= 1.0:
            raise ValueError("brownout factor must be in [0, 1]")
        if self.start_round < 0:
            raise ValueError("start_round must be >= 0")

    def active(self, round_index: int) -> bool:
        return round_index >= self.start_round and (
            self.end_round is None or round_index < self.end_round
        )


@dataclass(frozen=True)
class GatewayRoundFaults:
    """Every gateway fault resolved for one round."""

    round_index: int
    spike: float = 1.0
    """Multiplier on the offered chunks per stream this round."""
    budget: float = 1.0
    """Multiplier on the dispatch budget this round."""


_GATEWAY_MODEL_REGISTRY = {
    "traffic_spike": TrafficSpike,
    "capacity_brownout": CapacityBrownout,
}


class GatewayFaultPlan:
    """A seeded schedule of gateway load faults.

    Shaped like :class:`repro.faults.plan.FaultPlan` -- ``faults``,
    ``seed``, ``empty``, ``resolve`` and the ``cls(faults, seed=...)``
    constructor -- so
    :func:`repro.sim.experiments.soak.shrink_fault_plan` shrinks these
    plans through the identical ddmin machinery.  Resolution is pure
    (dataclass parameters only): active spike factors multiply,
    active brownout factors take their minimum.
    """

    def __init__(self, faults: Sequence[object], seed: int = 0) -> None:
        self.faults: Tuple[object, ...] = tuple(faults)
        self.seed = int(seed)
        for f in self.faults:
            if not isinstance(f, (TrafficSpike, CapacityBrownout)):
                raise TypeError(f"not a gateway fault model: {f!r}")

    @property
    def empty(self) -> bool:
        return not self.faults

    def resolve(self, round_index: int) -> GatewayRoundFaults:
        spike = 1.0
        budget = 1.0
        for f in self.faults:
            if not f.active(round_index):
                continue
            if isinstance(f, TrafficSpike):
                spike *= f.factor
            else:
                budget = min(budget, f.factor)
        return GatewayRoundFaults(round_index, spike=spike, budget=budget)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the ``repro gateway soak`` artifact)."""
        names = {cls: name for name, cls in _GATEWAY_MODEL_REGISTRY.items()}
        return {
            "seed": self.seed,
            "faults": [
                {"kind": names[type(f)], **_asdict(f)} for f in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GatewayFaultPlan":
        faults = []
        for item in data.get("faults", []):
            params = dict(item)
            kind = params.pop("kind")
            try:
                model = _GATEWAY_MODEL_REGISTRY[kind]
            except KeyError:
                raise ValueError(f"unknown gateway fault kind {kind!r}") from None
            faults.append(model(**params))
        return cls(faults, seed=int(data.get("seed", 0)))

    def __repr__(self) -> str:
        return f"GatewayFaultPlan({list(self.faults)!r}, seed={self.seed})"


def _asdict(model: object) -> Dict[str, object]:
    """Shallow dataclass -> dict (the models are flat)."""
    return {
        f.name: getattr(model, f.name) for f in dataclasses.fields(model)
    }


def random_gateway_fault_plan(seed: int, n_rounds: int) -> GatewayFaultPlan:
    """A randomized (seed-determined) spike/brownout schedule."""
    rng = np.random.default_rng(np.random.SeedSequence(entropy=(int(seed), 3)))
    n_faults = int(rng.integers(1, 4))
    faults: List[object] = []
    for _ in range(n_faults):
        lo = int(rng.integers(0, max(n_rounds - 2, 1)))
        length = int(rng.integers(2, max(n_rounds // 3, 3)))
        hi = max(min(lo + length, n_rounds), lo + 1)
        if rng.random() < 0.5:
            faults.append(
                TrafficSpike(
                    factor=float(rng.uniform(2.0, 5.0)), start_round=lo, end_round=hi
                )
            )
        else:
            faults.append(
                CapacityBrownout(
                    factor=float(rng.uniform(0.05, 0.5)), start_round=lo, end_round=hi
                )
            )
    return GatewayFaultPlan(faults, seed=int(seed))


# ----------------------------------------------------------------------
# The soak itself
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GatewaySoakConfig:
    """Shape of one gateway soak.

    Every stream decodes the same deterministic capture (one
    :class:`~repro.sim.experiments.soak.SoakConfig` stream cut into
    chunks), so all sessions share a template bank -- the farm's
    cross-session batched gate engages exactly as in production --
    and per-stream outcomes are directly comparable.
    """

    n_streams: int = 50
    n_rounds: int = 12
    seed: int = 7
    round_s: float = 0.1
    """Virtual seconds per round (drives token refill)."""
    chunks_per_round: int = 1
    """Chunks offered per stream per round, before spikes."""
    dispatch_budget: int = 96
    """Chunks decoded per round at full capacity, before brownouts."""
    priority_classes: int = 4
    """Stream priority is ``stream_id % priority_classes``."""
    n_workers: int = 2
    migrate_round: Optional[int] = None
    """Round after which worker ``migrate_worker`` is drained live."""
    migrate_worker: int = 0
    backend: str = "inline"
    """Farm backend; ``inline`` keeps a 50-stream soak CI-cheap and is
    the bit-identity oracle, ``process`` exercises the real pool."""
    capture: SoakConfig = field(
        default_factory=lambda: SoakConfig(
            n_windows=12, n_tags=2, seed=7, traffic_rate=0.3
        )
    )

    def __post_init__(self) -> None:
        if self.n_streams < 1 or self.n_rounds < 1:
            raise ValueError("n_streams and n_rounds must be >= 1")
        if self.chunks_per_round < 1 or self.dispatch_budget < 1:
            raise ValueError("chunks_per_round and dispatch_budget must be >= 1")
        if self.priority_classes < 1 or self.n_workers < 1:
            raise ValueError("priority_classes and n_workers must be >= 1")
        if self.round_s <= 0.0:
            raise ValueError("round_s must be positive")


@dataclass
class GatewaySoakResult:
    """Outcome of one :func:`run_gateway_soak`."""

    config: GatewaySoakConfig
    plan: Optional[GatewayFaultPlan]
    reports: Dict[int, StreamReport]
    offered: Dict[int, int]
    round_states: List[str]
    transitions: List[Tuple[str, str, bool]]
    admitted: int
    rejected: int
    shed: int
    deadline_misses: int
    migrations: int
    moved_sessions: List[int]
    peak_queue_depth: int
    peak_retained_samples: int
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def delivered_frames(self) -> int:
        return sum(len(r.frames) for r in self.reports.values())


def _phy_config(cap: SoakConfig) -> CbmaConfig:
    """The PHY config whose receiver decodes a *cap*-shaped capture."""
    return CbmaConfig(
        n_tags=cap.n_tags,
        seed=cap.seed,
        payload_bytes=cap.payload_bytes,
        code_length=cap.code_length,
        samples_per_chip=cap.samples_per_chip,
        user_threshold=cap.user_threshold,
    )


def _soak_gateway_config(cfg: GatewaySoakConfig) -> GatewayConfig:
    """Admission policy sized to the soak's offered load.

    Token refill covers twice the nominal offered rate (spikes have
    to fight for tokens), the queue watermarks sit at one round of
    traffic, and ``max_retries=0`` keeps admission sleep-free so the
    run is a pure function of the virtual clock.
    """
    nominal = cfg.n_streams * cfg.chunks_per_round / cfg.round_s
    return GatewayConfig(
        token_rate=2.0 * nominal,
        token_burst=2.0 * cfg.n_streams * cfg.chunks_per_round,
        max_intake_chunks=8,
        max_streams=cfg.n_streams,
        queue_high=cfg.n_streams * cfg.chunks_per_round,
        queue_low=max(1, cfg.n_streams // 5),
        patience=2,
        max_retries=0,
        retain_chunks=32,
    )


def run_gateway_soak(
    cfg: GatewaySoakConfig,
    plan: Optional[GatewayFaultPlan] = None,
    tracer=None,
) -> GatewaySoakResult:
    """One full gateway soak: offer, dispatch, fault, drain, verify.

    Per round every stream offers its next chunks (multiplied by any
    active spike), the gateway runs one dispatch cycle at the
    (possibly browned-out) budget, and the virtual clock advances.
    After the last round the intake drains, every stream closes with
    a flush, and :func:`check_gateway_invariants` audits the ledger.
    """
    result = asyncio.run(_drive(cfg, plan, tracer))
    result.violations = check_gateway_invariants(cfg, result)
    return result


async def _drive(
    cfg: GatewaySoakConfig,
    plan: Optional[GatewayFaultPlan],
    tracer,
) -> GatewaySoakResult:
    tags, stream = build_soak_stack(cfg.capture)
    buffer, _offered_tx = build_soak_stream(cfg.capture, None, stream, tags)
    chunk = cfg.capture.chunk_hops * stream.hop_samples
    chunks = [buffer[lo : lo + chunk] for lo in range(0, buffer.size, chunk)]

    now = [0.0]

    def clock() -> float:
        return now[0]

    async def vsleep(dt: float) -> None:
        now[0] += dt

    gw = Gateway.from_config(
        _phy_config(cfg.capture),
        gateway=_soak_gateway_config(cfg),
        farm=FarmConfig(
            n_workers=cfg.n_workers,
            ring_slots=8,
            ring_slot_samples=max(chunk, 1),
        ),
        tracer=tracer,
        backend=cfg.backend,
        clock=clock,
        sleep=vsleep,
        seed=cfg.seed,
    )
    try:
        sids = []
        for i in range(cfg.n_streams):
            sids.append(
                await gw.open_stream(priority=i % cfg.priority_classes)
            )
        cursor = {sid: 0 for sid in sids}
        offered = {sid: 0 for sid in sids}
        round_states: List[str] = []
        moved: List[int] = []
        for r in range(cfg.n_rounds):
            rf = (
                plan.resolve(r)
                if plan is not None and not plan.empty
                else GatewayRoundFaults(r)
            )
            n_offer = max(1, int(round(cfg.chunks_per_round * rf.spike)))
            for sid in sids:
                for _ in range(n_offer):
                    if cursor[sid] >= len(chunks):
                        break
                    await gw.submit(sid, chunks[cursor[sid]])
                    cursor[sid] += 1
                    offered[sid] += 1
            budget = max(1, int(cfg.dispatch_budget * rf.budget))
            await gw.step(budget=budget)
            if cfg.migrate_round is not None and r == cfg.migrate_round:
                moved = await gw.drain_worker(cfg.migrate_worker)
            round_states.append(gw.state.value)
            now[0] += cfg.round_s
        while gw.queue_depth:
            await gw.step()
            now[0] += cfg.round_s
        reports = {}
        for sid in list(gw.stream_ids):
            reports[sid] = await gw.close_stream(sid, flush=True)
        return GatewaySoakResult(
            config=cfg,
            plan=plan,
            reports=reports,
            offered=offered,
            round_states=round_states,
            transitions=[
                (frm.value, to.value, forced)
                for frm, to, forced in gw.ladder.transitions
            ],
            admitted=gw.admitted,
            rejected=gw.rejected,
            shed=gw.shed,
            deadline_misses=gw.deadline_misses,
            migrations=gw.migrations,
            moved_sessions=moved,
            peak_queue_depth=gw.peak_queue_depth,
            peak_retained_samples=gw.peak_retained_samples,
        )
    finally:
        gw.close()


_LADDER_ORDER = ["full", "throttled", "shed", "draining"]


def check_gateway_invariants(
    cfg: GatewaySoakConfig, result: GatewaySoakResult
) -> List[InvariantViolation]:
    """Every machine-verifiable invariant of a finished gateway soak."""
    out: List[InvariantViolation] = []
    _tags, stream = build_soak_stack(cfg.capture)
    tolerance = stream.frame_samples // 2
    gwcfg = _soak_gateway_config(cfg)

    for sid, rep in sorted(result.reports.items()):
        if result.offered.get(sid, 0) != rep.admitted + rep.rejected:
            out.append(
                InvariantViolation(
                    "silent_drop",
                    f"stream {sid}: offered {result.offered.get(sid, 0)} != "
                    f"admitted {rep.admitted} + rejected {rep.rejected}",
                )
            )
        if rep.admitted != rep.fed + rep.shed:
            out.append(
                InvariantViolation(
                    "admission_accounting",
                    f"stream {sid}: admitted {rep.admitted} != "
                    f"fed {rep.fed} + shed {rep.shed}",
                )
            )
        last_by_key: Dict[Tuple[int, bytes], int] = {}
        prev_start = None
        for k, f in enumerate(rep.frames):
            key = (f.user_id, f.payload)
            prev = last_by_key.get(key)
            if prev is not None and abs(f.start_sample - prev) < tolerance:
                out.append(
                    InvariantViolation(
                        "duplicate_frame",
                        f"stream {sid} frame #{k} user {f.user_id} at "
                        f"{f.start_sample} duplicates one at {prev}",
                    )
                )
            last_by_key[key] = f.start_sample
            if prev_start is not None and f.start_sample < prev_start:
                out.append(
                    InvariantViolation(
                        "order",
                        f"stream {sid} frame #{k} start {f.start_sample} "
                        f"emitted after start {prev_start}",
                    )
                )
            prev_start = f.start_sample

    intake_bound = cfg.n_streams * gwcfg.max_intake_chunks
    if result.peak_queue_depth > intake_bound:
        out.append(
            InvariantViolation(
                "intake_bound",
                f"peak aggregate intake {result.peak_queue_depth} exceeds "
                f"{cfg.n_streams} x max_intake_chunks {gwcfg.max_intake_chunks}",
            )
        )
    chunk = cfg.capture.chunk_hops * stream.hop_samples
    retain_bound = cfg.n_streams * gwcfg.retain_chunks * chunk
    if result.peak_retained_samples > retain_bound:
        out.append(
            InvariantViolation(
                "retention_bound",
                f"peak retained samples {result.peak_retained_samples} "
                f"exceed bound {retain_bound}",
            )
        )

    for i, (frm, to, forced) in enumerate(result.transitions):
        if forced:
            continue
        gap = abs(_LADDER_ORDER.index(to) - _LADDER_ORDER.index(frm))
        if gap != 1:
            out.append(
                InvariantViolation(
                    "ladder_step",
                    f"transition #{i} {frm} -> {to} skips rungs without force",
                )
            )
        if to == "draining":
            out.append(
                InvariantViolation(
                    "ladder_step",
                    f"transition #{i} entered draining without force",
                )
            )
    return out
