"""Argument validation helpers.

Public API entry points validate their inputs eagerly and raise
:class:`ValueError` with actionable messages, so misconfiguration fails
at construction time rather than deep inside a vectorised kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_positive", "ensure_in_range", "ensure_binary_array"]


def ensure_positive(value, name: str):
    """Raise unless *value* is strictly positive; return it."""
    if not (value > 0):
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def ensure_in_range(value, name: str, low, high, inclusive: bool = True):
    """Raise unless *value* lies in [low, high] (or (low, high)); return it."""
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def ensure_binary_array(arr, name: str) -> np.ndarray:
    """Raise unless *arr* is a 0/1 array; return it as uint8."""
    out = np.asarray(arr)
    if out.size and not np.isin(out, (0, 1)).all():
        raise ValueError(f"{name} must contain only 0/1 values")
    return out.astype(np.uint8)
