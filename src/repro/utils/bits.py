"""Bit- and byte-level helpers.

The CBMA tag operates on bit streams: frames are sequences of bits, PN
spreading multiplies bits by chips, and the receiver recovers bits from
correlation decisions.  All functions in this module represent a *bit
array* as a one-dimensional :class:`numpy.ndarray` of dtype ``uint8``
containing only the values 0 and 1.  Using a single canonical
representation keeps every layer of the stack (framing, coding,
modulation) interoperable without ad-hoc conversions.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

BitArray = np.ndarray

__all__ = [
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "hamming_distance",
    "int_to_bits",
    "pack_bits",
    "random_bits",
    "unpack_bits",
    "as_bit_array",
    "bits_to_bipolar",
    "bipolar_to_bits",
]


def as_bit_array(bits: Union[Iterable[int], str, np.ndarray]) -> BitArray:
    """Coerce *bits* into the canonical uint8 0/1 array.

    Accepts any iterable of integers, a numpy array, or a string such as
    ``"10110"``.  Raises :class:`ValueError` when any element is not 0/1.
    """
    if isinstance(bits, str):
        if not all(ch in "01" for ch in bits):
            raise ValueError(f"bit string may contain only '0'/'1': {bits!r}")
        return np.frombuffer(bits.encode("ascii"), dtype=np.uint8) - ord("0")
    arr = np.asarray(bits)
    if arr.ndim != 1:
        arr = arr.ravel()
    if arr.size and not np.isin(arr, (0, 1)).all():
        raise ValueError("bit array may contain only 0 and 1")
    return arr.astype(np.uint8)


def bytes_to_bits(data: bytes, msb_first: bool = True) -> BitArray:
    """Expand *data* into a bit array, 8 bits per byte.

    Parameters
    ----------
    data:
        Raw bytes to expand.
    msb_first:
        When true (the default, matching on-air order in the paper's
        frame format) the most significant bit of each byte comes first.
    """
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    bits = np.unpackbits(arr)
    if not msb_first:
        bits = bits.reshape(-1, 8)[:, ::-1].ravel()
    return bits


def bits_to_bytes(bits: Union[Iterable[int], np.ndarray], msb_first: bool = True) -> bytes:
    """Pack a bit array (length divisible by 8) back into bytes."""
    arr = as_bit_array(bits)
    if arr.size % 8 != 0:
        raise ValueError(f"bit length {arr.size} is not a multiple of 8")
    if not msb_first:
        arr = arr.reshape(-1, 8)[:, ::-1].ravel()
    return np.packbits(arr).tobytes()


def int_to_bits(value: int, width: int) -> BitArray:
    """Represent a non-negative integer as *width* bits, MSB first."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if width <= 0:
        raise ValueError("width must be positive")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: Union[Iterable[int], np.ndarray]) -> int:
    """Interpret a bit array as an MSB-first unsigned integer."""
    arr = as_bit_array(bits)
    value = 0
    for bit in arr:
        value = (value << 1) | int(bit)
    return value


def pack_bits(*groups: Union[Iterable[int], np.ndarray]) -> BitArray:
    """Concatenate several bit groups into one bit array."""
    parts = [as_bit_array(g) for g in groups]
    if not parts:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate(parts)


def unpack_bits(bits: np.ndarray, *widths: int) -> list:
    """Split a bit array into consecutive fields of the given widths.

    The final field may be given as ``-1`` meaning "the rest".
    Returns a list of bit arrays, one per width.
    """
    arr = as_bit_array(bits)
    out = []
    offset = 0
    for i, width in enumerate(widths):
        if width == -1:
            if i != len(widths) - 1:
                raise ValueError("-1 width is only allowed in the last position")
            out.append(arr[offset:])
            offset = arr.size
            continue
        if offset + width > arr.size:
            raise ValueError(
                f"bit array of length {arr.size} too short for field of width {width} at offset {offset}"
            )
        out.append(arr[offset : offset + width])
        offset += width
    return out


def hamming_distance(a: Union[Iterable[int], np.ndarray], b: Union[Iterable[int], np.ndarray]) -> int:
    """Number of positions where the two equal-length bit arrays differ."""
    xa, xb = as_bit_array(a), as_bit_array(b)
    if xa.size != xb.size:
        raise ValueError(f"length mismatch: {xa.size} != {xb.size}")
    return int(np.count_nonzero(xa != xb))


def random_bits(n: int, rng: Optional[np.random.Generator] = None) -> BitArray:
    """Generate *n* uniformly random bits.

    Callers that care about reproducibility must pass a seeded
    generator; with ``rng=None`` the draw comes from OS entropy (the
    one sanctioned unseeded path, via :func:`repro.utils.rng.make_rng`).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    from repro.utils.rng import make_rng

    return make_rng(rng).integers(0, 2, size=n, dtype=np.uint8)


def bits_to_bipolar(bits: Union[Iterable[int], np.ndarray]) -> np.ndarray:
    """Map bits {0, 1} to bipolar chips {-1.0, +1.0}.

    The convention follows the DSSS literature: bit 1 maps to +1 and
    bit 0 maps to -1, so correlation of identical sequences is maximal.
    """
    arr = as_bit_array(bits)
    return arr.astype(np.float64) * 2.0 - 1.0


def bipolar_to_bits(chips: np.ndarray) -> BitArray:
    """Hard-decide bipolar values back to bits (>= 0 becomes 1)."""
    arr = np.asarray(chips, dtype=np.float64)
    return (arr >= 0).astype(np.uint8)
