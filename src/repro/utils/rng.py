"""Reproducible randomness.

Every stochastic component of the simulator (payload bits, channel
fading, interference arrival, tag placement) draws from a
:class:`numpy.random.Generator`.  Experiments construct one root
generator from an explicit seed and derive independent child streams
per component, so a whole benchmark run is exactly reproducible from a
single integer while components stay statistically independent.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

__all__ = ["make_rng", "spawn_seed", "child_rngs"]

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Build a generator from a seed, pass through an existing one.

    ``None`` yields OS-seeded randomness (interactive exploration);
    an int yields a deterministic stream; a Generator is returned
    unchanged so call sites can accept either form.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit seed from *rng* for a child component."""
    return int(rng.integers(0, 2**63 - 1))


def child_rngs(seed: RngLike, n: int) -> List[np.random.Generator]:
    """Derive *n* statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning, the supported way
    to get non-overlapping streams.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(spawn_seed(seed)) for _ in range(n)]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
