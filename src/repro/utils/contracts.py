"""Shape/dtype contracts for array-crunching entry points.

The receiver/SIC/correlator/channel hot paths all assume specific
buffer shapes and dtypes (1-D ``complex128`` sample streams, matched
template lengths), but numpy upcasts and broadcasts silently: a
``complex64`` buffer that drifts to ``complex128`` doubles memory
traffic without failing anything.  :func:`array_contract` makes those
assumptions *declared*:

- statically, the **LNT004** lint rule (:mod:`repro.lint`) reads the
  decorator and flags operations inside the function that widen a
  declared ``complex64``/``float32`` buffer;
- at runtime, with ``REPRO_DEBUG=1`` in the environment (or after
  :func:`enable_contracts`), every call checks the declared arguments
  and raises :class:`ArrayContractError` on a violation.  Dimension
  *symbols* are cross-checked within one call: two arguments declared
  ``"(n) complex128"`` must agree on ``n``.

Contract spec grammar::

    "(dim[, dim...]) dtype"     e.g. "(n_tags, n_chips) complex64"
    "() dtype"                  scalar (0-d) array
    dtype alone                 any shape, that dtype

where each *dim* is either an integer literal or a symbol name, and
*dtype* is a numpy dtype name (``complex64``, ``complex128``,
``float32``, ``float64``, ``uint8``, ...) or ``any`` (shape-only
check).  Use the keyword ``returns=`` for the return value.

The disabled path costs one attribute load and a truthiness test per
call, so contracts are safe on hot paths.
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar

import numpy as np

__all__ = [
    "ArrayContractError",
    "ArraySpec",
    "array_contract",
    "contracts_enabled",
    "enable_contracts",
]

F = TypeVar("F", bound=Callable[..., Any])

#: Runtime checking switch; initialised from ``REPRO_DEBUG=1`` at
#: import and togglable from tests via :func:`enable_contracts`.
_ENABLED: bool = os.environ.get("REPRO_DEBUG", "") == "1"

_SPEC_RE = re.compile(r"^\s*(?:\(\s*(?P<dims>[^)]*)\)\s*)?(?P<dtype>[A-Za-z_][A-Za-z0-9_]*)\s*$")

#: Widening order used by LNT004: dtype -> the dtypes that would widen it.
NARROW_DTYPES: Dict[str, Tuple[str, ...]] = {
    "float32": ("float64", "float128", "complex128"),
    "complex64": ("complex128", "complex256"),
}


class ArrayContractError(TypeError):
    """A call violated an :func:`array_contract` declaration."""


def contracts_enabled() -> bool:
    """Whether runtime contract checking is currently on."""
    return _ENABLED


def enable_contracts(on: bool = True) -> bool:
    """Turn runtime checking on/off; returns the previous state.

    ``REPRO_DEBUG=1`` sets the initial state; tests use this to
    exercise the checked path without re-importing the world.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


@dataclass(frozen=True)
class ArraySpec:
    """One parsed contract: optional dims plus a dtype name."""

    dims: Optional[Tuple[str, ...]]
    dtype: str
    raw: str

    @classmethod
    def parse(cls, spec: str) -> "ArraySpec":
        m = _SPEC_RE.match(spec)
        if m is None:
            raise ValueError(f"unparseable array contract {spec!r}")
        dims_text = m.group("dims")
        if dims_text is None:
            dims: Optional[Tuple[str, ...]] = None
        else:
            dims = tuple(d.strip() for d in dims_text.split(",") if d.strip())
        dtype = m.group("dtype")
        if dtype != "any":
            np.dtype(dtype)  # raises TypeError on unknown names
        return cls(dims=dims, dtype=dtype, raw=spec)

    def check(self, name: str, value: Any, bindings: Dict[str, int], where: str) -> None:
        """Raise :class:`ArrayContractError` unless *value* satisfies
        this spec; records/uses dimension-symbol *bindings*."""
        if value is None:
            return
        if not isinstance(value, np.ndarray):
            raise ArrayContractError(
                f"{where}: {name} must be an ndarray per contract {self.raw!r}, "
                f"got {type(value).__name__}"
            )
        if self.dtype != "any" and value.dtype != np.dtype(self.dtype):
            raise ArrayContractError(
                f"{where}: {name} has dtype {value.dtype}, contract {self.raw!r} "
                f"requires {self.dtype}"
            )
        if self.dims is None:
            return
        if value.ndim != len(self.dims):
            raise ArrayContractError(
                f"{where}: {name} has rank {value.ndim}, contract {self.raw!r} "
                f"requires rank {len(self.dims)}"
            )
        for dim, size in zip(self.dims, value.shape):
            if dim.isdigit():
                if int(dim) != size:
                    raise ArrayContractError(
                        f"{where}: {name} dimension {dim} has size {size}"
                    )
                continue
            bound = bindings.setdefault(dim, int(size))
            if bound != size:
                raise ArrayContractError(
                    f"{where}: {name} binds {dim}={size} but an earlier "
                    f"argument bound {dim}={bound}"
                )


def array_contract(returns: Optional[str] = None, **params: str) -> Callable[[F], F]:
    """Declare shape/dtype contracts on a function's array arguments.

    Example::

        @array_contract(x="(n) complex128", template="(m) complex128")
        def sliding_correlation(x, template): ...

    The parsed specs are attached as ``fn.__array_contract__`` (what
    LNT004 reads).  Runtime checking only happens while
    :func:`contracts_enabled` is true.
    """
    specs = {name: ArraySpec.parse(spec) for name, spec in params.items()}
    return_spec = ArraySpec.parse(returns) if returns is not None else None

    def decorate(fn: F) -> F:
        signature = inspect.signature(fn)
        unknown = set(specs) - set(signature.parameters)
        if unknown:
            raise ValueError(
                f"{fn.__qualname__}: contract names unknown parameters {sorted(unknown)}"
            )

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _ENABLED:
                return fn(*args, **kwargs)
            where = fn.__qualname__
            bindings: Dict[str, int] = {}
            bound = signature.bind_partial(*args, **kwargs)
            for name, spec in specs.items():
                if name in bound.arguments:
                    spec.check(name, bound.arguments[name], bindings, where)
            result = fn(*args, **kwargs)
            if return_spec is not None:
                return_spec.check("return value", result, bindings, where)
            return result

        wrapper.__array_contract__ = {  # type: ignore[attr-defined]
            "params": specs,
            "returns": return_spec,
        }
        return wrapper  # type: ignore[return-value]

    return decorate
