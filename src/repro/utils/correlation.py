"""Correlation primitives used by the CBMA receiver.

The receiver's three DSP stages -- frame synchronisation, user detection
and chip decoding (paper Sec. III-B) -- are all built on correlation:

- *sliding correlation* of a known preamble/PN template against the
  incoming sample stream locates frames and identifies which tag's PN
  code is present;
- *normalised correlation* against the per-bit chip templates decides
  each bit.

These helpers are deliberately dtype-agnostic: they accept real bipolar
chips as well as complex baseband samples.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.contracts import array_contract

__all__ = [
    "DENOM_FLOOR",
    "guard_denominator",
    "normalized_correlation",
    "sliding_correlation",
    "correlation_peaks",
    "best_alignment",
]

#: Smallest denominator treated as carrying signal: the smallest
#: *positive normal* float64 (~2.2e-308).  Any representable window
#: energy or norm sits at or above it, while a numerically zero (or
#: cancellation-negative, or underflowed-subnormal) value falls below,
#: so clamping to this floor turns 0/0 into exactly 0 without ever
#: distorting a real normalisation -- even for denormal-scale signals.
DENOM_FLOOR: float = float(np.finfo(np.float64).tiny)


def guard_denominator(denom, floor: float = DENOM_FLOOR):
    """Clamp a non-negative denominator away from zero.

    The single epsilon-guard for every correlation normalisation: all
    zero/near-zero-energy handling routes through here instead of
    ad-hoc ``== 0`` sentinel tests or magic clamps, so the degenerate
    behaviour (zero numerator over floored denominator -> exactly 0) is
    uniform across the direct and batched kernels.  Also repairs tiny
    *negative* energies produced by cumulative-sum cancellation, which
    would otherwise turn into NaN under ``sqrt``.

    Accepts a scalar or an array; returns the same shape.
    """
    return np.maximum(denom, floor)


@array_contract(x="(n) any", template="(n) any")
def normalized_correlation(x: np.ndarray, template: np.ndarray) -> float:
    """Normalised correlation of two equal-length sequences.

    Returns ``|<x, template>| / (||x|| * ||template||)`` -- a value in
    [0, 1] that is 1 iff the sequences are identical up to a complex
    scale factor.  The magnitude makes the metric insensitive to the
    unknown carrier phase of a backscattered signal.
    """
    x = np.asarray(x)
    template = np.asarray(template)
    if x.shape != template.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {template.shape}")
    denom = guard_denominator(np.linalg.norm(x) * np.linalg.norm(template))
    return float(np.abs(np.vdot(template, x)) / denom)


@array_contract(signal="(n) any", template="(m) any")
def sliding_correlation(signal: np.ndarray, template: np.ndarray, normalize: bool = True) -> np.ndarray:
    """Correlate *template* against every alignment of *signal*.

    Returns an array of length ``len(signal) - len(template) + 1`` where
    entry ``k`` is the (optionally normalised) correlation of
    ``signal[k:k+len(template)]`` with the template.

    The un-normalised path is a plain FFT-free vectorised dot product via
    :func:`numpy.convolve`; the normalised path divides by the local
    signal energy so that strong interferers do not masquerade as peaks.
    """
    signal = np.asarray(signal)
    template = np.asarray(template)
    n, m = signal.size, template.size
    if m == 0:
        raise ValueError("template must be non-empty")
    if n < m:
        return np.zeros(0, dtype=np.float64)
    # Cross-correlation == convolution with conjugate-reversed template.
    raw = np.convolve(signal, np.conj(template[::-1]), mode="valid")
    mags = np.abs(raw)
    if not normalize:
        return mags
    # Local energy of each length-m window, computed with a cumulative sum.
    power = np.abs(signal) ** 2
    csum = np.concatenate(([0.0], np.cumsum(power)))
    window_energy = guard_denominator(csum[m:] - csum[:-m])
    denom = guard_denominator(np.sqrt(window_energy) * np.linalg.norm(template))
    return mags / denom


def correlation_peaks(corr: np.ndarray, threshold: float, min_spacing: int = 1) -> np.ndarray:
    """Indices of local maxima in *corr* that exceed *threshold*.

    Greedy non-maximum suppression: peaks are taken in descending
    height order -- ties broken by the *earliest* index, so the result
    is deterministic across platforms and numpy versions -- and any
    candidate within *min_spacing* samples of an accepted peak is
    dropped.  Used by the frame synchroniser to avoid declaring one
    frame twice.

    The suppression works on the position-sorted candidate array with
    ``searchsorted`` range kills, so a pathological plateau of P
    above-threshold samples costs O(P log P) rather than the O(P^2) of
    an all-pairs distance check.
    """
    corr = np.asarray(corr, dtype=np.float64)
    candidates = np.flatnonzero(corr >= threshold)
    if candidates.size == 0:
        return candidates.astype(np.int64)
    if min_spacing <= 1:
        # Distinct indices are always >= 1 apart: nothing to suppress.
        return candidates.astype(np.int64)
    heights = corr[candidates]
    # Height-descending with an ascending-index tie-break: lexsort's
    # last key is primary, and both keys impose a total order, so the
    # visit order is fully deterministic even on tied plateaus (the
    # default argsort is an unstable quicksort whose tie order is
    # platform-dependent).
    order = np.lexsort((candidates, -heights))
    alive = np.ones(candidates.size, dtype=bool)
    accepted = np.zeros(candidates.size, dtype=bool)
    for i in order:
        if not alive[i]:
            continue
        accepted[i] = True
        lo = int(np.searchsorted(candidates, candidates[i] - min_spacing + 1, side="left"))
        hi = int(np.searchsorted(candidates, candidates[i] + min_spacing, side="left"))
        alive[lo:hi] = False
    return candidates[accepted].astype(np.int64)


def best_alignment(signal: np.ndarray, template: np.ndarray) -> Tuple[int, float]:
    """Offset and score of the best template alignment within *signal*."""
    corr = sliding_correlation(signal, template, normalize=True)
    if corr.size == 0:
        return 0, 0.0
    idx = int(np.argmax(corr))
    return idx, float(corr[idx])
