"""Correlation primitives used by the CBMA receiver.

The receiver's three DSP stages -- frame synchronisation, user detection
and chip decoding (paper Sec. III-B) -- are all built on correlation:

- *sliding correlation* of a known preamble/PN template against the
  incoming sample stream locates frames and identifies which tag's PN
  code is present;
- *normalised correlation* against the per-bit chip templates decides
  each bit.

These helpers are deliberately dtype-agnostic: they accept real bipolar
chips as well as complex baseband samples.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.contracts import array_contract

__all__ = [
    "normalized_correlation",
    "sliding_correlation",
    "correlation_peaks",
    "best_alignment",
]


@array_contract(x="(n) any", template="(n) any")
def normalized_correlation(x: np.ndarray, template: np.ndarray) -> float:
    """Normalised correlation of two equal-length sequences.

    Returns ``|<x, template>| / (||x|| * ||template||)`` -- a value in
    [0, 1] that is 1 iff the sequences are identical up to a complex
    scale factor.  The magnitude makes the metric insensitive to the
    unknown carrier phase of a backscattered signal.
    """
    x = np.asarray(x)
    template = np.asarray(template)
    if x.shape != template.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {template.shape}")
    denom = np.linalg.norm(x) * np.linalg.norm(template)
    if denom == 0:
        return 0.0
    return float(np.abs(np.vdot(template, x)) / denom)


@array_contract(signal="(n) any", template="(m) any")
def sliding_correlation(signal: np.ndarray, template: np.ndarray, normalize: bool = True) -> np.ndarray:
    """Correlate *template* against every alignment of *signal*.

    Returns an array of length ``len(signal) - len(template) + 1`` where
    entry ``k`` is the (optionally normalised) correlation of
    ``signal[k:k+len(template)]`` with the template.

    The un-normalised path is a plain FFT-free vectorised dot product via
    :func:`numpy.convolve`; the normalised path divides by the local
    signal energy so that strong interferers do not masquerade as peaks.
    """
    signal = np.asarray(signal)
    template = np.asarray(template)
    n, m = signal.size, template.size
    if m == 0:
        raise ValueError("template must be non-empty")
    if n < m:
        return np.zeros(0, dtype=np.float64)
    # Cross-correlation == convolution with conjugate-reversed template.
    raw = np.convolve(signal, np.conj(template[::-1]), mode="valid")
    mags = np.abs(raw)
    if not normalize:
        return mags
    # Local energy of each length-m window, computed with a cumulative sum.
    power = np.abs(signal) ** 2
    csum = np.concatenate(([0.0], np.cumsum(power)))
    window_energy = csum[m:] - csum[:-m]
    denom = np.sqrt(np.maximum(window_energy, 1e-30)) * np.linalg.norm(template)
    return mags / denom


def correlation_peaks(corr: np.ndarray, threshold: float, min_spacing: int = 1) -> np.ndarray:
    """Indices of local maxima in *corr* that exceed *threshold*.

    Greedy non-maximum suppression: peaks are taken in descending height
    order and any candidate within *min_spacing* samples of an accepted
    peak is dropped.  Used by the frame synchroniser to avoid declaring
    one frame twice.
    """
    corr = np.asarray(corr, dtype=np.float64)
    candidates = np.flatnonzero(corr >= threshold)
    if candidates.size == 0:
        return candidates
    order = candidates[np.argsort(corr[candidates])[::-1]]
    accepted: list = []
    for idx in order:
        if all(abs(int(idx) - a) >= min_spacing for a in accepted):
            accepted.append(int(idx))
    return np.array(sorted(accepted), dtype=np.int64)


def best_alignment(signal: np.ndarray, template: np.ndarray) -> Tuple[int, float]:
    """Offset and score of the best template alignment within *signal*."""
    corr = sliding_correlation(signal, template, normalize=True)
    if corr.size == 0:
        return 0, 0.0
    idx = int(np.argmax(corr))
    return idx, float(corr[idx])
