"""Cyclic redundancy checks.

The CBMA frame format (paper Sec. III-A) appends *two bytes of cyclic
redundancy check* to every frame.  The paper does not name the exact
polynomial; we default to CRC-16/CCITT-FALSE (polynomial 0x1021, init
0xFFFF), the usual choice in low-power radio framing (it is the CRC of
802.15.4 and of the EPC Gen2 air interface the paper cites), and also
provide CRC-16/IBM for completeness.

The implementation is table-driven so that checking thousands of frames
per simulated experiment stays cheap.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.utils.bits import as_bit_array, bits_to_bytes, bytes_to_bits

__all__ = ["Crc16", "crc16_ccitt", "crc16_ibm", "CRC16_CCITT", "CRC16_IBM"]


def _build_table(poly: int, reflect: bool) -> np.ndarray:
    """Precompute the 256-entry CRC table for *poly*."""
    table = np.zeros(256, dtype=np.uint16)
    for byte in range(256):
        if reflect:
            crc = byte
            for _ in range(8):
                crc = (crc >> 1) ^ (poly if crc & 1 else 0)
        else:
            crc = byte << 8
            for _ in range(8):
                crc = ((crc << 1) ^ poly if crc & 0x8000 else crc << 1) & 0xFFFF
        table[byte] = crc
    return table


def _reflect16(value: int) -> int:
    out = 0
    for i in range(16):
        if value & (1 << i):
            out |= 1 << (15 - i)
    return out


def _reflect_poly(poly: int) -> int:
    return _reflect16(poly)


class Crc16:
    """A parametric 16-bit CRC.

    Parameters
    ----------
    poly:
        Generator polynomial in normal (MSB-first) notation.
    init:
        Initial shift-register value.
    reflect:
        Whether input bytes and the final CRC are bit-reflected
        (true for CRC-16/IBM, false for CRC-16/CCITT-FALSE).
    xor_out:
        Final XOR applied to the register.
    """

    def __init__(self, poly: int, init: int, reflect: bool, xor_out: int = 0x0000, name: str = "crc16"):
        self.poly = poly
        self.init = init
        self.reflect = reflect
        self.xor_out = xor_out
        self.name = name
        table_poly = _reflect_poly(poly) if reflect else poly
        self._table = _build_table(table_poly, reflect)

    def compute(self, data: Union[bytes, bytearray]) -> int:
        """Return the CRC of *data* as an integer in [0, 0xFFFF]."""
        crc = self.init
        table = self._table
        if self.reflect:
            for byte in bytes(data):
                crc = (crc >> 8) ^ int(table[(crc ^ byte) & 0xFF])
        else:
            for byte in bytes(data):
                crc = ((crc << 8) & 0xFFFF) ^ int(table[((crc >> 8) ^ byte) & 0xFF])
        return crc ^ self.xor_out

    def compute_bits(self, bits) -> np.ndarray:
        """CRC over a bit array whose length is a multiple of 8.

        Returns the 16 CRC bits MSB first, ready to append to a frame.
        """
        data = bits_to_bytes(as_bit_array(bits))
        crc = self.compute(data)
        return bytes_to_bits(crc.to_bytes(2, "big"))

    def check(self, data: Union[bytes, bytearray], expected: int) -> bool:
        """True when *data* has CRC *expected*."""
        return self.compute(data) == expected

    def check_bits(self, payload_bits, crc_bits) -> bool:
        """True when the 16 *crc_bits* match the CRC of *payload_bits*."""
        got = self.compute_bits(payload_bits)
        want = as_bit_array(crc_bits)
        if want.size != 16:
            raise ValueError(f"crc field must be 16 bits, got {want.size}")
        return bool(np.array_equal(got, want))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Crc16(name={self.name!r}, poly=0x{self.poly:04X}, init=0x{self.init:04X}, reflect={self.reflect})"


CRC16_CCITT = Crc16(poly=0x1021, init=0xFFFF, reflect=False, xor_out=0x0000, name="crc16-ccitt-false")
CRC16_IBM = Crc16(poly=0x8005, init=0x0000, reflect=True, xor_out=0x0000, name="crc16-ibm")


def crc16_ccitt(data: Union[bytes, bytearray]) -> int:
    """CRC-16/CCITT-FALSE of *data* (the library default)."""
    return CRC16_CCITT.compute(data)


def crc16_ibm(data: Union[bytes, bytearray]) -> int:
    """CRC-16/IBM (ARC) of *data*."""
    return CRC16_IBM.compute(data)
