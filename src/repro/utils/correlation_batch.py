"""Batched, FFT-backed sliding correlation -- the receiver's hot path.

Every receiver stage (frame sync hypotheses, user detection, diversity
combining, the streaming window walk) reduces to the same primitive:
correlate *U* equal-length user templates against every alignment of
one sample window.  :func:`repro.utils.correlation.sliding_correlation`
does that one template at a time with an O(n*m) ``np.convolve``; this
module does all *U* templates in one vectorised pass:

- the window's FFT is computed **once** and shared by every template
  (cross-correlation is a product in the frequency domain);
- the local window-energy normalisation is computed **once** as a
  cumulative sum and shared by every template row;
- long windows fall back to **overlap-save** blocks so memory stays
  bounded by the block size, not the buffer length.

The kernel is numerically interchangeable with the direct path: same
normalisation, same :func:`~repro.utils.correlation.guard_denominator`
epsilon policy, agreement to ~1e-12 relative (FFT rounding only).  The
environment variable ``REPRO_CORR_BACKEND`` (``fft`` | ``direct``)
forces a backend globally -- the escape hatch if an FFT library ever
misbehaves -- and every caller also accepts an explicit ``backend=``.

Template construction is cached: :func:`template_bank` memoises the
stacked spread-preamble matrix per ``(FrameFormat, codes,
samples_per_chip)``, so constructing many receivers over one code book
(sweeps, streaming, SIC passes) builds the templates once.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tag.framing import FrameFormat

from repro.utils.contracts import array_contract
from repro.utils.correlation import guard_denominator

__all__ = [
    "BACKEND_ENV",
    "corr_backend",
    "sliding_correlation_batch",
    "sliding_correlation_many",
    "TemplateBank",
    "template_bank",
    "clear_template_cache",
]

#: Environment variable selecting the sliding-correlation backend.
BACKEND_ENV = "REPRO_CORR_BACKEND"

_BACKENDS = ("fft", "direct")

#: Overlap-save engages above this many signal samples: one giant FFT
#: of a multi-second capture would allocate U full-length spectra,
#: while blocks keep the working set at a few hundred KiB per template.
_OVERLAP_SAVE_THRESHOLD = 1 << 17


def corr_backend(override: Optional[str] = None) -> str:
    """The active sliding-correlation backend (``fft`` or ``direct``).

    *override* (a caller's explicit ``backend=`` argument) wins over the
    ``REPRO_CORR_BACKEND`` environment variable, which wins over the
    default (``fft``).  Unknown names raise immediately rather than
    silently running the wrong kernel.
    """
    value = override or os.environ.get(BACKEND_ENV, "") or "fft"
    value = value.strip().lower()
    if value not in _BACKENDS:
        raise ValueError(
            f"unknown correlation backend {value!r} "
            f"(allowed: {', '.join(_BACKENDS)}; set {BACKEND_ENV} or pass backend=)"
        )
    return value


def _next_fast_len(n: int) -> int:
    """Smallest 5-smooth integer >= *n* (pocketfft is fastest there)."""
    if n <= 6:
        return max(n, 1)
    best = 1 << (n - 1).bit_length()  # power-of-two fallback bound
    p5 = 1
    while p5 < best:
        p35 = p5
        while p35 < best:
            # Smallest power of two lifting p35 over n, if it improves.
            k = p35
            while k < n:
                k *= 2
            if k < best:
                best = k
            p35 *= 3
        p5 *= 5
    return best


def _fft_valid_correlation(signal: np.ndarray, templates: np.ndarray) -> np.ndarray:
    """``|valid cross-correlation|`` of every template row, via one
    shared signal FFT (callers guarantee ``n >= m``)."""
    n = signal.size
    m = templates.shape[1]
    nfft = _next_fast_len(n)
    # Cross-correlation == convolution with the conjugate-reversed
    # template; real inputs take the half-spectrum (rfft) fast path.
    kernels = np.conj(templates[:, ::-1])
    if not np.iscomplexobj(signal) and not np.iscomplexobj(kernels):
        spec = np.fft.rfft(signal, nfft)
        kspec = np.fft.rfft(kernels.real, nfft, axis=1)
        full = np.fft.irfft(spec[None, :] * kspec, nfft, axis=1)
    else:
        spec = np.fft.fft(signal, nfft)
        kspec = np.fft.fft(kernels, nfft, axis=1)
        full = np.fft.ifft(spec[None, :] * kspec, axis=1)
    # "valid" slice of the full linear convolution.
    return np.abs(full[:, m - 1 : n])


def _overlap_save_correlation(signal: np.ndarray, templates: np.ndarray) -> np.ndarray:
    """Overlap-save variant: process *signal* in blocks sharing one
    kernel-spectrum computation, bounding memory on long captures."""
    n = signal.size
    m = templates.shape[1]
    n_valid = n - m + 1
    block = _next_fast_len(max(4 * m, 1 << 14))
    step = block - (m - 1)
    out = np.empty((templates.shape[0], n_valid), dtype=np.float64)
    kernels = np.conj(templates[:, ::-1])
    real = not np.iscomplexobj(signal) and not np.iscomplexobj(kernels)
    if real:
        kspec = np.fft.rfft(kernels.real, block, axis=1)
    else:
        kspec = np.fft.fft(kernels, block, axis=1)
    pos = 0
    while pos < n_valid:
        chunk = signal[pos : pos + block]
        if real:
            spec = np.fft.rfft(chunk, block)
            full = np.fft.irfft(spec[None, :] * kspec, block, axis=1)
        else:
            spec = np.fft.fft(chunk, block)
            full = np.fft.ifft(spec[None, :] * kspec, axis=1)
        take = min(step, n_valid - pos, chunk.size - m + 1 if chunk.size >= m else 0)
        if take <= 0:
            break
        out[:, pos : pos + take] = np.abs(full[:, m - 1 : m - 1 + take])
        pos += take
    return out


@array_contract(signal="(n) any", templates="(u, m) any")
def sliding_correlation_batch(
    signal: np.ndarray,
    templates: np.ndarray,
    normalize: bool = True,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Correlate every row of *templates* against every alignment of
    *signal* in one batched pass.

    Parameters
    ----------
    signal:
        1-D sample buffer (real or complex).
    templates:
        2-D stack ``(U, m)`` of equal-length templates.
    normalize:
        Divide each alignment by the local window energy (shared cumsum
        across all rows) times the row's template norm -- identical to
        :func:`repro.utils.correlation.sliding_correlation`.
    backend:
        ``"fft"`` | ``"direct"`` | ``None`` (defer to
        ``REPRO_CORR_BACKEND``, default ``fft``).  The direct backend
        reproduces the legacy per-template ``np.convolve`` loop
        bit-for-bit; the fft backend matches it to FFT rounding
        (~1e-12 relative).

    Returns
    -------
    ``(U, n - m + 1)`` float64 array of correlation magnitudes.
    """
    signal = np.asarray(signal)
    templates = np.asarray(templates)
    if templates.ndim != 2:
        raise ValueError(f"templates must be a 2-D stack, got shape {templates.shape}")
    n = signal.size
    n_templates, m = templates.shape
    if m == 0:
        raise ValueError("templates must be non-empty")
    if n < m:
        return np.zeros((n_templates, 0), dtype=np.float64)

    mode = corr_backend(backend)
    if mode == "direct":
        mags = np.empty((n_templates, n - m + 1), dtype=np.float64)
        for row, template in enumerate(templates):
            mags[row] = np.abs(np.convolve(signal, np.conj(template[::-1]), mode="valid"))
    elif n > _OVERLAP_SAVE_THRESHOLD:
        mags = _overlap_save_correlation(signal, templates)
    else:
        mags = _fft_valid_correlation(signal, templates)

    if not normalize:
        return mags
    # One shared window-energy cumsum normalises every template row.
    power = np.abs(signal) ** 2
    csum = np.concatenate(([0.0], np.cumsum(power)))
    window_energy = guard_denominator(csum[m:] - csum[:-m])
    template_norms = np.linalg.norm(templates, axis=1)
    denom = guard_denominator(np.sqrt(window_energy)[None, :] * template_norms[:, None])
    return mags / denom


@array_contract(signals="(s, n) any", templates="(u, m) any")
def sliding_correlation_many(
    signals: np.ndarray,
    templates: np.ndarray,
    normalize: bool = True,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Correlate every template row against every alignment of a whole
    *stack* of equal-length windows in one pass.

    This is the cross-session extension of
    :func:`sliding_correlation_batch`: the farm co-schedules sessions
    that share one :class:`TemplateBank`, stacks their pending windows
    into ``signals`` of shape ``(S, n)``, and gates them all with a
    single batched FFT.  Each output row ``out[s]`` is **bit-identical**
    to ``sliding_correlation_batch(signals[s], templates, ...)`` with
    the same backend: the FFT, the cumulative-sum normalisation and the
    epsilon guard are all computed row-independently, so batching
    windows together never changes any single window's scores.

    Returns
    -------
    ``(S, U, n - m + 1)`` float64 array of correlation magnitudes.
    """
    signals = np.asarray(signals)
    templates = np.asarray(templates)
    if signals.ndim != 2:
        raise ValueError(f"signals must be a 2-D stack, got shape {signals.shape}")
    if templates.ndim != 2:
        raise ValueError(f"templates must be a 2-D stack, got shape {templates.shape}")
    n_signals, n = signals.shape
    n_templates, m = templates.shape
    if m == 0:
        raise ValueError("templates must be non-empty")
    if n < m:
        return np.zeros((n_signals, n_templates, 0), dtype=np.float64)

    mode = corr_backend(backend)
    if mode == "direct" or n > _OVERLAP_SAVE_THRESHOLD:
        # The direct backend and the overlap-save regime stay per-row
        # loops through the single-window kernel -- equivalence with
        # the oracle is then true by construction.
        return np.stack(
            [
                sliding_correlation_batch(
                    row, templates, normalize=normalize, backend=mode
                )
                for row in signals
            ]
        )

    nfft = _next_fast_len(n)
    kernels = np.conj(templates[:, ::-1])
    if not np.iscomplexobj(signals) and not np.iscomplexobj(kernels):
        spec = np.fft.rfft(signals, nfft, axis=1)
        kspec = np.fft.rfft(kernels.real, nfft, axis=1)
        full = np.fft.irfft(spec[:, None, :] * kspec[None, :, :], nfft, axis=2)
    else:
        spec = np.fft.fft(signals, nfft, axis=1)
        kspec = np.fft.fft(kernels, nfft, axis=1)
        full = np.fft.ifft(spec[:, None, :] * kspec[None, :, :], axis=2)
    mags = np.abs(full[:, :, m - 1 : n])

    if not normalize:
        return mags
    # Row-wise cumsum reproduces each window's shared-energy
    # normalisation exactly as the single-window kernel computes it.
    power = np.abs(signals) ** 2
    csum = np.concatenate(
        [np.zeros((n_signals, 1), dtype=np.float64), np.cumsum(power, axis=1)], axis=1
    )
    window_energy = guard_denominator(csum[:, m:] - csum[:, :-m])
    template_norms = np.linalg.norm(templates, axis=1)
    denom = guard_denominator(
        np.sqrt(window_energy)[:, None, :] * template_norms[None, :, None]
    )
    return mags / denom


class TemplateBank:
    """The stacked spread-preamble templates of one receiver code book.

    Rows are bipolar, upsampled preamble templates in ``user_ids``
    order -- ready to feed :func:`sliding_correlation_batch`.  Banks
    are built through :func:`template_bank`, which memoises them per
    ``(FrameFormat, codes, samples_per_chip)``.
    """

    __slots__ = ("user_ids", "matrix", "samples_per_chip", "_rows")

    def __init__(
        self, user_ids: Tuple[int, ...], matrix: np.ndarray, samples_per_chip: int
    ) -> None:
        self.user_ids = user_ids
        self.matrix = matrix
        self.samples_per_chip = samples_per_chip
        self._rows = {uid: matrix[i] for i, uid in enumerate(user_ids)}

    @property
    def n_users(self) -> int:
        return len(self.user_ids)

    @property
    def template_samples(self) -> int:
        """Length of every template row, in samples."""
        return int(self.matrix.shape[1])

    def template(self, user_id: int) -> np.ndarray:
        """The template row for *user_id*."""
        return self._rows[int(user_id)]

    def correlate(
        self,
        window: np.ndarray,
        normalize: bool = True,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Batched sliding correlation of every user template."""
        return sliding_correlation_batch(
            window, self.matrix, normalize=normalize, backend=backend
        )

    def correlate_many(
        self,
        windows: np.ndarray,
        normalize: bool = True,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Sliding correlation of every user template against a stack
        of equal-length windows (one ``(U, n-m+1)`` plane per window)."""
        return sliding_correlation_many(
            windows, self.matrix, normalize=normalize, backend=backend
        )


_BANK_CACHE: Dict[tuple, TemplateBank] = {}
_BANK_CACHE_MAX = 32


def clear_template_cache() -> int:
    """Drop all memoised banks; returns how many were cached."""
    n = len(_BANK_CACHE)
    _BANK_CACHE.clear()
    return n


def template_bank(
    fmt: "FrameFormat", codes: Dict[int, np.ndarray], samples_per_chip: int
) -> TemplateBank:
    """The (cached) template bank for *fmt* x *codes* x oversampling.

    *codes* maps user id -> 0/1 PN chip array; all codes must share one
    length (a mixed-length book cannot stack, and no supported code
    family produces one -- callers should fall back to the per-user
    path if they ever need ragged codes).  The cache key fingerprints
    the preamble bits, the code bits and the oversampling factor, so
    logically identical inputs hit the same bank regardless of object
    identity.
    """
    from repro.phy.modulation import spread_bits, upsample_chips
    from repro.utils.bits import bits_to_bipolar

    normalized = {int(uid): np.asarray(code, dtype=np.uint8) for uid, code in codes.items()}
    if not normalized:
        raise ValueError("template bank needs at least one user code")
    lengths = {code.size for code in normalized.values()}
    if len(lengths) != 1:
        raise ValueError(
            f"codes must share one length to stack into a bank, got lengths {sorted(lengths)}"
        )
    preamble = np.asarray(fmt.preamble, dtype=np.uint8)
    key = (
        preamble.tobytes(),
        int(samples_per_chip),
        tuple(sorted((uid, code.tobytes()) for uid, code in normalized.items())),
    )
    bank = _BANK_CACHE.get(key)
    if bank is not None:
        return bank
    user_ids = tuple(normalized)
    rows = [
        upsample_chips(bits_to_bipolar(spread_bits(fmt.preamble, normalized[uid])), samples_per_chip)
        for uid in user_ids
    ]
    matrix = np.ascontiguousarray(np.stack(rows).astype(np.float64))
    bank = TemplateBank(user_ids, matrix, int(samples_per_chip))
    # Fork-safe memo: banks are deterministic, immutable values keyed by
    # content, so post-fork divergence costs only a rebuild, never a
    # wrong answer or a shared handle.
    if len(_BANK_CACHE) >= _BANK_CACHE_MAX:
        _BANK_CACHE.pop(next(iter(_BANK_CACHE)))  # repro-lint: disable=LNT007
    _BANK_CACHE[key] = bank  # repro-lint: disable=LNT007
    return bank
