"""Shared low-level utilities for the CBMA reproduction.

This subpackage collects the small, dependency-free building blocks used
throughout the library:

- :mod:`repro.utils.bits` -- bit/byte packing and conversions.
- :mod:`repro.utils.crc` -- table-driven CRC-16 implementations.
- :mod:`repro.utils.db` -- decibel and linear power conversions.
- :mod:`repro.utils.correlation` -- sliding and normalised correlation.
- :mod:`repro.utils.rng` -- reproducible random number generation.
- :mod:`repro.utils.validation` -- argument checking helpers.
"""

from repro.utils.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    pack_bits,
    random_bits,
    unpack_bits,
)
from repro.utils.crc import Crc16, crc16_ccitt, crc16_ibm
from repro.utils.db import (
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    power_ratio_db,
    watts_to_dbm,
)
from repro.utils.correlation import (
    normalized_correlation,
    sliding_correlation,
    correlation_peaks,
)
from repro.utils.rng import child_rngs, make_rng, spawn_seed
from repro.utils.validation import (
    ensure_in_range,
    ensure_binary_array,
    ensure_positive,
)

__all__ = [
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "hamming_distance",
    "int_to_bits",
    "pack_bits",
    "random_bits",
    "unpack_bits",
    "Crc16",
    "crc16_ccitt",
    "crc16_ibm",
    "db_to_linear",
    "dbm_to_watts",
    "linear_to_db",
    "power_ratio_db",
    "watts_to_dbm",
    "normalized_correlation",
    "sliding_correlation",
    "correlation_peaks",
    "child_rngs",
    "make_rng",
    "spawn_seed",
    "ensure_in_range",
    "ensure_binary_array",
    "ensure_positive",
]
