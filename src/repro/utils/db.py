"""Decibel arithmetic.

Wireless link budgets mix dB, dBm and linear power freely; these helpers
keep the conversions explicit and vectorised.  All functions accept
scalars or numpy arrays and return the matching type.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "power_ratio_db",
    "add_powers_dbm",
]

_MIN_LINEAR = 1e-30


def db_to_linear(db):
    """Convert a power ratio in dB to linear scale (10^(dB/10))."""
    return np.power(10.0, np.asarray(db, dtype=np.float64) / 10.0) if np.ndim(db) else 10.0 ** (db / 10.0)


def linear_to_db(linear):
    """Convert a linear power ratio to dB, clamping tiny values.

    Values at or below zero are clamped to a floor (-300 dB) rather than
    producing ``-inf``/NaN, which keeps downstream statistics finite.
    """
    arr = np.asarray(linear, dtype=np.float64)
    clamped = np.maximum(arr, _MIN_LINEAR)
    out = 10.0 * np.log10(clamped)
    return out if arr.ndim else float(out)


def dbm_to_watts(dbm):
    """Convert power in dBm to watts."""
    return db_to_linear(np.asarray(dbm) - 30.0) if np.ndim(dbm) else 10.0 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts):
    """Convert power in watts to dBm."""
    arr = np.asarray(watts, dtype=np.float64)
    out = linear_to_db(arr) + 30.0
    return out if arr.ndim else float(out)


def power_ratio_db(p_num, p_den):
    """Ratio of two linear powers expressed in dB."""
    num = np.asarray(p_num, dtype=np.float64)
    den = np.maximum(np.asarray(p_den, dtype=np.float64), _MIN_LINEAR)
    out = linear_to_db(num / den)
    return out if (num.ndim or np.ndim(p_den)) else float(out)


def add_powers_dbm(*powers_dbm):
    """Sum incoherent powers given in dBm, returning dBm.

    Used when combining independent interference sources at the
    receiver: powers add linearly, not in dB.
    """
    if not powers_dbm:
        raise ValueError("at least one power required")
    total_w = sum(dbm_to_watts(p) for p in powers_dbm)
    return watts_to_dbm(total_w)
