"""CBMA: Coded-Backscatter Multiple Access -- full-system reproduction.

A production-quality Python reproduction of *CBMA: Coded-Backscatter
Multiple Access* (Mi et al., ICDCS 2019): concurrent multi-tag WiFi
backscatter with per-tag PN spreading, correlation-based multi-user
detection, impedance-ladder power control at the passive tag, and
annealing-based node selection.

Quickstart::

    from repro import CbmaConfig, CbmaNetwork, Deployment

    config = CbmaConfig(n_tags=5, seed=7)
    net = CbmaNetwork(config, Deployment.random(5, rng=7))
    metrics = net.run_rounds(100)
    print(f"FER {metrics.fer:.3f}, goodput {metrics.goodput_bps/1e3:.0f} kbps")

Subpackages
-----------
``repro.codes``     spreading-code families (Gold, 2NC, Walsh)
``repro.phy``       waveforms, OOK modulation, impedance model
``repro.channel``   geometry, Friis eq. (1), fading, interference
``repro.tag``       framing, clocks, the Tag state machine
``repro.receiver``  frame sync, user detection, decoding, ACK
``repro.mac``       Algorithm 1 power control, node selection, baselines
``repro.faults``    deterministic deployment fault injection
``repro.sim``       collision/network simulators, paper experiments
``repro.system``    the full deployment life cycle (CbmaSystem)
``repro.obs``       tracing, profiling, the unified ExperimentResult
``repro.analysis``  CDFs, confidence intervals, report rendering
"""

from repro.channel.geometry import Deployment, Point, Room
from repro.channel.pathloss import LinkBudget
from repro.faults import FaultPlan
from repro.mac.node_selection import NodeSelector
from repro.mac.power_control import PowerController
from repro.obs.profile import RunProfile
from repro.obs.result import ExperimentResult
from repro.obs.tracer import Tracer
from repro.receiver.receiver import CbmaReceiver, ReceptionReport
from repro.sim.metrics import MetricsAccumulator
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.system import CbmaSystem, EpochReport
from repro.tag.framing import Frame, FrameFormat
from repro.tag.tag import Tag

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "Point",
    "Room",
    "LinkBudget",
    "NodeSelector",
    "PowerController",
    "CbmaReceiver",
    "ReceptionReport",
    "MetricsAccumulator",
    "CbmaConfig",
    "CbmaNetwork",
    "CbmaSystem",
    "EpochReport",
    "Frame",
    "FrameFormat",
    "Tag",
    "Tracer",
    "RunProfile",
    "ExperimentResult",
    "FaultPlan",
    "__version__",
]
