"""CbmaSystem: the full network life cycle in one object.

Everything below this module is a mechanism; this is the policy loop a
deployed CBMA network actually runs, epoch after epoch:

1. **Group selection** -- more tags may exist than concurrent-decode
   capacity; a rotating, starvation-free scheduler
   (:class:`~repro.mac.fairness.RotatingGroupScheduler`) picks this
   epoch's active group.
2. **Power control** -- Algorithm 1 balances the group (run on the
   first epoch a group composition is seen, then cached per group).
3. **Data transfer** -- the group exchanges traffic for the epoch
   (saturated rounds, or ARQ-managed queues when a traffic model is
   supplied).
4. **Mobility** -- optional tag motion between epochs invalidates
   cached power states when positions drift.

The object exposes per-epoch reports and cumulative metrics, which is
what the long-running deployment example and the system benchmark
drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from repro.channel.geometry import Deployment
from repro.mac.fairness import RotatingGroupScheduler, ServiceLog
from repro.mac.power_control import PowerController
from repro.obs.taxonomy import C
from repro.obs.tracer import as_tracer
from repro.sim.metrics import MetricsAccumulator
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.utils.rng import make_rng

__all__ = ["CbmaSystem", "EpochReport"]


@dataclass(frozen=True)
class EpochReport:
    """Outcome of one system epoch."""

    epoch: int
    group: Tuple[int, ...]
    fer: float
    frames_sent: int
    power_control_ran: bool


class CbmaSystem:
    """A deployed CBMA network with more tags than concurrent capacity.

    Parameters
    ----------
    config:
        PHY/MAC configuration; ``config.n_tags`` is the *group size*
        (concurrent-decode capacity), not the population.
    deployment:
        All tag positions; the population size is ``len(deployment.tags)``.
    controller:
        Algorithm 1 settings (used whenever a new group composition
        needs balancing).
    mobility:
        Optional mobility model with an ``update(deployment, dt_s, rng)``
        method, advanced once per epoch.
    mobility_dt_s:
        Simulated time per epoch handed to the mobility model.
    reposition_tolerance_m:
        Cached power-control results are invalidated when any group
        member moved farther than this since balancing.
    faults:
        Optional :class:`~repro.faults.FaultPlan` threaded into every
        epoch's network.  The plan's round timeline is global across
        epochs (epoch 2 continues where epoch 1 stopped), so windowed
        faults like a mid-run jammer behave as one deployment-time
        event.  Fault targets are *group-relative* tag slots.
        Injections accumulate in :attr:`fault_log`.
    """

    def __init__(
        self,
        config: CbmaConfig,
        deployment: Deployment,
        controller: Optional[PowerController] = None,
        mobility=None,
        mobility_dt_s: float = 1.0,
        reposition_tolerance_m: float = 0.10,
        seed=None,
        tracer=None,
        faults=None,
    ):
        population = len(deployment.tags)
        if population < config.n_tags:
            raise ValueError(
                f"population {population} smaller than group size {config.n_tags}"
            )
        self.config = config
        self.deployment = deployment
        self.controller = controller or PowerController(packets_per_epoch=8)
        self.mobility = mobility
        self.mobility_dt_s = mobility_dt_s
        self.reposition_tolerance_m = reposition_tolerance_m
        self.rng = make_rng(seed if seed is not None else config.seed)
        self.tracer = as_tracer(tracer)
        self.scheduler = RotatingGroupScheduler(deployment, group_size=config.n_tags)
        self.service_log = ServiceLog(n_tags=population)
        self.metrics = MetricsAccumulator()
        self._epoch = 0
        self.faults = faults
        #: Rounds simulated so far -- the fault plan's global timeline.
        self._rounds_simulated = 0
        #: Cumulative ``fault.*`` injection counts across epochs.
        self.fault_log: Dict[str, int] = {}
        #: group composition -> (impedance states, positions at balance time)
        self._balanced: Dict[Tuple[int, ...], tuple] = {}

    # ------------------------------------------------------------------

    def _positions_of(self, group: Sequence[int]) -> List[tuple]:
        return [(self.deployment.tags[i].x, self.deployment.tags[i].y) for i in group]

    def _needs_rebalance(self, key: Tuple[int, ...]) -> bool:
        cached = self._balanced.get(key)
        if cached is None:
            return True
        _, positions = cached
        for (x0, y0), (x1, y1) in zip(positions, self._positions_of(key)):
            if ((x0 - x1) ** 2 + (y0 - y1) ** 2) ** 0.5 > self.reposition_tolerance_m:
                return True
        return False

    def _build_network(self, group: Sequence[int]) -> CbmaNetwork:
        sub = Deployment(
            excitation=self.deployment.excitation,
            receiver=self.deployment.receiver,
            tags=[self.deployment.tags[i] for i in group],
            room=self.deployment.room,
        )
        net = CbmaNetwork(
            self.config,
            sub,
            tracer=self.tracer if self.tracer.enabled else None,
            faults=self.faults,
            round_offset=self._rounds_simulated,
        )
        net.rng = make_rng(int(self.rng.integers(0, 2**31)))
        return net

    def run_epoch(self, rounds: int = 20) -> EpochReport:
        """One full epoch: select, balance (if needed), transfer, move."""
        tracer = self.tracer
        with tracer.span("epoch", epoch=self._epoch):
            tracer.count(C.EPOCH_EPOCHS)
            # Sorted so the same composition hits the same balance cache
            # regardless of the order the scheduler emitted it.
            group = tuple(sorted(self.scheduler.next_group(self.rng)))
            net = self._build_network(group)

            ran_pc = False
            if self._needs_rebalance(group):
                self.controller.run(net.tags, net.epoch_runner)
                self._balanced[group] = (
                    [t.impedance_index for t in net.tags],
                    self._positions_of(group),
                )
                ran_pc = True
                tracer.count(C.EPOCH_POWER_CONTROL_RUNS)
            else:
                states, _ = self._balanced[group]
                for tag, z in zip(net.tags, states):
                    tag.set_impedance(z)

            epoch_metrics = net.run_rounds(rounds)
        # Advance the global fault timeline past everything this
        # epoch's network simulated (power-control probing included)
        # and fold its injection log into the system's.
        self._rounds_simulated = net._round_index
        for reason, count in net.fault_log.items():
            self.fault_log[reason] = self.fault_log.get(reason, 0) + count
        delivered = {
            group[i]: epoch_metrics.per_tag_correct.get(i, 0) for i in range(len(group))
        }
        self.service_log.record_epoch(group, delivered)

        # Fold into the cumulative metrics (remapping tag ids to the
        # population index space).
        self.metrics.frames_sent += epoch_metrics.frames_sent
        self.metrics.frames_detected += epoch_metrics.frames_detected
        self.metrics.frames_decoded += epoch_metrics.frames_decoded
        self.metrics.frames_correct += epoch_metrics.frames_correct
        self.metrics.payload_bits_delivered += epoch_metrics.payload_bits_delivered
        self.metrics.elapsed_s += epoch_metrics.elapsed_s
        for i, pop_idx in enumerate(group):
            self.metrics.per_tag_sent[pop_idx] = (
                self.metrics.per_tag_sent.get(pop_idx, 0)
                + epoch_metrics.per_tag_sent.get(i, 0)
            )
            self.metrics.per_tag_correct[pop_idx] = (
                self.metrics.per_tag_correct.get(pop_idx, 0)
                + epoch_metrics.per_tag_correct.get(i, 0)
            )

        if self.mobility is not None:
            self.mobility.update(self.deployment, dt_s=self.mobility_dt_s, rng=self.rng)

        report = EpochReport(
            epoch=self._epoch,
            group=group,
            fer=epoch_metrics.fer,
            frames_sent=epoch_metrics.frames_sent,
            power_control_ran=ran_pc,
        )
        self._epoch += 1
        return report

    def run(self, n_epochs: int, rounds_per_epoch: int = 20) -> List[EpochReport]:
        """Run several epochs; returns their reports."""
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        return [self.run_epoch(rounds_per_epoch) for _ in range(n_epochs)]

    # ------------------------------------------------------------------

    @property
    def population(self) -> int:
        return len(self.deployment.tags)

    def fairness(self) -> float:
        """Jain index of scheduling shares across the population."""
        return self.service_log.fairness()

    def per_tag_delivery(self) -> Dict[int, float]:
        """Population-indexed delivery ratios (1.0 when never scheduled)."""
        return {
            i: self.metrics.per_tag_ack_ratio(i) for i in range(self.population)
        }
