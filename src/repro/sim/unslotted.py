"""Fully unslotted CBMA: no rounds, no shared timing of any kind.

The round-based simulator still implies a loose slot structure (every
tag starts within a few chips of its peers).  A maximally distributed
deployment has none: each tag transmits whenever its own traffic says
to, and frames overlap partially, fully, or not at all.  This module
simulates that regime over one long continuous buffer and decodes it
with the :class:`~repro.receiver.streaming.StreamingReceiver` --
producing the classic random-access throughput curve, except that
CBMA's code-domain capture lets overlapping frames *both* survive
where ALOHA would lose both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.channel.noise import NoiseModel
from repro.obs.taxonomy import C
from repro.obs.tracer import as_tracer
from repro.phy.modulation import fractional_delay, ook_baseband
from repro.receiver.streaming import StreamingReceiver
from repro.tag.tag import Tag
from repro.utils.rng import make_rng

__all__ = ["UnslottedScenario", "UnslottedResult", "simulate_unslotted"]


@dataclass(frozen=True)
class _Transmission:
    tag_index: int
    payload: bytes
    start_sample: float


@dataclass
class UnslottedResult:
    """Outcome of an unslotted simulation."""

    offered: int
    delivered: int
    duration_s: float
    payload_bits: int
    per_tag_offered: Dict[int, int] = field(default_factory=dict)
    per_tag_delivered: Dict[int, int] = field(default_factory=dict)
    faults_injected: Dict[str, int] = field(default_factory=dict)
    """``fault.*`` slug -> injections, when a fault plan was supplied."""

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.offered if self.offered else 1.0

    @property
    def goodput_bps(self) -> float:
        return self.delivered * self.payload_bits / self.duration_s if self.duration_s else 0.0


@dataclass
class UnslottedScenario:
    """Configuration of an unslotted run.

    Attributes
    ----------
    tags:
        The transmitting tags.
    amplitudes:
        Complex link amplitude per tag at unit delta-Gamma.
    rate_hz:
        Per-tag Poisson frame rate.
    duration_s:
        Simulated air time.
    payload_bytes / samples_per_chip / chip_rate_hz / noise:
        As in the round-based simulator.
    """

    tags: List[Tag]
    amplitudes: Sequence[complex]
    rate_hz: float
    duration_s: float
    payload_bytes: int = 12
    samples_per_chip: int = 2
    chip_rate_hz: float = 1.0e6
    noise: NoiseModel = field(default_factory=NoiseModel)

    def __post_init__(self) -> None:
        if len(self.tags) != len(self.amplitudes):
            raise ValueError("need one amplitude per tag")
        if self.rate_hz < 0 or self.duration_s <= 0:
            raise ValueError("rate must be >= 0 and duration positive")

    @property
    def sample_rate_hz(self) -> float:
        return self.chip_rate_hz * self.samples_per_chip

    def frame_samples(self, tag: Tag) -> int:
        bits = tag.fmt.frame_bits(self.payload_bytes)
        return bits * tag.code.size * self.samples_per_chip


def simulate_unslotted(
    scenario: UnslottedScenario,
    receiver: StreamingReceiver,
    rng=None,
    tracer=None,
    faults=None,
) -> UnslottedResult:
    """Run one unslotted simulation and decode the whole stream.

    *tracer* (a :class:`repro.obs.Tracer`) records the waveform
    synthesis and stream-decode spans plus offered/delivered counters;
    it never consumes *rng*.

    *faults* (a :class:`repro.faults.FaultPlan`) injects deployment
    failures into the round-free regime.  With no rounds to index, the
    plan's round windows map onto frame-airtime units (one "round" =
    one frame duration of tag 0): dropout/brownout resolve per
    transmission at its start time, and the jammer/ADC-clip faults
    apply per airtime window of the buffer.  The epoch-loop faults
    (clock drift, ACK loss, stuck impedance) have no unslotted
    equivalent and are ignored here.
    """
    tracer = as_tracer(tracer)
    rng = make_rng(rng)
    n_samples = int(scenario.duration_s * scenario.sample_rate_hz)
    buffer = scenario.noise.sample(n_samples, rng)
    n_tags = len(scenario.tags)
    fault_unit = scenario.frame_samples(scenario.tags[0]) if scenario.tags else 0
    plan = faults if (faults is not None and not faults.empty and fault_unit > 0) else None
    injected: Dict[str, int] = {}

    def _count(reason: str) -> None:
        injected[reason] = injected.get(reason, 0) + 1

    transmissions: List[_Transmission] = []
    for i, tag in enumerate(scenario.tags):
        frame_len = scenario.frame_samples(tag)
        t = 0.0
        while True:
            gap = rng.exponential(1.0 / scenario.rate_hz) if scenario.rate_hz > 0 else np.inf
            t += gap
            start = t * scenario.sample_rate_hz
            if start + frame_len >= n_samples:
                break
            payload = bytes(rng.integers(0, 256, scenario.payload_bytes, dtype=np.uint8))
            transmissions.append(_Transmission(i, payload, start))

    result = UnslottedResult(
        offered=len(transmissions),
        delivered=0,
        duration_s=scenario.duration_s,
        payload_bits=8 * scenario.payload_bytes,
    )
    for tx in transmissions:
        result.per_tag_offered[tx.tag_index] = result.per_tag_offered.get(tx.tag_index, 0) + 1

    with tracer.span("synthesize", tags=len(scenario.tags)):
        for tx in transmissions:
            tag = scenario.tags[tx.tag_index]
            # Phase draw happens for every offered transmission (even a
            # dropped one) so the fault plan never perturbs the RNG
            # stream of the surviving traffic.
            phase = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi))
            keep_fraction = None
            if plan is not None:
                rf = plan.resolve(int(tx.start_sample // fault_unit), n_tags)
                if tx.tag_index in rf.silent:
                    _count("fault.dropout")
                    continue
                keep_fraction = rf.brownout.get(tx.tag_index)
                if keep_fraction is not None:
                    _count("fault.brownout")
            amp = complex(scenario.amplitudes[tx.tag_index]) * tag.delta_gamma
            signal = ook_baseband(tag.chip_stream(tx.payload, scenario.samples_per_chip), amplitude=amp * phase)
            if keep_fraction is not None:
                signal = signal.copy()
                signal[int(round(keep_fraction * signal.size)):] = 0.0
            placed = fractional_delay(signal, tx.start_sample, total_length=n_samples)
            buffer += placed

    if plan is not None:
        # Shared-medium faults, one frame-airtime window at a time: the
        # jammer adds band noise, the saturated ADC hard-limits I/Q.
        for r in range(int(np.ceil(n_samples / fault_unit))):
            rf = plan.resolve(r, n_tags)
            lo, hi = r * fault_unit, min((r + 1) * fault_unit, n_samples)
            jam = rf.jammer_samples(hi - lo, scenario.sample_rate_hz)
            if jam is not None:
                buffer[lo:hi] += jam
                _count("fault.interference")
            if rf.clip_level is not None:
                buffer[lo:hi] = rf.clip(buffer[lo:hi])
                _count("fault.adc_clip")

    with tracer.span("stream_decode"):
        decoded = receiver.process_stream(buffer)

    # Score: a decode counts once per matching offered transmission
    # (payloads are random, so payload identity is an exact matcher).
    outstanding: Dict[Tuple[int, bytes], int] = {}
    for tx in transmissions:
        key = (tx.tag_index, tx.payload)
        outstanding[key] = outstanding.get(key, 0) + 1
    for frame in decoded:
        key = (frame.user_id, frame.payload)
        if outstanding.get(key, 0) > 0:
            outstanding[key] -= 1
            result.delivered += 1
            result.per_tag_delivered[frame.user_id] = (
                result.per_tag_delivered.get(frame.user_id, 0) + 1
            )
    result.faults_injected = injected
    if tracer.enabled:
        tracer.count(C.UNSLOTTED_OFFERED, result.offered)
        tracer.count(C.UNSLOTTED_DELIVERED, result.delivered)
        for reason, count in injected.items():
            # ``injected`` keys carry the plan's "fault." prefix; the
            # taxonomy's injection family is ``faults.<kind>``.
            kind = reason[len("fault."):] if reason.startswith("fault.") else reason
            tracer.count(f"faults.{kind}", count)
    return result
