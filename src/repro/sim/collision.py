"""Sample-level multi-tag collision simulation.

Builds the receiver's complex baseband buffer for one "round" in which
several tags backscatter a frame each, concurrently and asynchronously:

- each tag's frame is framed, PN-spread, upsampled and OOK-modulated
  (:mod:`repro.tag`, :mod:`repro.phy`);
- each tag's chip stream is delayed by its oscillator offset
  (fractional samples -- true asynchrony, not chip-aligned);
- each stream is scaled by its composite link amplitude (path loss x
  impedance state x fading; :mod:`repro.channel`);
- the superposition is gated by the excitation envelope (OFDM
  intermittency, if any), then interference and AWGN are added.

A noise-only lead-in precedes the frames so the energy detector can
acquire its baseline, exactly as a real receiver sees the channel
before a burst arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel.interference import NoInterference, OfdmExcitationGate
from repro.channel.noise import NoiseModel
from repro.obs.taxonomy import G
from repro.obs.tracer import as_tracer
from repro.phy.modulation import fractional_delay, ook_baseband, waveform_from_edges
from repro.tag.tag import Tag
from repro.utils.rng import make_rng

__all__ = ["CollisionScenario", "simulate_round", "simulate_diversity_round", "RoundTruth"]


@dataclass
class RoundTruth:
    """Ground truth of one simulated round (for scoring, never decoding)."""

    payloads: Dict[int, bytes]
    amplitudes: Dict[int, complex]
    offsets_samples: Dict[int, float]
    n_samples: int


@dataclass
class CollisionScenario:
    """Static configuration of a collision experiment.

    Attributes
    ----------
    tags:
        The transmitting tags (already holding codes/impedance state).
    amplitudes:
        Base complex link amplitude per tag *at unit delta-Gamma*; the
        tag's current impedance state scales it (power control acts
        here).  Order matches *tags*.
    noise:
        Receiver noise model.
    interference:
        Additive interferer (WiFi/Bluetooth models or NoInterference).
    excitation_gate:
        Optional multiplicative 0/1 excitation envelope (OFDM case).
    samples_per_chip:
        Oversampling factor (fidelity knob; >= 2 resolves fractional
        chip offsets).
    chip_rate_hz:
        Chip rate, setting the absolute time scale for interference.
    lead_in_chips:
        Noise-only lead-in length before the earliest frame.
    """

    tags: List[Tag]
    amplitudes: Sequence[complex]
    noise: NoiseModel = field(default_factory=NoiseModel)
    interference: object = field(default_factory=NoInterference)
    excitation_gate: Optional[OfdmExcitationGate] = None
    samples_per_chip: int = 2
    chip_rate_hz: float = 1.0e6
    lead_in_chips: int = 64
    tail_chips: int = 16
    cfo_hz: Optional[Sequence[float]] = None
    """Optional per-tag carrier frequency offset: the residual error of
    each tag's 20 MHz subcarrier (ppm error x shift frequency), rotating
    that tag's baseband continuously.  ``None`` (default) keeps the
    ideal model."""
    tx_faults: Optional[Dict[int, "TagTxFault"]] = None
    """Optional per-tag transmit impairments
    (:class:`repro.faults.TagTxFault`), keyed by tag id: a *silent* tag
    radiates nothing this round (its payload stays in the truth, so it
    scores as sent-and-lost); ``keep_fraction`` truncates the burst
    mid-frame (brownout).  ``None`` keeps the healthy model."""

    def __post_init__(self) -> None:
        if len(self.tags) != len(self.amplitudes):
            raise ValueError(
                f"need one amplitude per tag: {len(self.amplitudes)} != {len(self.tags)}"
            )
        if self.cfo_hz is not None and len(self.cfo_hz) != len(self.tags):
            raise ValueError("need one CFO per tag when cfo_hz is given")
        if self.samples_per_chip < 1:
            raise ValueError("samples_per_chip must be >= 1")

    @property
    def sample_rate_hz(self) -> float:
        return self.chip_rate_hz * self.samples_per_chip

    def effective_amplitude(self, index: int) -> complex:
        """Link amplitude x the tag's current impedance gain.

        The base amplitude is computed at ``|delta Gamma| = 1``; the
        backscattered field scales linearly with ``|delta Gamma|``
        (power with its square), so the tag's state multiplies in
        directly.
        """
        return complex(self.amplitudes[index]) * self.tags[index].delta_gamma


def simulate_round(
    scenario: CollisionScenario,
    payloads: Dict[int, bytes],
    rng=None,
    tracer=None,
) -> tuple:
    """Simulate one round; returns ``(iq_buffer, RoundTruth)``.

    *payloads* maps tag id -> payload bytes; tags absent from the map
    stay silent this round (their link still exists but radiates
    nothing).  *tracer* (a :class:`repro.obs.Tracer`) records the
    waveform-synthesis span; it never consumes *rng*, so traced and
    untraced runs are bit-identical.
    """
    tracer = as_tracer(tracer)
    with tracer.span("synthesize", tags=len(payloads)):
        iq, truth = _synthesize_round(scenario, payloads, rng)
    if tracer.enabled:
        tracer.gauge(G.ROUND_N_SAMPLES, truth.n_samples)
    return iq, truth


def _synthesize_round(
    scenario: CollisionScenario,
    payloads: Dict[int, bytes],
    rng=None,
) -> tuple:
    rng = make_rng(rng)
    spc = scenario.samples_per_chip
    lead_in = scenario.lead_in_chips * spc

    streams: List[np.ndarray] = []
    truth = RoundTruth(payloads=dict(payloads), amplitudes={}, offsets_samples={}, n_samples=0)

    max_len = lead_in + scenario.tail_chips * spc
    tx_faults = scenario.tx_faults or {}
    for i, tag in enumerate(scenario.tags):
        if tag.tag_id not in payloads:
            continue
        fault = tx_faults.get(tag.tag_id)
        if fault is not None and fault.silent:
            # Dropout: the application offered a frame (it stays in the
            # truth for scoring) but the tag radiates nothing.
            continue
        offset = lead_in + tag.oscillator.total_delay_samples(spc)
        amp = scenario.effective_amplitude(i)
        if tag.oscillator.is_ideal:
            chips = tag.chip_stream(payloads[tag.tag_id], spc)
            delayed = fractional_delay(ook_baseband(chips, amplitude=amp), offset)
        else:
            # Drifting/jittering clock: every chip edge lands where the
            # oscillator says, not on a regular grid.
            raw_chips = tag.encode(payloads[tag.tag_id])
            edges = tag.oscillator.chip_edges(raw_chips.size + 1, rng) + float(
                scenario.lead_in_chips
            )
            unit = waveform_from_edges(raw_chips, edges, spc)
            delayed = ook_baseband(unit, amplitude=amp)
        if scenario.cfo_hz is not None and scenario.cfo_hz[i]:
            # Residual subcarrier offset: a continuous rotation in
            # receiver time (the stream is already placed on the
            # buffer timeline, so sample n maps to t = n / fs).
            n = np.arange(delayed.size)
            delayed = delayed * np.exp(
                2j * np.pi * scenario.cfo_hz[i] * n / scenario.sample_rate_hz
            )
        if fault is not None and fault.keep_fraction is not None:
            # Brownout: the tag loses power mid-frame.  Only the leading
            # fraction of the *burst* (past the placement offset) makes
            # it onto the air; the tail is dark.
            burst_start = int(np.floor(offset))
            cut = burst_start + int(
                round(fault.keep_fraction * max(delayed.size - burst_start, 0))
            )
            delayed = delayed.copy()
            delayed[cut:] = 0.0
        streams.append(delayed)
        truth.amplitudes[tag.tag_id] = amp
        truth.offsets_samples[tag.tag_id] = offset
        max_len = max(max_len, delayed.size + scenario.tail_chips * spc)

    total = np.zeros(max_len, dtype=np.complex128)
    for s in streams:
        total[: s.size] += s

    if scenario.excitation_gate is not None:
        gate = scenario.excitation_gate.gate(max_len, scenario.sample_rate_hz, rng)
        total *= gate

    total += scenario.interference.sample(max_len, scenario.sample_rate_hz, rng)
    total += scenario.noise.sample(max_len, rng)

    truth.n_samples = max_len
    return total, truth


def simulate_diversity_round(
    scenario: CollisionScenario,
    payloads: Dict[int, bytes],
    branch_gains: Sequence[Sequence[complex]],
    rng=None,
) -> tuple:
    """Simulate one round as seen by several receive antennas.

    *branch_gains* has shape ``(n_antennas, n_tags)``: the independent
    small-scale gain each antenna sees from each tag, applied on top of
    the scenario's base amplitudes.  Each branch gets independent noise
    and interference.  Returns ``([iq_per_branch, ...], RoundTruth)``
    with the truth describing branch 0.
    """
    rng = make_rng(rng)
    gains = np.asarray(branch_gains, dtype=np.complex128)
    if gains.ndim != 2 or gains.shape[1] != len(scenario.tags):
        raise ValueError(
            f"branch_gains must be (n_antennas, {len(scenario.tags)}), got {gains.shape}"
        )
    spc = scenario.samples_per_chip
    lead_in = scenario.lead_in_chips * spc

    truth = RoundTruth(payloads=dict(payloads), amplitudes={}, offsets_samples={}, n_samples=0)
    unit_streams: List[tuple] = []
    max_len = lead_in + scenario.tail_chips * spc
    for i, tag in enumerate(scenario.tags):
        if tag.tag_id not in payloads:
            continue
        chips = tag.chip_stream(payloads[tag.tag_id], spc)
        offset = lead_in + tag.oscillator.total_delay_samples(spc)
        base = scenario.effective_amplitude(i)
        unit = fractional_delay(ook_baseband(chips, amplitude=1.0), offset)
        unit_streams.append((i, base, unit))
        truth.amplitudes[tag.tag_id] = base * gains[0, i]
        truth.offsets_samples[tag.tag_id] = offset
        max_len = max(max_len, unit.size + scenario.tail_chips * spc)

    branches: List[np.ndarray] = []
    for k in range(gains.shape[0]):
        total = np.zeros(max_len, dtype=np.complex128)
        for i, base, unit in unit_streams:
            total[: unit.size] += base * gains[k, i] * unit
        if scenario.excitation_gate is not None:
            gate = scenario.excitation_gate.gate(max_len, scenario.sample_rate_hz, rng)
            total *= gate
        total += scenario.interference.sample(max_len, scenario.sample_rate_hz, rng)
        total += scenario.noise.sample(max_len, rng)
        branches.append(total)

    truth.n_samples = max_len
    return branches, truth
