"""Traffic models for network-level simulation.

The paper motivates CBMA with IoT devices that "transmit data at low
rates or in a burst manner" (Sec. I).  These arrival processes feed the
ARQ layer (:mod:`repro.mac.arq`) and the macro tier
(:mod:`repro.macro`) so throughput and latency can be studied under
realistic offered load rather than full saturation:

- :class:`PoissonArrivals` -- memoryless sensor reports;
- :class:`PeriodicArrivals` -- fixed-interval telemetry with per-tag
  phase offsets;
- :class:`BurstyArrivals` -- ON/OFF bursts (events trigger a flurry of
  readings).

Every model shares one window contract: ``draw(n_tags, duration_s,
rng)`` returns the per-tag message counts of the *next* window.  Two
of the models carry state between windows (the periodic model's window
clock, the bursty model's ON/OFF occupancy), so an instance that is
reused across independent runs must be returned to its initial state
first -- that is :meth:`reset`, and every simulator that accepts a
traffic model (:class:`repro.mac.arq.ArqSimulator`,
:class:`repro.macro.engine.MacroSimulator`) calls it at construction
so back-to-back runs from fresh simulators are identical.
:class:`PeriodicArrivals` additionally accepts an explicit
``start_s``, which makes a single window draw a pure function of its
arguments (no hidden clock at all) -- the form the event-driven macro
tier uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["PoissonArrivals", "PeriodicArrivals", "BurstyArrivals"]


@dataclass
class PoissonArrivals:
    """Independent Poisson arrivals at *rate_hz* messages/second/tag."""

    rate_hz: float

    def reset(self) -> None:
        """No-op: the Poisson model is memoryless (uniform API)."""

    def draw(self, n_tags: int, duration_s: float, rng=None) -> np.ndarray:
        """Messages arriving per tag during *duration_s*."""
        if self.rate_hz < 0 or duration_s < 0:
            raise ValueError("rate and duration must be non-negative")
        rng = make_rng(rng)
        return rng.poisson(self.rate_hz * duration_s, size=n_tags)


@dataclass
class PeriodicArrivals:
    """One message every *period_s*, staggered across tags.

    Tag *i* reports at phases ``i * period / n_tags`` -- the natural
    firmware choice to avoid synchronous bursts.

    Successive :meth:`draw` calls advance an internal window clock so a
    round-driven simulator can just ask for "the next *duration_s*
    seconds".  Pass ``start_s`` to evaluate one explicit window
    ``[start_s, start_s + duration_s)`` instead -- that form is
    stateless and leaves the internal clock untouched.  :meth:`reset`
    rewinds the internal clock to zero.
    """

    period_s: float

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        self._elapsed = 0.0

    def reset(self) -> None:
        """Rewind the internal window clock to time zero."""
        self._elapsed = 0.0

    def draw(
        self,
        n_tags: int,
        duration_s: float,
        rng=None,
        start_s: Optional[float] = None,
    ) -> np.ndarray:
        """Messages per tag during one *duration_s* window.

        With ``start_s=None`` (default) the window follows the last
        drawn one and the internal clock advances; with an explicit
        ``start_s`` the window is ``[start_s, start_s + duration_s)``
        and no state is touched.
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if start_s is None:
            start = self._elapsed
            self._elapsed = start + duration_s
        else:
            start = float(start_s)
        end = start + duration_s
        if n_tags <= 0:
            return np.zeros(0, dtype=np.int64)
        # Tag i fires at phase_i + k*period; count the k with
        # start <= phase_i + k*period < end, vectorised over tags.
        phases = (np.arange(n_tags, dtype=np.float64) / n_tags) * self.period_s
        k_first = np.ceil((start - phases) / self.period_s)
        k_last = np.ceil((end - phases) / self.period_s)  # exclusive
        return np.maximum(k_last - k_first, 0.0).astype(np.int64)


@dataclass
class BurstyArrivals:
    """Two-state ON/OFF process: bursts of back-to-back messages.

    Each window, a tag in OFF turns ON with probability *p_on*; while
    ON it emits ``burst_rate_hz`` Poisson traffic and returns to OFF
    with probability *p_off* at the window end.  The ON/OFF occupancy
    persists across :meth:`draw` calls (that is the point of the
    model); :meth:`reset` returns every tag to OFF.
    """

    burst_rate_hz: float
    p_on: float = 0.05
    p_off: float = 0.3

    def __post_init__(self) -> None:
        if not (0 <= self.p_on <= 1 and 0 <= self.p_off <= 1):
            raise ValueError("probabilities must lie in [0, 1]")
        self._on: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Return every tag to the OFF state."""
        self._on = None

    def _state(self, n_tags: int) -> np.ndarray:
        if self._on is None or self._on.size != n_tags:
            self._on = np.zeros(n_tags, dtype=bool)
        return self._on

    def draw(self, n_tags: int, duration_s: float, rng=None) -> np.ndarray:
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        rng = make_rng(rng)
        on = self._state(n_tags)
        # One vectorised pass replaces the old per-tag loop: the three
        # RNG draws (turn-on, burst counts, turn-off) happen for every
        # tag so the stream stays aligned regardless of state.
        turn_on = rng.random(n_tags) < self.p_on
        on = on | turn_on
        counts = rng.poisson(self.burst_rate_hz * duration_s, size=n_tags)
        counts[~on] = 0
        turn_off = rng.random(n_tags) < self.p_off
        on &= ~turn_off
        self._on = on
        return counts.astype(np.int64)
