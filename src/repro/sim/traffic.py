"""Traffic models for network-level simulation.

The paper motivates CBMA with IoT devices that "transmit data at low
rates or in a burst manner" (Sec. I).  These arrival processes feed the
ARQ layer (:mod:`repro.mac.arq`) so throughput and latency can be
studied under realistic offered load rather than full saturation:

- :class:`PoissonArrivals` -- memoryless sensor reports;
- :class:`PeriodicArrivals` -- fixed-interval telemetry with per-tag
  phase offsets;
- :class:`BurstyArrivals` -- ON/OFF bursts (events trigger a flurry of
  readings).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["PoissonArrivals", "PeriodicArrivals", "BurstyArrivals"]


@dataclass
class PoissonArrivals:
    """Independent Poisson arrivals at *rate_hz* messages/second/tag."""

    rate_hz: float

    def draw(self, n_tags: int, duration_s: float, rng=None) -> np.ndarray:
        """Messages arriving per tag during *duration_s*."""
        if self.rate_hz < 0 or duration_s < 0:
            raise ValueError("rate and duration must be non-negative")
        rng = make_rng(rng)
        return rng.poisson(self.rate_hz * duration_s, size=n_tags)


@dataclass
class PeriodicArrivals:
    """One message every *period_s*, staggered across tags.

    Tag *i* reports at phases ``i * period / n_tags`` -- the natural
    firmware choice to avoid synchronous bursts.
    """

    period_s: float

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        self._elapsed = 0.0

    def draw(self, n_tags: int, duration_s: float, rng=None) -> np.ndarray:
        """Messages per tag during the next *duration_s* window."""
        start = self._elapsed
        end = start + duration_s
        self._elapsed = end
        counts = np.zeros(n_tags, dtype=np.int64)
        for i in range(n_tags):
            phase = (i / max(n_tags, 1)) * self.period_s
            # Arrivals at phase + k*period inside [start, end).
            k_first = int(np.ceil((start - phase) / self.period_s))
            t = phase + k_first * self.period_s
            while t < end:
                if t >= start:
                    counts[i] += 1
                t += self.period_s
        return counts


@dataclass
class BurstyArrivals:
    """Two-state ON/OFF process: bursts of back-to-back messages.

    Each window, a tag in OFF turns ON with probability *p_on*; while
    ON it emits ``burst_rate_hz`` Poisson traffic and returns to OFF
    with probability *p_off* at the window end.
    """

    burst_rate_hz: float
    p_on: float = 0.05
    p_off: float = 0.3

    def __post_init__(self) -> None:
        if not (0 <= self.p_on <= 1 and 0 <= self.p_off <= 1):
            raise ValueError("probabilities must lie in [0, 1]")
        self._state: dict = {}

    def draw(self, n_tags: int, duration_s: float, rng=None) -> np.ndarray:
        rng = make_rng(rng)
        counts = np.zeros(n_tags, dtype=np.int64)
        for i in range(n_tags):
            on = self._state.get(i, False)
            if not on and rng.random() < self.p_on:
                on = True
            if on:
                counts[i] = rng.poisson(self.burst_rate_hz * duration_s)
                if rng.random() < self.p_off:
                    on = False
            self._state[i] = on
        return counts
