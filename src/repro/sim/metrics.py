"""Experiment metrics: FER, BER, PRR, throughput.

Definitions follow the paper:

- *frame error rate* (FER): missing frames over transmitted frames
  (Sec. IV: "the number of missing packets over the total number of
  transmitted packets") -- a frame is missing when it is not decoded
  with a valid CRC and matching payload;
- *packet reception rate* (PRR): 1 - FER (Fig. 12's y-axis);
- *bit error rate* (BER): wrong bits over decoded-frame bits,
  computable only when ground truth is supplied;
- *throughput/goodput*: delivered payload bits per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.utils.bits import hamming_distance

__all__ = ["RoundOutcome", "MetricsAccumulator", "score_frame"]


@dataclass(frozen=True)
class RoundOutcome:
    """Per-tag result of one round, scored against ground truth."""

    tag_id: int
    transmitted: bool
    detected: bool
    decoded: bool
    payload_correct: bool
    bit_errors: int = 0
    bits_compared: int = 0


@dataclass
class MetricsAccumulator:
    """Accumulates outcomes across rounds and derives the paper metrics."""

    frames_sent: int = 0
    frames_detected: int = 0
    frames_decoded: int = 0
    frames_correct: int = 0
    false_decodes: int = 0
    """Frames 'decoded' for a tag that did not transmit (CRC slip)."""
    bit_errors: int = 0
    bits_compared: int = 0
    payload_bits_delivered: int = 0
    elapsed_s: float = 0.0
    per_tag_sent: Dict[int, int] = field(default_factory=dict)
    per_tag_correct: Dict[int, int] = field(default_factory=dict)

    def record(self, outcome: RoundOutcome, payload_bits: int = 0) -> None:
        """Fold one per-tag outcome into the totals."""
        if not outcome.transmitted:
            if outcome.decoded:
                self.false_decodes += 1
            return
        self.frames_sent += 1
        self.per_tag_sent[outcome.tag_id] = self.per_tag_sent.get(outcome.tag_id, 0) + 1
        if outcome.detected:
            self.frames_detected += 1
        if outcome.decoded:
            self.frames_decoded += 1
        if outcome.payload_correct:
            self.frames_correct += 1
            self.payload_bits_delivered += payload_bits
            self.per_tag_correct[outcome.tag_id] = self.per_tag_correct.get(outcome.tag_id, 0) + 1
        self.bit_errors += outcome.bit_errors
        self.bits_compared += outcome.bits_compared

    def add_time(self, seconds: float) -> None:
        self.elapsed_s += seconds

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def fer(self) -> float:
        """Frame error rate (missing / transmitted)."""
        return 1.0 - self.frames_correct / self.frames_sent if self.frames_sent else 0.0

    @property
    def prr(self) -> float:
        """Packet reception rate."""
        return 1.0 - self.fer

    @property
    def detection_rate(self) -> float:
        """Fraction of transmitted frames whose user was detected."""
        return self.frames_detected / self.frames_sent if self.frames_sent else 0.0

    @property
    def ber(self) -> float:
        """Bit error rate over compared bits."""
        return self.bit_errors / self.bits_compared if self.bits_compared else 0.0

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits per second of simulated air time."""
        return self.payload_bits_delivered / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def per_tag_ack_ratio(self, tag_id: int) -> float:
        """ACK ratio of one tag (1.0 when it never transmitted)."""
        sent = self.per_tag_sent.get(tag_id, 0)
        if not sent:
            return 1.0
        return self.per_tag_correct.get(tag_id, 0) / sent


def score_frame(
    tag_id: int,
    sent_payload: Optional[bytes],
    detected: bool,
    decoded_payload: Optional[bytes],
    raw_bits: Optional[np.ndarray] = None,
    true_bits: Optional[np.ndarray] = None,
) -> RoundOutcome:
    """Score one tag's round against ground truth.

    *sent_payload* is ``None`` for silent tags.  Bit-level errors are
    counted when both raw decoded bits and the true post-preamble bits
    are available and equal length.
    """
    transmitted = sent_payload is not None
    decoded = decoded_payload is not None
    correct = bool(transmitted and decoded and decoded_payload == sent_payload)
    bit_errors = 0
    bits_compared = 0
    if raw_bits is not None and true_bits is not None and len(raw_bits) == len(true_bits):
        bit_errors = hamming_distance(raw_bits, true_bits)
        bits_compared = int(len(true_bits))
    return RoundOutcome(
        tag_id=tag_id,
        transmitted=transmitted,
        detected=detected,
        decoded=decoded,
        payload_correct=correct,
        bit_errors=bit_errors,
        bits_compared=bits_compared,
    )
