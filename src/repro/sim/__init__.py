"""Simulation engine: collisions, networks, metrics, experiments.

- :mod:`repro.sim.collision` -- sample-level multi-tag superposition.
- :mod:`repro.sim.network` -- the full CBMA network round loop.
- :mod:`repro.sim.metrics` -- FER/BER/PRR/throughput accounting.
- :mod:`repro.sim.experiments` -- canned drivers for every paper
  table and figure.
- :mod:`repro.sim.trace` -- channel-trace recording and replay.
- :mod:`repro.sim.traffic` -- arrival models for network-level studies.
- :mod:`repro.sim.sweep` -- parameter grids with optional parallelism.
- :mod:`repro.sim.unslotted` -- fully asynchronous (round-free) operation.
"""

from repro.sim.collision import CollisionScenario, RoundTruth, simulate_round
from repro.sim.metrics import MetricsAccumulator, RoundOutcome, score_frame
from repro.sim.network import CbmaConfig, CbmaNetwork, CALIBRATED_EXTRA_NOISE_DB
from repro.sim.sweep import PointError, grid, sweep
from repro.sim.trace import ChannelTrace, TraceRound, record_trace, replay_trace
from repro.sim.traffic import BurstyArrivals, PeriodicArrivals, PoissonArrivals
from repro.sim.unslotted import UnslottedResult, UnslottedScenario, simulate_unslotted

__all__ = [
    "CollisionScenario",
    "RoundTruth",
    "simulate_round",
    "MetricsAccumulator",
    "RoundOutcome",
    "score_frame",
    "CbmaConfig",
    "CbmaNetwork",
    "CALIBRATED_EXTRA_NOISE_DB",
    "ChannelTrace",
    "TraceRound",
    "record_trace",
    "replay_trace",
    "grid",
    "sweep",
    "PointError",
    "BurstyArrivals",
    "PeriodicArrivals",
    "PoissonArrivals",
    "UnslottedResult",
    "UnslottedScenario",
    "simulate_unslotted",
]
