"""The complete CBMA network simulator.

This is the library's centrepiece: a deployment of tags, the Friis +
fading channel, the sample-level collision simulator and the full
receiver, driven round by round.  It exposes exactly the control knobs
the paper's evaluation turns -- tag count, geometry, excitation power,
preamble length, bit rate, code family, interference condition -- plus
the two CBMA mechanisms (power control and node selection).

Typical use::

    config = CbmaConfig(n_tags=5, seed=7)
    net = CbmaNetwork(config, Deployment.random(5, rng=7))
    metrics = net.run_rounds(100)
    print(metrics.fer, metrics.goodput_bps)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel.fading import FadingModel
from repro.channel.geometry import Deployment
from repro.channel.interference import NoInterference, OfdmExcitationGate
from repro.channel.link import realize_channel
from repro.channel.noise import NoiseModel
from repro.channel.pathloss import LinkBudget
from repro.codes.registry import make_codes
from repro.faults.plan import FaultPlan, RoundFaults
from repro.mac.power_control import PowerController, PowerControlResult
from repro.obs.taxonomy import C, G, fault_loss
from repro.obs.tracer import as_tracer
from repro.phy.impedance import default_codebook
from repro.receiver.receiver import CbmaReceiver
from repro.sim.collision import CollisionScenario, simulate_round
from repro.sim.metrics import MetricsAccumulator, score_frame
from repro.tag.framing import FrameFormat
from repro.tag.oscillator import TagOscillator
from repro.tag.tag import Tag
from repro.utils.rng import make_rng

__all__ = ["CbmaConfig", "CbmaNetwork"]

#: Calibrated effective noise floor above thermal.  A working
#: backscatter receiver is not thermal-noise limited: the excitation
#: tone leaks into the shifted band (finite sideband suppression, phase
#: noise) and the office contributes ambient emissions.  This value
#: places the FER waterfall so that the paper's reference geometry
#: (ES-tag 0.5 m, tag-RX ~1 m, 20 dBm excitation, tags on their
#: default mid-ladder impedance state) sits just above the knee --
#: reproducing the Fig. 8(a) "flat below 2 m, rising beyond" shape and
#: Table II's single-digit-dB SNRs.
CALIBRATED_EXTRA_NOISE_DB = 44.0


@dataclass
class CbmaConfig:
    """All tunables of a CBMA simulation.

    The defaults correspond to the paper's prototype: 2 GHz carrier,
    20 dBm excitation, 1 Mcps chip rate, 1-byte alternating preamble,
    16-byte payloads, the 4-state impedance codebook and 2NC-64 codes.
    """

    n_tags: int = 2
    code_family: str = "2nc"
    code_length: int = 64
    preamble_bits: int = 8
    payload_bytes: int = 16
    samples_per_chip: int = 2
    chip_rate_hz: float = 1.0e6
    budget: LinkBudget = field(default_factory=LinkBudget)
    noise: NoiseModel = field(
        default_factory=lambda: NoiseModel(extra_noise_db=CALIBRATED_EXTRA_NOISE_DB)
    )
    fading: Optional[FadingModel] = field(default_factory=FadingModel)
    interference: object = field(default_factory=NoInterference)
    excitation_gate: Optional[OfdmExcitationGate] = None
    user_threshold: float = 0.12
    max_offset_chips: float = 8.0
    """Tags start transmitting within this window (asynchrony)."""
    jitter_chips_rms: float = 0.0
    drift_ppm_sigma: float = 0.0
    """Std-dev of per-tag oscillator frequency error.  Crystal clocks
    sit at ~20 ppm (harmless); RC oscillators at ~1% lose chip
    alignment within a frame -- see the clock ablation."""
    cfo_hz_sigma: float = 0.0
    """Std-dev of per-tag residual subcarrier offset (the same ppm
    error applied to the 20 MHz shift: 20 ppm -> 400 Hz).  Rotates the
    constellation across the frame; pair with
    :class:`~repro.receiver.phase_tracking.PhaseTrackingReceiver`."""
    seed: Optional[int] = None

    def frame_format(self) -> FrameFormat:
        return FrameFormat.with_preamble_bits(self.preamble_bits)

    def frame_bits(self) -> int:
        return self.frame_format().frame_bits(self.payload_bytes)

    def frame_duration_s(self) -> float:
        """Air time of one frame (chips / chip rate)."""
        return self.frame_bits() * self.code_length / self.chip_rate_hz

    def payload_bits(self) -> int:
        return 8 * self.payload_bytes


class CbmaNetwork:
    """A CBMA deployment under simulation.

    Parameters
    ----------
    config:
        Simulation tunables.
    deployment:
        Tag/ES/RX geometry.  Must contain at least ``config.n_tags``
        tag positions; the first ``n_tags`` start active, the rest are
        idle candidates for node selection.
    fixed_offsets_chips:
        Optional explicit per-tag start offsets (used by the
        asynchrony study, Fig. 11); default draws fresh random offsets
        every round.
    tracer:
        Optional :class:`repro.obs.Tracer`; shared with the receiver
        and the round loop.  When given, each round records spans
        (``round``, ``synthesize`` and the receiver stages), the
        truth-scored error counters and per-tag SNR gauges.
    receiver_cls:
        Receiver class to instantiate (default
        :class:`~repro.receiver.receiver.CbmaReceiver`); must offer the
        ``from_config`` classmethod.  Extra *receiver_kwargs* pass
        through (e.g. ``max_passes`` for SIC).
    faults:
        Optional :class:`~repro.faults.FaultPlan` injected into every
        round: tag dropout/brownout, oscillator drift, burst
        interference, ADC clipping, ACK loss and stuck impedance
        switches.  Injections are logged in :attr:`fault_log` and, when
        a tracer is attached, fault-caused losses are attributed as
        ``errors.fault.*`` counters in the error budget.
    round_offset:
        Starting value of the fault-plan round index -- lets
        :class:`~repro.system.CbmaSystem` keep one global fault
        timeline across its per-epoch networks.
    """

    def __init__(
        self,
        config: CbmaConfig,
        deployment: Deployment,
        fixed_offsets_chips: Optional[Sequence[float]] = None,
        tracer=None,
        receiver_cls: Optional[type] = None,
        receiver_kwargs: Optional[Dict] = None,
        faults: Optional[FaultPlan] = None,
        round_offset: int = 0,
    ):
        if len(deployment.tags) < config.n_tags:
            raise ValueError(
                f"deployment has {len(deployment.tags)} tag positions, "
                f"config wants {config.n_tags}"
            )
        self.config = config
        self.deployment = deployment
        self.rng = make_rng(config.seed)
        self.tracer = as_tracer(tracer)
        self.fmt = config.frame_format()
        self.codes = make_codes(config.code_family, config.n_tags, config.code_length)
        self.fixed_offsets_chips = (
            list(fixed_offsets_chips) if fixed_offsets_chips is not None else None
        )
        codebook = default_codebook()
        self.tags: List[Tag] = [
            Tag(i, self.codes[i], fmt=self.fmt, codebook=codebook) for i in range(config.n_tags)
        ]
        #: Deployment position index per tag (mutated by node selection).
        self.positions: List[int] = list(range(config.n_tags))
        self.faults = faults
        self._round_index = int(round_offset)
        #: Injection log: ``fault.*`` slug -> number of injections so
        #: far (kept even without a tracer, so fault runs are checkable
        #: on the untraced fast path).
        self.fault_log: Dict[str, int] = {}
        self.receiver = (receiver_cls or CbmaReceiver).from_config(
            config,
            codes={i: self.codes[i] for i in range(config.n_tags)},
            tracer=tracer,
            **(receiver_kwargs or {}),
        )

    # ------------------------------------------------------------------
    # Round machinery
    # ------------------------------------------------------------------

    def _draw_oscillators(self) -> None:
        """Assign this round's clock offsets to the tags."""
        cfg = self.config
        for i, tag in enumerate(self.tags):
            if self.fixed_offsets_chips is not None:
                offset = float(self.fixed_offsets_chips[i])
            else:
                offset = float(self.rng.uniform(0.0, cfg.max_offset_chips))
            drift = (
                float(self.rng.normal(0.0, cfg.drift_ppm_sigma))
                if cfg.drift_ppm_sigma > 0
                else 0.0
            )
            tag.oscillator = TagOscillator(
                offset_chips=offset,
                jitter_chips_rms=cfg.jitter_chips_rms,
                drift_ppm=drift,
            )

    def _base_amplitudes(self) -> np.ndarray:
        """Per-tag complex link amplitude at unit delta-Gamma."""
        cfg = self.config
        sub = Deployment(
            excitation=self.deployment.excitation,
            receiver=self.deployment.receiver,
            tags=[self.deployment.tags[p] for p in self.positions],
            room=self.deployment.room,
        )
        realization = realize_channel(
            sub,
            cfg.budget,
            delta_gammas=[1.0] * len(self.tags),
            fading=cfg.fading,
            rng=self.rng,
        )
        return realization.amplitudes()

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------

    def _log_fault(self, reason: str, n: int = 1) -> None:
        self.fault_log[reason] = self.fault_log.get(reason, 0) + n

    def next_round_faults(self) -> Optional[RoundFaults]:
        """Resolve the fault plan for the upcoming round and advance
        the round counter.

        Applies the persistent tag-state faults (stuck impedance)
        immediately; returns the resolved :class:`RoundFaults` for the
        per-round consumers, or ``None`` when nothing is active.
        Called once per simulated round by :meth:`run_round` and by the
        ARQ layer's round driver.
        """
        index = self._round_index
        self._round_index += 1
        if self.faults is None or self.faults.empty:
            return None
        rf = self.faults.resolve(index, self.config.n_tags)
        for i, tag in enumerate(self.tags):
            tag.stuck = i in rf.stuck
        if not rf.any_active:
            return None
        if rf.stuck:
            self._log_fault("fault.stuck_impedance", len(rf.stuck))
        if rf.silent:
            self._log_fault("fault.dropout", len(rf.silent))
        if rf.brownout:
            self._log_fault("fault.brownout", len(rf.brownout))
        if rf.drift_ppm:
            self._log_fault("fault.clock_drift", len(rf.drift_ppm))
        if rf.ack_lost:
            self._log_fault("fault.ack_loss", len(rf.ack_lost))
        return rf

    def apply_fault_drift(self, rf: Optional[RoundFaults]) -> None:
        """Add fault-injected oscillator drift on top of this round's
        clock draw (honors both the random and the override paths)."""
        if rf is None or not rf.drift_ppm:
            return
        for i, extra_ppm in rf.drift_ppm.items():
            osc = self.tags[i].oscillator
            self.tags[i].oscillator = TagOscillator(
                offset_chips=osc.offset_chips,
                jitter_chips_rms=osc.jitter_chips_rms,
                drift_ppm=osc.drift_ppm + extra_ppm,
            )

    def apply_channel_faults(self, iq: np.ndarray, rf: Optional[RoundFaults]) -> np.ndarray:
        """Burst interference + ADC saturation on a synthesized buffer."""
        if rf is None:
            return iq
        jam = rf.jammer_samples(iq.size, self.config.samples_per_chip * self.config.chip_rate_hz)
        if jam is not None:
            iq = iq + jam
            self._log_fault("fault.interference")
        if rf.clip_level is not None:
            iq = rf.clip(iq)
            self._log_fault("fault.adc_clip")
        return iq

    def run_round(
        self,
        active_ids: Optional[Sequence[int]] = None,
        metrics: Optional[MetricsAccumulator] = None,
        channel_override: Optional[tuple] = None,
    ) -> MetricsAccumulator:
        """Simulate one collision round and score it.

        *active_ids* selects which tags transmit (default: all).
        *channel_override*, when given, is ``(amplitudes, offsets_chips)``
        replacing the round's random channel/clock draw -- the hook
        that trace replay uses (:mod:`repro.sim.trace`).  The values
        actually used are exposed as ``self.last_round_channel``.
        Returns the (possibly shared) metrics accumulator.
        """
        cfg = self.config
        metrics = metrics if metrics is not None else MetricsAccumulator()
        active = set(int(i) for i in (active_ids if active_ids is not None else range(cfg.n_tags)))
        rf = self.next_round_faults()

        if channel_override is not None:
            amplitudes, offsets = channel_override
            if len(amplitudes) != cfg.n_tags or len(offsets) != cfg.n_tags:
                raise ValueError("channel override must cover every tag")
            for tag, offset in zip(self.tags, offsets):
                tag.oscillator = TagOscillator(
                    offset_chips=float(offset), jitter_chips_rms=cfg.jitter_chips_rms
                )
            amplitudes = np.asarray(amplitudes, dtype=np.complex128)
        else:
            self._draw_oscillators()
            amplitudes = self._base_amplitudes()
        self.apply_fault_drift(rf)
        self.last_round_channel = (
            np.array(amplitudes, copy=True),
            [t.oscillator.offset_chips for t in self.tags],
        )
        cfo = (
            [float(self.rng.normal(0.0, cfg.cfo_hz_sigma)) for _ in self.tags]
            if cfg.cfo_hz_sigma > 0
            else None
        )
        scenario = CollisionScenario(
            tags=self.tags,
            amplitudes=amplitudes,
            noise=cfg.noise,
            interference=cfg.interference,
            excitation_gate=cfg.excitation_gate,
            samples_per_chip=cfg.samples_per_chip,
            chip_rate_hz=cfg.chip_rate_hz,
            cfo_hz=cfo,
            tx_faults=rf.tx_faults() if rf is not None else None,
        )
        payloads = {
            i: bytes(self.rng.integers(0, 256, cfg.payload_bytes, dtype=np.uint8))
            for i in sorted(active)
        }
        tracer = self.tracer
        with tracer.span("round", tags=len(payloads)):
            tracer.count(C.ROUND_ROUNDS)
            iq, truth = simulate_round(scenario, payloads, self.rng, tracer=tracer)
            iq = self.apply_channel_faults(iq, rf)
            report = self.receiver.process(iq)

            if tracer.enabled:
                noise_w = max(cfg.noise.power_w, 1e-30)
                for tag_id, amp in truth.amplitudes.items():
                    snr = (abs(amp) ** 2) / noise_w
                    tracer.gauge(G.TAG_SNR_DB, 10.0 * np.log10(max(snr, 1e-30)))
            detected_ids = {d.user_id for d in report.detections}
            for i, tag in enumerate(self.tags):
                sent = payloads.get(i)
                frame = report.frame_for(i)
                decoded_payload = frame.payload if (frame is not None and frame.success) else None
                outcome = score_frame(
                    tag_id=i,
                    sent_payload=sent,
                    detected=i in detected_ids,
                    decoded_payload=decoded_payload,
                )
                metrics.record(outcome, payload_bits=cfg.payload_bits())
                if sent is not None:
                    # The tag's view of the ACK: a delivered frame whose
                    # ACK the fault plan eats looks unacknowledged to
                    # the tag (it will retransmit / mis-steer power
                    # control) even though the data arrived.
                    acked = outcome.payload_correct
                    if acked and rf is not None and i in rf.ack_lost:
                        acked = False
                        if tracer.enabled:
                            tracer.count(C.FAULTS_ACK_LOST)
                    tag.record_result(acked)
                    if tracer.enabled:
                        # Truth-scored error budget: which stage lost
                        # this frame (sync/detect miss, decode failure,
                        # or a CRC-passing wrong payload)?  An injected
                        # fault that explains the loss takes the blame
                        # instead, so operators can separate deployment
                        # failures from algorithmic ones.
                        tracer.count(C.ROUND_FRAMES_SENT)
                        fault_reason = rf.loss_reason(i) if rf is not None else None
                        if outcome.payload_correct:
                            tracer.count(C.ROUND_FRAMES_CORRECT)
                        elif fault_reason is not None:
                            tracer.count(fault_loss(fault_reason))
                        elif not outcome.detected:
                            tracer.count(C.ERRORS_NOT_DETECTED)
                        elif decoded_payload is None:
                            tracer.count(C.ERRORS_NOT_DECODED)
                        else:
                            tracer.count(C.ERRORS_WRONG_PAYLOAD)
            metrics.add_time(cfg.frame_duration_s())
        return metrics

    def run_rounds(self, n_rounds: int, active_ids: Optional[Sequence[int]] = None) -> MetricsAccumulator:
        """Simulate *n_rounds* independent rounds."""
        metrics = MetricsAccumulator()
        for _ in range(n_rounds):
            self.run_round(active_ids=active_ids, metrics=metrics)
        return metrics

    # ------------------------------------------------------------------
    # CBMA control loops
    # ------------------------------------------------------------------

    def epoch_runner(self, tags: Sequence[Tag], packets: int) -> Dict[int, int]:
        """Adapter giving :class:`PowerController` a transmission epoch."""
        metrics = self.run_rounds(packets)
        return {
            tag.tag_id: metrics.per_tag_correct.get(tag.tag_id, 0) for tag in tags
        }

    def run_power_control(self, controller: Optional[PowerController] = None) -> PowerControlResult:
        """Run Algorithm 1 over this network's tags."""
        controller = controller or PowerController()
        return controller.run(self.tags, self.epoch_runner)

    def move_tag(self, tag_index: int, deployment_position: int) -> None:
        """Re-home a tag to another deployment position (node selection)."""
        if not 0 <= deployment_position < len(self.deployment.tags):
            raise ValueError(f"position {deployment_position} outside deployment")
        self.positions[tag_index] = int(deployment_position)
