"""Channel-trace recording and replay.

The paper's emulation methodology (Sec. VIII-C): "even in our emulation
tests, we still utilize the real trace data delivered by the real field
deployment tests, and incorporate the real imperfectness, e.g., the
timing error".  This module provides the same facility for the
simulator: a :class:`ChannelTrace` captures, per round and per tag, the
complex link amplitude and the clock offset actually used; a trace can
be saved to JSON, loaded, inspected, and *replayed* through any
compatible :class:`~repro.sim.network.CbmaNetwork` -- so receiver or
MAC changes can be evaluated against the exact same channel process, or
traces measured on real hardware can drive the decode chain.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.sim.metrics import MetricsAccumulator
from repro.sim.network import CbmaNetwork

__all__ = ["TraceRound", "ChannelTrace", "record_trace", "replay_trace"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceRound:
    """One round's channel: per-tag complex amplitude and clock offset."""

    amplitudes: tuple
    offsets_chips: tuple

    @property
    def n_tags(self) -> int:
        return len(self.amplitudes)

    def powers(self) -> np.ndarray:
        """Per-tag received power of this round (|amplitude|^2)."""
        return np.abs(np.asarray(self.amplitudes)) ** 2


@dataclass
class ChannelTrace:
    """A sequence of recorded rounds plus identifying metadata."""

    n_tags: int
    rounds: List[TraceRound] = field(default_factory=list)
    description: str = ""

    def append(self, amplitudes: Sequence[complex], offsets_chips: Sequence[float]) -> None:
        """Record one round."""
        if len(amplitudes) != self.n_tags or len(offsets_chips) != self.n_tags:
            raise ValueError(
                f"round must cover all {self.n_tags} tags "
                f"(got {len(amplitudes)} amplitudes, {len(offsets_chips)} offsets)"
            )
        self.rounds.append(
            TraceRound(
                amplitudes=tuple(complex(a) for a in amplitudes),
                offsets_chips=tuple(float(o) for o in offsets_chips),
            )
        )

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self):
        return iter(self.rounds)

    # ------------------------------------------------------------------
    # Serialisation (JSON: portable, diff-able, hand-editable)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format_version": _FORMAT_VERSION,
            "n_tags": self.n_tags,
            "description": self.description,
            "rounds": [
                {
                    "amplitudes": [[a.real, a.imag] for a in r.amplitudes],
                    "offsets_chips": list(r.offsets_chips),
                }
                for r in self.rounds
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChannelTrace":
        version = data.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version!r}")
        trace = cls(n_tags=int(data["n_tags"]), description=data.get("description", ""))
        for r in data["rounds"]:
            amplitudes = [complex(re, im) for re, im in r["amplitudes"]]
            trace.append(amplitudes, r["offsets_chips"])
        return trace

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChannelTrace":
        """Read a trace written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def power_matrix(self) -> np.ndarray:
        """(rounds x tags) matrix of received powers."""
        return np.array([r.powers() for r in self.rounds])

    def mean_power_difference(self) -> float:
        """Mean per-round Table-II power difference across the trace."""
        if not self.rounds:
            return 0.0
        powers = self.power_matrix()
        p_max = powers.max(axis=1)
        p_min = powers.min(axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            diff = np.where(p_max > 0, (p_max - p_min) / p_max, 0.0)
        return float(diff.mean())


def record_trace(
    network: CbmaNetwork,
    n_rounds: int,
    active_ids: Optional[Sequence[int]] = None,
    description: str = "",
) -> tuple:
    """Run *n_rounds* on *network*, recording the channel of each round.

    Returns ``(trace, metrics)``: the captured :class:`ChannelTrace`
    and the run's metrics (so recording does not waste the rounds).
    """
    if n_rounds < 0:
        raise ValueError("n_rounds must be non-negative")
    trace = ChannelTrace(n_tags=network.config.n_tags, description=description)
    metrics = MetricsAccumulator()
    for _ in range(n_rounds):
        network.run_round(active_ids=active_ids, metrics=metrics)
        amplitudes, offsets = network.last_round_channel
        trace.append(amplitudes, offsets)
    return trace, metrics


def replay_trace(
    network: CbmaNetwork,
    trace: ChannelTrace,
    active_ids: Optional[Sequence[int]] = None,
) -> MetricsAccumulator:
    """Replay every round of *trace* through *network*.

    The network must have the same tag count as the trace; payloads and
    noise are still drawn from the network's RNG (the trace pins the
    *channel process*, not the data), so seed the network for full
    determinism.
    """
    if trace.n_tags != network.config.n_tags:
        raise ValueError(
            f"trace has {trace.n_tags} tags, network has {network.config.n_tags}"
        )
    metrics = MetricsAccumulator()
    for round_ in trace:
        network.run_round(
            active_ids=active_ids,
            metrics=metrics,
            channel_override=(round_.amplitudes, round_.offsets_chips),
        )
    return metrics
