"""Canned drivers for every table and figure in the paper's evaluation.

| Paper artefact | Driver |
|---|---|
| Table I   | :func:`table1_system_comparison` |
| Table II  | :func:`table2_power_difference` |
| Fig. 5    | :func:`fig5_signal_field` |
| Fig. 8(a) | :func:`fig8a_distance` |
| Fig. 8(b) | :func:`fig8b_power` |
| Fig. 8(c) | :func:`fig8c_preamble` |
| Fig. 9(a) | :func:`fig9a_bitrate` |
| Fig. 9(b) | :func:`fig9b_pn_codes` |
| Fig. 9(c) | :func:`fig9c_power_control` |
| Fig. 10   | :func:`fig10_deployment_cdfs` |
| Fig. 11   | :func:`fig11_asynchrony` |
| Fig. 12   | :func:`fig12_working_conditions` |
| Sec VII-B2| :func:`user_detection_accuracy` |
| Headline  | :func:`headline_throughput` |

Every driver accepts a ``rounds``-style fidelity knob so unit tests can
run them cheaply while benchmarks run them at paper scale.
"""

import time

from repro.channel.geometry import Point
from repro.channel.pathloss import LinkBudget, signal_strength_field
from repro.sim.experiments.codes_power import (
    fig9b_pn_codes,
    fig9c_power_control,
    table2_power_difference,
)
from repro.sim.experiments.common import (
    BENCH_ROOM,
    OFFICE_ROOM,
    ExperimentResult,
    bench_deployment,
    build_network,
)
from repro.sim.experiments.comparative import (
    PRIOR_SYSTEMS_TABLE1,
    headline_throughput,
    table1_system_comparison,
    user_detection_accuracy,
)
from repro.sim.experiments.macro import (
    fig10_deployment_cdfs,
    fig11_asynchrony,
    fig12_working_conditions,
)
from repro.sim.experiments.micro import (
    fig8a_distance,
    fig8b_power,
    fig8c_preamble,
    fig9a_bitrate,
)
from repro.sim.experiments.resilience import resilience_curve, run_faulted_network
from repro.sim.experiments.soak import (
    CampaignOutcome,
    InvariantViolation,
    SoakConfig,
    SoakResult,
    check_invariants,
    random_fault_plan,
    run_campaign,
    run_soak,
    shrink_fault_plan,
)

__all__ = [
    "resilience_curve",
    "run_faulted_network",
    "SoakConfig",
    "SoakResult",
    "CampaignOutcome",
    "InvariantViolation",
    "check_invariants",
    "random_fault_plan",
    "run_campaign",
    "run_soak",
    "shrink_fault_plan",
    "fig5_signal_field",
    "fig8a_distance",
    "fig8b_power",
    "fig8c_preamble",
    "fig9a_bitrate",
    "fig9b_pn_codes",
    "fig9c_power_control",
    "fig10_deployment_cdfs",
    "fig11_asynchrony",
    "fig12_working_conditions",
    "table1_system_comparison",
    "table2_power_difference",
    "user_detection_accuracy",
    "headline_throughput",
    "PRIOR_SYSTEMS_TABLE1",
    "ExperimentResult",
    "BENCH_ROOM",
    "OFFICE_ROOM",
    "bench_deployment",
    "build_network",
]


def fig5_signal_field(resolution: int = 41, d_meters: float = 0.5) -> ExperimentResult:
    """Theoretical backscatter signal strength field (paper Fig. 5).

    Evaluates Friis eq. (1) on a grid with the ES at ``(-D, 0)`` and
    the receiver at ``(+D, 0)``.  Returns an :class:`ExperimentResult`
    whose ``artifacts`` hold ``xs``, ``ys`` and ``field_dbm``.
    """
    t0 = time.perf_counter()
    budget = LinkBudget()
    xs, ys, field_dbm = signal_strength_field(
        budget,
        excitation=Point(-d_meters, 0.0),
        receiver=Point(d_meters, 0.0),
        resolution=resolution,
    )
    result = ExperimentResult(
        experiment_id="fig5",
        x_label="x (m)",
        x=list(xs),
        notes=f"ES at (-{d_meters}, 0), RX at (+{d_meters}, 0), {resolution}x{resolution} grid",
        params={"resolution": resolution, "d_meters": d_meters},
        artifacts={"xs": xs, "ys": ys, "field_dbm": field_dbm},
    )
    result.metrics = {
        "peak_dbm": float(field_dbm.max()),
        "min_dbm": float(field_dbm.min()),
    }
    return result.finish(t0)
