"""Micro-benchmarks: frame detection under swept parameters (Fig. 8, 9a).

Each driver reproduces one sweep of paper Sec. VII-B1:

- :func:`fig8a_distance` -- FER vs tag-to-RX distance, 2/3/4 tags.
- :func:`fig8b_power` -- FER vs excitation transmit power.
- :func:`fig8c_preamble` -- FER vs preamble length.
- :func:`fig9a_bitrate` -- FER vs tag bit (chip) rate, modelling the
  receiver's bounded sampling capacity.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.channel.geometry import Deployment
from repro.channel.noise import NoiseModel
from repro.channel.pathloss import LinkBudget
from repro.sim.experiments.common import ExperimentResult
from repro.sim.network import CALIBRATED_EXTRA_NOISE_DB, CbmaConfig, CbmaNetwork

__all__ = ["fig8a_distance", "fig8b_power", "fig8c_preamble", "fig9a_bitrate"]

#: The paper's fixed ES-to-tag distance in the micro benchmarks.
ES_TO_TAG_M = 0.5


def _micro_config(n_tags: int, seed: int, **overrides) -> CbmaConfig:
    """Base configuration of the micro benchmarks."""
    return CbmaConfig(n_tags=n_tags, seed=seed, **overrides)


def fig8a_distance(
    distances_m: Sequence[float] = tuple(d / 100.0 for d in range(10, 401, 10)),
    tag_counts: Sequence[int] = (2, 3, 4),
    rounds: int = 100,
    seed: int = 7,
) -> ExperimentResult:
    """FER vs tag-to-RX distance (paper Fig. 8(a)).

    ES-to-tag is fixed at 50 cm; the receiver moves from 10 cm to 4 m.
    Expected shape: FER roughly constant below ~2 m (level set by the
    number of tags), rising slowly beyond.
    """
    t0 = time.perf_counter()
    result = ExperimentResult(
        experiment_id="fig8a",
        x_label="tag-to-RX distance (m)",
        x=list(distances_m),
        notes=f"ES-to-tag fixed at {ES_TO_TAG_M} m; {rounds} packets per point",
        params={"tag_counts": list(tag_counts), "rounds": rounds, "es_to_tag_m": ES_TO_TAG_M},
        seed=seed,
    )
    for n in tag_counts:
        fers = []
        for d in distances_m:
            cfg = _micro_config(n, seed)
            net = CbmaNetwork(cfg, Deployment.linear(n, tag_to_rx=d, es_to_tag=ES_TO_TAG_M))
            fers.append(net.run_rounds(rounds).fer)
        result.series[f"{n} tags"] = fers
    return result.summarize_series().finish(t0)


def fig8b_power(
    tx_powers_dbm: Sequence[float] = (-5.0, 0.0, 5.0, 10.0, 15.0, 20.0),
    tag_counts: Sequence[int] = (2, 3, 4),
    tag_to_rx_m: float = 0.8,
    rounds: int = 100,
    seed: int = 7,
) -> ExperimentResult:
    """FER vs excitation-source transmit power (paper Fig. 8(b)).

    Expected shape: error falls as power rises; at -5 dBm the
    backscatter is buried in the noise floor and the error rate is
    near 1.
    """
    t0 = time.perf_counter()
    result = ExperimentResult(
        experiment_id="fig8b",
        x_label="ES transmit power (dBm)",
        x=list(tx_powers_dbm),
        notes=f"tag-to-RX {tag_to_rx_m} m; {rounds} packets per point",
        params={"tag_counts": list(tag_counts), "rounds": rounds, "tag_to_rx_m": tag_to_rx_m},
        seed=seed,
    )
    for n in tag_counts:
        fers = []
        for p in tx_powers_dbm:
            cfg = _micro_config(n, seed, budget=LinkBudget(tx_power_dbm=p))
            net = CbmaNetwork(cfg, Deployment.linear(n, tag_to_rx=tag_to_rx_m, es_to_tag=ES_TO_TAG_M))
            fers.append(net.run_rounds(rounds).fer)
        result.series[f"{n} tags"] = fers
    return result.summarize_series().finish(t0)


def fig8c_preamble(
    preamble_bits: Sequence[int] = (4, 8, 16, 32, 64),
    tag_counts: Sequence[int] = (2, 3, 4),
    tag_to_rx_m: float = 3.0,
    rounds: int = 100,
    seed: int = 7,
) -> ExperimentResult:
    """FER vs preamble length (paper Fig. 8(c)).

    Longer preambles sharpen both user detection and channel/timing
    estimation.  The sweep runs at a distance past the knee so the
    preamble's processing gain is visible; expected shape: FER falls
    monotonically with preamble length, below ~1% at 64 bits even with
    4 tags.
    """
    t0 = time.perf_counter()
    result = ExperimentResult(
        experiment_id="fig8c",
        x_label="preamble length (bits)",
        x=list(preamble_bits),
        notes=f"tag-to-RX {tag_to_rx_m} m; {rounds} packets per point",
        params={"tag_counts": list(tag_counts), "rounds": rounds, "tag_to_rx_m": tag_to_rx_m},
        seed=seed,
    )
    for n in tag_counts:
        fers = []
        for bits in preamble_bits:
            cfg = _micro_config(n, seed, preamble_bits=int(bits))
            net = CbmaNetwork(cfg, Deployment.linear(n, tag_to_rx=tag_to_rx_m, es_to_tag=ES_TO_TAG_M))
            fers.append(net.run_rounds(rounds).fer)
        result.series[f"{n} tags"] = fers
    return result.summarize_series().finish(t0)


def fig9a_bitrate(
    bitrates_hz: Sequence[float] = (250e3, 500e3, 1e6, 2.5e6, 5e6),
    tag_counts: Sequence[int] = (2, 3, 4),
    receiver_sample_rate_hz: float = 10e6,
    tag_to_rx_m: float = 1.0,
    rounds: int = 100,
    seed: int = 7,
) -> ExperimentResult:
    """FER vs tag bit (chip) rate (paper Fig. 9(a)).

    The paper's mechanism: "the sampling capacity of the receiver is
    limited ... dwell time at each signal state is short, which may
    lead to too few sampling points".  Both real penalties of a faster
    chip rate are modelled:

    - fewer samples per chip (``receiver_sample_rate / bitrate``,
      capped at 4), degrading timing resolution;
    - proportionally wider receive bandwidth, raising the noise power.

    Expected shape: FER grows with bit rate but the system remains
    usable at 5 Mbps.
    """
    t0 = time.perf_counter()
    result = ExperimentResult(
        experiment_id="fig9a",
        x_label="bit rate (bps)",
        x=list(bitrates_hz),
        notes=(
            f"receiver sampling {receiver_sample_rate_hz/1e6:.0f} MS/s, "
            f"tag-to-RX {tag_to_rx_m} m; {rounds} packets per point"
        ),
        params={
            "tag_counts": list(tag_counts),
            "rounds": rounds,
            "receiver_sample_rate_hz": receiver_sample_rate_hz,
            "tag_to_rx_m": tag_to_rx_m,
        },
        seed=seed,
    )
    for n in tag_counts:
        fers = []
        for rate in bitrates_hz:
            spc = int(max(1, min(4, receiver_sample_rate_hz // rate)))
            noise = NoiseModel(
                bandwidth_hz=rate, extra_noise_db=CALIBRATED_EXTRA_NOISE_DB
            )
            cfg = _micro_config(
                n, seed, chip_rate_hz=float(rate), samples_per_chip=spc, noise=noise
            )
            net = CbmaNetwork(cfg, Deployment.linear(n, tag_to_rx=tag_to_rx_m, es_to_tag=ES_TO_TAG_M))
            fers.append(net.run_rounds(rounds).fer)
        result.series[f"{n} tags"] = fers
    return result.summarize_series().finish(t0)
