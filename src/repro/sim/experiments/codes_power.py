"""Code-family and power-control decoding studies (Fig. 9b, 9c, Table II).

- :func:`table2_power_difference` -- two-tag collisions binned by
  relative power difference (paper Table II).
- :func:`fig9b_pn_codes` -- Gold vs 2NC error rate over 2..5 tags.
- :func:`fig9c_power_control` -- error rate with and without
  Algorithm 1 over random placements.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.mac.power_control import PowerController
from repro.phy.snr import relative_power_difference
from repro.sim.experiments.common import ExperimentResult, bench_deployment
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.utils.db import linear_to_db
from repro.utils.rng import make_rng

__all__ = ["table2_power_difference", "fig9b_pn_codes", "fig9c_power_control"]


def table2_power_difference(
    n_pairs: int = 10,
    rounds: int = 100,
    seed: int = 21,
) -> ExperimentResult:
    """Error rate vs two-tag power difference (paper Table II).

    Reproduces the Sec. IV benchmark: two tags at random bench
    positions, 1000 collided packets, reporting each tag's SNR, the
    relative power difference ``(P_max - P_min)/P_max`` and the error
    rate.  Expected shape: differences below ~10% give sub-1% error;
    differences above ~50% give errors in the tens of percent.

    The result's ``series`` holds aligned lists: ``snr1_db``,
    ``snr2_db``, ``difference`` and ``error_rate``; ``x`` indexes the
    pair.
    """
    t0 = time.perf_counter()
    rng = make_rng(seed)
    result = ExperimentResult(
        experiment_id="table2",
        x_label="pair",
        x=list(range(1, n_pairs + 1)),
        notes=f"{rounds} collided packets per pair; bench placements",
        params={"n_pairs": n_pairs, "rounds": rounds},
        seed=seed,
    )
    snr1: List[float] = []
    snr2: List[float] = []
    diffs: List[float] = []
    errors: List[float] = []
    for k in range(n_pairs):
        pair_seed = int(rng.integers(0, 2**31))
        cfg = CbmaConfig(n_tags=2, seed=pair_seed)
        dep = bench_deployment(2, rng=pair_seed)
        net = CbmaNetwork(cfg, dep)
        # Mean received power per tag (over the impedance default and
        # pure path loss): measured the way the paper measures SNR --
        # from the received signal against the noise floor.
        powers = []
        for i in range(2):
            d1, d2 = dep.tag_distances(i)
            amp = cfg.budget.received_amplitude(d1, d2, net.tags[i].delta_gamma)
            powers.append(amp**2)
        noise_w = cfg.noise.power_w
        snr1.append(linear_to_db(powers[0] / noise_w))
        snr2.append(linear_to_db(powers[1] / noise_w))
        diffs.append(relative_power_difference(powers))
        errors.append(net.run_rounds(rounds).fer)
    result.series = {
        "snr1_db": snr1,
        "snr2_db": snr2,
        "difference": diffs,
        "error_rate": errors,
    }
    return result.summarize_series().finish(t0)


def fig9b_pn_codes(
    tag_counts: Sequence[int] = (2, 3, 4, 5),
    families: Sequence[tuple] = (("gold", 31), ("2nc", 64)),
    rounds: int = 100,
    seed: int = 31,
    n_groups: int = 5,
) -> ExperimentResult:
    """Error rate for Gold vs 2NC codes (paper Fig. 9(b)).

    Each point averages *n_groups* random bench placements.  Expected
    shape: error grows with tag count for both families; 2NC stays
    below Gold, and Gold degrades sharply at 5 tags.
    """
    t0 = time.perf_counter()
    result = ExperimentResult(
        experiment_id="fig9b",
        x_label="number of tags",
        x=list(tag_counts),
        notes=f"{rounds} packets x {n_groups} placements per point",
        params={
            "families": [list(f) for f in families],
            "rounds": rounds,
            "n_groups": n_groups,
        },
        seed=seed,
    )
    for family, length in families:
        fers = []
        for n in tag_counts:
            rng = make_rng(seed + n)
            group_fers = []
            for _ in range(n_groups):
                s = int(rng.integers(0, 2**31))
                cfg = CbmaConfig(n_tags=n, code_family=family, code_length=length, seed=s)
                net = CbmaNetwork(cfg, bench_deployment(n, rng=s))
                group_fers.append(net.run_rounds(rounds).fer)
            fers.append(float(np.mean(group_fers)))
        result.series[f"{family}-{length}"] = fers
    return result.summarize_series().finish(t0)


def fig9c_power_control(
    tag_counts: Sequence[int] = (2, 3, 4, 5),
    n_groups: int = 50,
    rounds: int = 60,
    seed: int = 41,
    controller: Optional[PowerController] = None,
) -> ExperimentResult:
    """Error rate with vs without power control (paper Fig. 9(c)).

    For each tag count, *n_groups* random bench placements are
    evaluated twice from identical starting conditions: once with the
    tags left on their default impedance state, once after running
    Algorithm 1.  Expected shape: both curves grow with the tag count;
    the power-controlled curve stays several times lower.
    """
    t0 = time.perf_counter()
    result = ExperimentResult(
        experiment_id="fig9c",
        x_label="number of tags",
        x=list(tag_counts),
        notes=f"{n_groups} random placements, {rounds} packets each",
        params={"n_groups": n_groups, "rounds": rounds},
        seed=seed,
    )
    without: List[float] = []
    with_pc: List[float] = []
    for n in tag_counts:
        rng = make_rng(seed + n)
        fer_off = []
        fer_on = []
        for _ in range(n_groups):
            s = int(rng.integers(0, 2**31))
            dep = bench_deployment(n, rng=s)
            cfg = CbmaConfig(n_tags=n, seed=s)
            fer_off.append(CbmaNetwork(cfg, dep).run_rounds(rounds).fer)
            net = CbmaNetwork(cfg, dep)
            net.run_power_control(controller or PowerController(packets_per_epoch=10))
            fer_on.append(net.run_rounds(rounds).fer)
        without.append(float(np.mean(fer_off)))
        with_pc.append(float(np.mean(fer_on)))
    result.series["without power control"] = without
    result.series["with power control"] = with_pc
    return result.summarize_series().finish(t0)
