"""Macro-benchmarks: deployment CDFs, asynchrony, working conditions.

- :func:`fig10_deployment_cdfs` -- CDFs of error rate for no control /
  power control / power control + tag selection (paper Fig. 10).
- :func:`fig11_asynchrony` -- error rate vs inter-tag clock delay
  (paper Fig. 11).
- :func:`fig12_working_conditions` -- packet reception rate under
  clean / WiFi / Bluetooth / OFDM-excitation conditions (paper
  Fig. 12).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.channel.geometry import Deployment
from repro.channel.interference import (
    BluetoothInterference,
    NoInterference,
    OfdmExcitationGate,
    WiFiInterference,
)
from repro.mac.node_selection import NodeSelector
from repro.mac.power_control import PowerController
from repro.sim.experiments.common import BENCH_ROOM, ExperimentResult
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.utils.rng import make_rng

__all__ = ["fig10_deployment_cdfs", "fig11_asynchrony", "fig12_working_conditions"]


def _run_with_selection(
    cfg: CbmaConfig,
    deployment: Deployment,
    rounds: int,
    controller: PowerController,
    selection_rounds: int = 2,
    rng=None,
) -> float:
    """Power control + tag selection, then measure FER."""
    rng = make_rng(rng)
    net = CbmaNetwork(cfg, deployment)
    selector = NodeSelector(deployment=deployment, budget=cfg.budget)
    net.run_power_control(controller)
    for _ in range(selection_rounds):
        probe = net.run_rounds(max(rounds // 3, 10))
        ratios = [probe.per_tag_ack_ratio(t.tag_id) for t in net.tags]
        if all(r >= selector.ack_ratio_floor for r in ratios):
            break
        outcome = selector.select_round(net.positions, ratios, rng=rng)
        net.positions = list(outcome.group)
        net.run_power_control(controller)
    return net.run_rounds(rounds).fer


def fig10_deployment_cdfs(
    n_tags: int = 5,
    n_groups: int = 30,
    n_idle_positions: int = 7,
    rounds: int = 60,
    seed: int = 51,
    controller: Optional[PowerController] = None,
) -> ExperimentResult:
    """CDFs of error rate for three control strategies (paper Fig. 10).

    Each group draws ``n_tags + n_idle_positions`` random bench
    positions; the first *n_tags* start active and the rest are idle
    candidates for tag selection.  Expected shape: the CDF with
    selection + power control dominates power control alone, which
    dominates no control; with power control alone roughly 60% of
    deployments reach error < 5%.

    ``series`` maps each strategy to the list of per-deployment FERs
    (build a CDF with :func:`repro.analysis.stats.empirical_cdf`).
    """
    t0 = time.perf_counter()
    controller = controller or PowerController(packets_per_epoch=10)
    rng = make_rng(seed)
    none_fers: List[float] = []
    pc_fers: List[float] = []
    sel_fers: List[float] = []
    for _ in range(n_groups):
        s = int(rng.integers(0, 2**31))
        dep = Deployment.random(
            n_tags + n_idle_positions, rng=s, room=BENCH_ROOM, min_spacing=0.12
        )
        cfg = CbmaConfig(n_tags=n_tags, seed=s)

        none_fers.append(CbmaNetwork(cfg, dep).run_rounds(rounds).fer)

        net_pc = CbmaNetwork(cfg, dep)
        net_pc.run_power_control(controller)
        pc_fers.append(net_pc.run_rounds(rounds).fer)

        sel_fers.append(_run_with_selection(cfg, dep, rounds, controller, rng=s))

    result = ExperimentResult(
        experiment_id="fig10",
        x_label="deployment group",
        x=list(range(1, n_groups + 1)),
        notes=f"{n_tags} active tags, {n_idle_positions} idle positions, {rounds} packets",
        params={
            "n_tags": n_tags,
            "n_groups": n_groups,
            "n_idle_positions": n_idle_positions,
            "rounds": rounds,
        },
        seed=seed,
    )
    result.series["no control"] = none_fers
    result.series["power control"] = pc_fers
    result.series["power control + tag selection"] = sel_fers
    return result.summarize_series().finish(t0)


def fig11_asynchrony(
    delays_chips: Sequence[float] = tuple(np.arange(0.0, 4.01, 0.25)),
    rounds: int = 200,
    tag_to_rx_m: float = 3.3,
    code_length: int = 32,
    seed: int = 61,
) -> ExperimentResult:
    """Error rate vs tag-2 clock delay (paper Fig. 11).

    Two tags; tag 1 is the timing reference, tag 2's transmission is
    delayed by a controlled number of chips.  Amplitude fading is
    disabled so the sweep isolates asynchrony (matching the paper's
    controlled-clock setup), but each round draws a fresh carrier phase
    per tag -- any centimetre of path difference rotates the phase at
    2 GHz, so fixed equal phases would be unphysical worst-case
    coherent interference.  Expected shape: the error rate is lowest at
    zero delay (chip-aligned codes retain their designed
    cross-correlation) and jumps to a fluctuating plateau once any
    appreciable delay exists.

    The sweep runs with short (32-chip) codes at a distance past the
    knee: with the paper's own parameters our receiver's
    multi-hypothesis alignment makes 2-tag asynchrony almost free, so
    the harsher operating point is needed to expose the penalty the
    paper measures (its plateau is ~0.04).
    """
    from repro.channel.fading import FadingModel

    t0 = time.perf_counter()
    phase_only = FadingModel(k_factor=1e6, shadowing_sigma_db=0.0)
    result = ExperimentResult(
        experiment_id="fig11",
        x_label="tag-2 delay (chips)",
        x=list(delays_chips),
        notes=f"2 tags at {tag_to_rx_m} m, phase-only fading, {rounds} packets per point",
        params={"rounds": rounds, "tag_to_rx_m": tag_to_rx_m, "code_length": code_length},
        seed=seed,
    )
    fers = []
    for delay in delays_chips:
        cfg = CbmaConfig(
            n_tags=2, seed=seed, fading=phase_only, max_offset_chips=0.0,
            code_length=code_length,
        )
        net = CbmaNetwork(
            cfg,
            Deployment.linear(2, tag_to_rx=tag_to_rx_m),
            fixed_offsets_chips=[0.0, float(delay)],
        )
        fers.append(net.run_rounds(rounds).fer)
    result.series["error rate"] = fers
    return result.summarize_series().finish(t0)


def fig12_working_conditions(
    n_tags: int = 3,
    rounds: int = 150,
    seed: int = 71,
    wifi: Optional[WiFiInterference] = None,
    bluetooth: Optional[BluetoothInterference] = None,
    ofdm: Optional[OfdmExcitationGate] = None,
) -> ExperimentResult:
    """Packet reception rate under four working conditions (Fig. 12).

    Cases: (i) clean, (ii) coexisting WiFi (CSMA/CA bursts), (iii)
    coexisting Bluetooth (FHSS, rare hits), (iv) OFDM excitation
    (intermittent energy for the tags to reflect).  Expected shape:
    WiFi and Bluetooth cost only a little PRR; the OFDM excitation
    costs a lot.
    """
    t0 = time.perf_counter()
    wifi = wifi or WiFiInterference(power_dbm=-50.0)
    bluetooth = bluetooth or BluetoothInterference(power_dbm=-45.0)
    # OFDM excitation bursts modelled as WiFi data-burst trains: tens
    # of milliseconds on, ~10 ms quiet; frames overlapping a quiet gap
    # reflect nothing and are lost.
    ofdm = ofdm or OfdmExcitationGate(mean_on_s=25e-3, mean_off_s=10e-3)
    conditions = [
        ("no interference", {}),
        ("WiFi interference", {"interference": wifi}),
        ("Bluetooth interference", {"interference": bluetooth}),
        ("OFDM excitation", {"excitation_gate": ofdm}),
    ]
    # "The locations of tags are fixed": a controlled good placement,
    # so the comparison isolates the working condition.
    dep = Deployment.linear(n_tags, tag_to_rx=1.0)
    result = ExperimentResult(
        experiment_id="fig12",
        x_label="condition",
        x=[name for name, _ in conditions],
        notes=f"{n_tags} tags, fixed placement, {rounds} packets per condition",
        params={"n_tags": n_tags, "rounds": rounds},
        seed=seed,
    )
    prrs = []
    for _name, overrides in conditions:
        cfg = CbmaConfig(n_tags=n_tags, seed=seed, **overrides)
        net = CbmaNetwork(cfg, dep)
        prrs.append(net.run_rounds(rounds).prr)
    result.series["PRR"] = prrs
    return result.summarize_series().finish(t0)
