"""Shared fixtures for the paper-reproduction experiments.

All experiments share the paper's benchmark geometry (Sec. IV, Fig. 3):
the excitation source and receiver sit 2*D = 1 m apart and tags are
placed on the bench between/around them.  ``BENCH_ROOM`` bounds the
random placements to the tabletop scale visible in the paper's Fig. 3;
macro experiments that need the whole office use ``OFFICE_ROOM``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.channel.geometry import Deployment, Room
from repro.obs.result import ExperimentResult
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.utils.rng import make_rng

__all__ = [
    "BENCH_ROOM",
    "OFFICE_ROOM",
    "ExperimentResult",
    "bench_deployment",
    "build_network",
]

#: Tabletop placement region of the benchmark experiments (Fig. 3).
BENCH_ROOM = Room(width=1.6, depth=1.2)

#: The full office of Sec. VII-A.
OFFICE_ROOM = Room(width=6.0, depth=4.0)

#: Default spacing floor between randomly placed tags (> lambda/2 at
#: 2 GHz, avoiding the mutual-coupling regime unless a macro experiment
#: deliberately allows it).
DEFAULT_MIN_SPACING_M = 0.15


def bench_deployment(n_tags: int, rng=None, min_spacing: float = DEFAULT_MIN_SPACING_M) -> Deployment:
    """Random tabletop deployment in the paper's benchmark region."""
    return Deployment.random(n_tags, rng=make_rng(rng), room=BENCH_ROOM, min_spacing=min_spacing)


def build_network(
    config: CbmaConfig,
    deployment: Optional[Deployment] = None,
    fixed_offsets_chips: Optional[Sequence[float]] = None,
) -> CbmaNetwork:
    """Construct a network, defaulting to a random bench deployment."""
    if deployment is None:
        deployment = bench_deployment(config.n_tags, rng=config.seed)
    return CbmaNetwork(config, deployment, fixed_offsets_chips=fixed_offsets_chips)
