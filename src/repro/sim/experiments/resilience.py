"""Resilience experiment: delivery under injected deployment faults.

The paper evaluates CBMA on a healthy bench; a deployment review asks
the opposite question -- how gracefully does the stack degrade when
tags brown out, clocks drift, a jammer keys up, or the ADC saturates?
:func:`resilience_curve` sweeps a fault severity (tag dropout
probability, optionally with a mid-run burst jammer riding along) and
reports the delivery ratio next to the *fault-attributed* loss
fraction: because the simulator knows exactly which round-level fault
hit which tag, every lost frame is attributed to a named cause in the
run's error budget rather than lumped into generic decode failure.

:func:`run_faulted_network` is the single-point version the
``repro faults`` CLI demo drives directly.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.channel.geometry import Deployment
from repro.faults import BurstInterferer, FaultPlan, TagDropout
from repro.obs import Tracer
from repro.sim.experiments.common import ExperimentResult
from repro.sim.network import CbmaConfig, CbmaNetwork

__all__ = ["resilience_curve", "run_faulted_network"]


def run_faulted_network(
    plan: Optional[FaultPlan],
    n_tags: int = 4,
    rounds: int = 30,
    seed: int = 7,
    distance_m: float = 1.0,
):
    """Run one faulted network; returns ``(metrics, profile, fault_log)``.

    The degradation contract is exercised end to end: the run must
    complete without an uncaught exception regardless of the plan, and
    the returned :class:`~repro.obs.RunProfile`'s error budget carries
    one ``fault.*`` entry per attributed loss cause.
    """
    tracer = Tracer()
    net = CbmaNetwork(
        CbmaConfig(n_tags=n_tags, seed=seed),
        Deployment.linear(n_tags, tag_to_rx=distance_m),
        tracer=tracer,
        faults=plan,
    )
    t0 = time.perf_counter()
    metrics = net.run_rounds(rounds)
    profile = tracer.profile(wall_time_s=time.perf_counter() - t0)
    return metrics, profile, dict(net.fault_log)


def resilience_curve(
    fault_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
    n_tags: int = 4,
    rounds: int = 30,
    seed: int = 7,
    distance_m: float = 1.0,
    burst_power_dbm: Optional[float] = -60.0,
) -> ExperimentResult:
    """Delivery ratio and attributed loss vs tag dropout probability.

    Each point injects :class:`~repro.faults.TagDropout` at the given
    probability, plus (unless *burst_power_dbm* is ``None``) a
    :class:`~repro.faults.BurstInterferer` jamming the middle third of
    the run -- the composite stress the robustness acceptance test
    exercises.  Expected shape: delivery falls roughly linearly with
    the dropout rate (a silent tag cannot be decoded), with the
    fault-attributed loss fraction mirroring it, so the two series sum
    near 1.0 at every point.
    """
    t0 = time.perf_counter()
    result = ExperimentResult(
        experiment_id="resilience",
        x_label="tag dropout probability",
        x=list(fault_rates),
        notes=(
            f"{n_tags} tags x {rounds} rounds per point; "
            + (
                f"burst jammer at {burst_power_dbm} dBm over the middle third"
                if burst_power_dbm is not None
                else "no jammer"
            )
        ),
        params={
            "n_tags": n_tags,
            "rounds": rounds,
            "distance_m": distance_m,
            "burst_power_dbm": burst_power_dbm,
        },
        seed=seed,
    )
    delivery, fault_loss, other_loss = [], [], []
    for rate in fault_rates:
        models = []
        if rate > 0:
            models.append(TagDropout(probability=rate))
        if burst_power_dbm is not None:
            models.append(
                BurstInterferer(
                    start_round=rounds // 3,
                    end_round=max(2 * rounds // 3, rounds // 3 + 1),
                    power_dbm=burst_power_dbm,
                )
            )
        plan = FaultPlan(models, seed=seed) if models else None
        metrics, profile, _log = run_faulted_network(
            plan, n_tags=n_tags, rounds=rounds, seed=seed, distance_m=distance_m
        )
        budget = profile.error_budget
        attributed = sum(v for k, v in budget.items() if k.startswith("fault."))
        unattributed = sum(
            v
            for k, v in budget.items()
            if k != "delivered" and not k.startswith("fault.")
        )
        delivery.append(1.0 - metrics.fer)
        fault_loss.append(attributed)
        other_loss.append(unattributed)
    result.series["delivery ratio"] = delivery
    result.series["fault-attributed loss"] = fault_loss
    result.series["other loss"] = other_loss
    return result.summarize_series().finish(t0)
