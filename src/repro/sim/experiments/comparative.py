"""Comparative studies: user detection, Table I, the headline claim.

- :func:`user_detection_accuracy` -- Sec. VII-B2: random active subsets
  of a 10-tag pool; fraction of trials where the receiver identifies
  exactly the transmitting tags (paper: 99.9%).
- :func:`table1_system_comparison` -- our simulated CBMA next to the
  single-tag TDMA / FSA / FDMA baselines plus the paper's Table I
  figures for prior systems.
- :func:`headline_throughput` -- the 10-tag aggregate rate and the
  >10x comparison against the single-tag solution.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence


from repro.mac.baselines.fdma import Fdma
from repro.mac.baselines.fsa import FramedSlottedAloha
from repro.mac.baselines.single_tag import SingleTagTdma
from repro.channel.geometry import Deployment
from repro.sim.experiments.common import ExperimentResult, bench_deployment
from repro.sim.network import CbmaConfig, CbmaNetwork
from repro.utils.rng import make_rng

__all__ = [
    "user_detection_accuracy",
    "table1_system_comparison",
    "headline_throughput",
    "PRIOR_SYSTEMS_TABLE1",
]

#: The paper's Table I, verbatim, for side-by-side reporting.
PRIOR_SYSTEMS_TABLE1 = (
    ("Ambient Backscatter", "1 kbps", 2, "<= 1 m"),
    ("Wi-Fi Backscatter", "1 kbps", 1, "0.65 m"),
    ("BackFi", "5 Mbps", 1, "1 m"),
    ("FM Backscatter", "3.2 kbps", 1, "18 m"),
    ("LoRa Backscatter", "8.7 bps", "1-2", "475 m"),
    ("PLoRa", "6.25 kbps", 1, "1.1 km"),
    ("Netscatter", "500 kbps", 256, "2 m"),
)


def user_detection_accuracy(
    pool_size: int = 10,
    n_trials: int = 200,
    rounds_per_trial: int = 1,
    seed: int = 81,
    preamble_bits: int = 32,
) -> ExperimentResult:
    """User-detection accuracy over random active subsets (Sec. VII-B2).

    Each trial activates a random subset of the 10-tag pool; the
    receiver (which knows all 10 codes) must flag exactly the active
    tags.  Accuracy counts a trial as correct when every transmitting
    tag is detected and no silent tag is falsely decoded.  The paper
    reports 99.9%, using "the best parameters obtained in the above
    section" -- hence the long default preamble.
    """
    t0 = time.perf_counter()
    rng = make_rng(seed)
    dep = bench_deployment(pool_size, rng=seed)
    cfg = CbmaConfig(n_tags=pool_size, seed=seed, preamble_bits=preamble_bits)
    net = CbmaNetwork(cfg, dep)

    correct = 0
    detect_hits = 0
    detect_total = 0
    false_alarms = 0
    for _ in range(n_trials):
        k = int(rng.integers(1, pool_size + 1))
        active = sorted(rng.choice(pool_size, size=k, replace=False).tolist())
        for _ in range(rounds_per_trial):
            metrics = net.run_round(active_ids=active)
            # Detection bookkeeping from the metrics of this round:
            detect_total += k
            detect_hits += metrics.frames_detected
            false_alarms += metrics.false_decodes
            ok = metrics.frames_detected == k and metrics.false_decodes == 0
            correct += int(ok)

    total = n_trials * rounds_per_trial
    result = ExperimentResult(
        experiment_id="user-detection",
        x_label="metric",
        x=["trial accuracy", "per-tag detection rate", "false decodes"],
        notes=f"{pool_size}-tag pool, {total} trials, random subset sizes",
        params={
            "pool_size": pool_size,
            "n_trials": n_trials,
            "rounds_per_trial": rounds_per_trial,
            "preamble_bits": preamble_bits,
        },
        seed=seed,
    )
    result.series["value"] = [
        correct / total,
        detect_hits / max(detect_total, 1),
        float(false_alarms),
    ]
    result.metrics = {
        "trial_accuracy": correct / total,
        "detection_rate": detect_hits / max(detect_total, 1),
        "false_decodes": float(false_alarms),
    }
    return result.finish(t0)


def _solo_success_probability(cfg: CbmaConfig, deployment, rounds: int = 40) -> Dict[int, float]:
    """Per-tag solo (no collision) frame success probability."""
    net = CbmaNetwork(cfg, deployment)
    probs: Dict[int, float] = {}
    for i in range(cfg.n_tags):
        metrics = net.run_rounds(rounds, active_ids=[i])
        probs[i] = metrics.per_tag_ack_ratio(i)
    return probs


def headline_throughput(
    n_tags: int = 10,
    chip_rate_hz: float = 800e3,
    rounds: int = 100,
    seed: int = 91,
    samples_per_chip: int = 2,
    code_length: int = 128,
    preamble_bits: int = 16,
) -> ExperimentResult:
    """The headline comparison: 10 concurrent tags vs one tag at a time.

    Ten tags key OOK at 800 kchip/s each -- 8 Mbps of concurrent
    on-air symbols, the paper's "10-tag bit rate of 8 Mbps" -- from a
    controlled tabletop row (the demo layout).  CBMA decodes all ten
    concurrently; the ideal single-tag TDMA baseline gives each tag
    the whole channel one slot in N (genie scheduling); FSA is what
    distributed single-tag systems can actually run (collisions lost,
    slot efficiency <= 1/e); FDMA splits the band.  Expected shape:
    CBMA ~N x (1 - FER) over ideal TDMA, and >10x over FSA.

    Returns an :class:`ExperimentResult` whose ``metrics`` carry the
    goodputs and derived ratios (``cbma_bps``, ``single_tag_bps``,
    ``fsa_bps``, ``fdma_bps``, ``cbma_fer``, ``aggregate_raw_bps``,
    ``speedup_vs_single``, ``speedup_vs_fsa``).
    """
    t0 = time.perf_counter()
    cfg = CbmaConfig(
        n_tags=n_tags,
        chip_rate_hz=chip_rate_hz,
        samples_per_chip=samples_per_chip,
        code_length=code_length,
        preamble_bits=preamble_bits,
        seed=seed,
    )
    dep = Deployment.linear(n_tags, tag_to_rx=1.0, spacing=0.12)

    net = CbmaNetwork(cfg, dep)
    cbma_metrics = net.run_rounds(rounds)
    cbma_bps = cbma_metrics.goodput_bps

    frame_s = cfg.frame_duration_s()
    payload_bits = cfg.payload_bits()
    solo = _solo_success_probability(cfg, dep, rounds=max(rounds // 3, 20))
    rng = make_rng(seed)

    tdma = SingleTagTdma(list(range(n_tags)), lambda tid: solo[tid]).run(rounds * n_tags, rng)
    single_bps = tdma.goodput_bps(payload_bits, frame_s)

    fsa = FramedSlottedAloha(list(range(n_tags)), lambda tid: solo[tid]).run(rounds, rng)
    fsa_bps = fsa.goodput_bps(payload_bits, frame_s)

    fdma = Fdma(list(range(n_tags)), n_channels=min(n_tags, 4), success_probability=lambda tid: solo[tid]).run(
        rounds, rng
    )
    fdma_bps = fdma.goodput_bps(payload_bits, frame_s, n_channels=min(n_tags, 4))

    result = ExperimentResult(
        experiment_id="headline-throughput",
        x_label="system",
        x=["CBMA", "single-tag TDMA", "FSA", "FDMA"],
        notes=f"{n_tags} tags at {chip_rate_hz/1e3:.0f} kchip/s, {rounds} rounds",
        params={
            "n_tags": n_tags,
            "chip_rate_hz": chip_rate_hz,
            "rounds": rounds,
            "samples_per_chip": samples_per_chip,
            "code_length": code_length,
            "preamble_bits": preamble_bits,
        },
        seed=seed,
    )
    result.series["goodput (bps)"] = [cbma_bps, single_bps, fsa_bps, fdma_bps]
    result.metrics = {
        "cbma_bps": cbma_bps,
        "single_tag_bps": single_bps,
        "fsa_bps": fsa_bps,
        "fdma_bps": fdma_bps,
        "n_tags": n_tags,
        "chip_rate_hz": chip_rate_hz,
        "cbma_fer": cbma_metrics.fer,
        "aggregate_raw_bps": n_tags * chip_rate_hz,
        "speedup_vs_single": cbma_bps / single_bps if single_bps else float("inf"),
        "speedup_vs_fsa": cbma_bps / fsa_bps if fsa_bps else float("inf"),
    }
    return result.finish(t0)


def table1_system_comparison(
    tag_counts: Sequence[int] = (1, 2, 5, 10),
    chip_rate_hz: float = 8.0e6,
    rounds: int = 60,
    seed: int = 95,
) -> ExperimentResult:
    """Our CBMA operating points next to the paper's Table I systems.

    For each tag count the simulated aggregate goodput is reported;
    prior systems' published numbers ride along in ``notes`` for the
    side-by-side table the benchmark prints.
    """
    t0 = time.perf_counter()
    result = ExperimentResult(
        experiment_id="table1",
        x_label="number of tags",
        x=list(tag_counts),
        notes="prior systems: " + "; ".join(f"{n}: {r}, {t} tags, {d}" for n, r, t, d in PRIOR_SYSTEMS_TABLE1),
        params={"tag_counts": list(tag_counts), "chip_rate_hz": chip_rate_hz, "rounds": rounds},
        seed=seed,
    )
    goodputs = []
    fers = []
    for n in tag_counts:
        cfg = CbmaConfig(n_tags=n, chip_rate_hz=chip_rate_hz, seed=seed)
        net = CbmaNetwork(cfg, bench_deployment(n, rng=seed + n))
        metrics = net.run_rounds(rounds)
        goodputs.append(metrics.goodput_bps)
        fers.append(metrics.fer)
    result.series["aggregate goodput (bps)"] = goodputs
    result.series["FER"] = fers
    return result.summarize_series().finish(t0)
