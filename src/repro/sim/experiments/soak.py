"""Chaos-soak harness: supervised sessions under randomized faults.

Unit tests prove single behaviours; a *soak* asks the opposite
question -- does anything break when a supervised streaming session
(:class:`~repro.receiver.session.SessionSupervisor`) digests thousands
of windows of traffic while a randomized-but-seeded
:class:`~repro.faults.FaultPlan` drops tags out, browns them out
mid-frame, drifts their oscillators off the chip grid, keys up a
jammer and saturates the ADC?

The harness is built around **machine-verifiable invariants**
(:func:`check_invariants`), not expectations about throughput:

- no two emitted :class:`~repro.receiver.streaming.StreamFrame`\\ s are
  duplicates (same user and payload within the dedup tolerance);
- ``start_sample`` is non-decreasing in emission order;
- the dedup table's high-water mark stays within its bound (memory is
  provably flat, however long the stream);
- the ingest backlog never exceeds the configured maximum;
- every window is accounted for: processed + shed equals the number of
  window positions walked, and live + skipped equals processed.

When a campaign violates an invariant, :func:`shrink_fault_plan`
reduces the fault schedule ddmin-style -- dropping whole faults, then
narrowing round windows -- to a *minimal* plan that still reproduces
the violation.  Because plans resolve as a pure function of their
seed, the shrunken plan replays the failure deterministically on any
machine; ``repro soak`` writes it as a JSON artifact.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.codes import twonc_codes
from repro.faults.models import (
    AdcSaturation,
    BurstInterferer,
    OscillatorDrift,
    TagBrownout,
    TagDropout,
)
from repro.faults.plan import FaultPlan
from repro.phy.modulation import fractional_delay, ook_baseband
from repro.receiver.receiver import CbmaReceiver
from repro.receiver.session import SessionConfig, SessionSupervisor
from repro.receiver.streaming import StreamFrame, StreamingReceiver
from repro.tag import FrameFormat, Tag

__all__ = [
    "SoakConfig",
    "SoakResult",
    "SoakTransmission",
    "InvariantViolation",
    "CampaignOutcome",
    "build_soak_stack",
    "build_soak_stream",
    "check_invariants",
    "run_soak",
    "random_fault_plan",
    "shrink_fault_plan",
    "run_campaign",
]


@dataclass(frozen=True)
class SoakConfig:
    """Shape of one soak stream.

    One "window" here is one hop of the streaming walk (one maximum
    frame airtime); traffic, faults and the session walk all share
    that unit, exactly as :mod:`repro.sim.unslotted` maps fault-plan
    rounds onto frame airtimes.
    """

    n_windows: int = 2000
    n_tags: int = 2
    seed: int = 7
    payload_bytes: int = 4
    code_length: int = 32
    samples_per_chip: int = 1
    user_threshold: float = 0.25
    """Detector acceptance threshold.  Raised above the 0.12 default
    because the soak's short spread-preamble template (8 bits x 32
    chips) false-alarms on pure noise near 0.18 normalised correlation;
    at high SNR real frames score ~0.5+, so 0.25 keeps dark windows
    dark without costing detections."""
    traffic_rate: float = 0.05
    """Per-tag probability of starting one frame in each window."""
    amplitude: float = 1.0
    noise_sigma: float = 1e-6
    chunk_hops: int = 3
    """Feed cadence: samples per :meth:`SessionSupervisor.feed` call,
    in hop units (deliberately not a divisor-friendly number, so chunk
    boundaries and window boundaries interleave)."""
    dedup_bound_factor: int = 2
    """Invariant: dedup high-water mark must stay within
    ``dedup_bound_factor * n_tags`` entries."""

    def __post_init__(self) -> None:
        if self.n_windows < 1 or self.n_tags < 1:
            raise ValueError("n_windows and n_tags must be >= 1")
        if not 0.0 <= self.traffic_rate <= 1.0:
            raise ValueError("traffic_rate must be in [0, 1]")
        if self.chunk_hops < 1:
            raise ValueError("chunk_hops must be >= 1")


@dataclass(frozen=True)
class SoakTransmission:
    """One offered frame of soak traffic (pre-fault ground truth)."""

    window: int
    tag: int
    start: float
    payload: bytes
    fault: Optional[str] = None
    """Loss-attribution slug of the tx-side fault that hit it, if any."""


@dataclass(frozen=True)
class InvariantViolation:
    """One broken soak invariant, with enough detail to debug it."""

    name: str
    detail: str


@dataclass
class SoakResult:
    """Outcome of one :func:`run_soak` run."""

    config: SoakConfig
    frames: List[StreamFrame]
    offered: int
    delivered: int
    stats: Dict[str, int]
    final_state: str
    health_history: List[Tuple[int, str]]
    peak_dedup: int
    peak_backlog: int
    violations: List[InvariantViolation] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


def build_soak_stack(cfg: SoakConfig) -> Tuple[List[Tag], StreamingReceiver]:
    """The tags and streaming receiver a soak stream decodes with."""
    codes = twonc_codes(cfg.n_tags, cfg.code_length)
    fmt = FrameFormat()
    tags = [Tag(i, codes[i], fmt=fmt) for i in range(cfg.n_tags)]
    rx = CbmaReceiver(
        {i: codes[i] for i in range(cfg.n_tags)},
        fmt=fmt,
        samples_per_chip=cfg.samples_per_chip,
        user_threshold=cfg.user_threshold,
    )
    stream = StreamingReceiver(rx, max_frame_bits=fmt.frame_bits(cfg.payload_bytes))
    return tags, stream


def _stretch(signal: np.ndarray, ppm: float) -> np.ndarray:
    """Resample *signal* as a clock running *ppm* fast would emit it.

    Unlike a plain start-offset, a time-stretch accumulates across the
    frame: the preamble stays near-aligned (the user detector still
    fires) while payload chips walk off the grid -- the exact
    live-but-undecodable signature that drives the session's RESYNC
    path.
    """
    if not ppm:
        return signal
    factor = 1.0 + ppm * 1e-6
    base = np.arange(signal.size, dtype=np.float64)
    t = base * factor
    return np.interp(t, base, signal.real, left=0.0, right=0.0) + 1j * np.interp(
        t, base, signal.imag, left=0.0, right=0.0
    )


def build_soak_stream(
    cfg: SoakConfig,
    plan: Optional[FaultPlan] = None,
    stream: Optional[StreamingReceiver] = None,
    tags: Optional[List[Tag]] = None,
) -> Tuple[np.ndarray, List[SoakTransmission]]:
    """Synthesize the soak capture: traffic plus injected faults.

    Deterministic for a given ``(cfg, plan)``: traffic draws come from
    one seeded generator walked in a fixed (window, tag) order and are
    made *before* faults are consulted, so two plans over the same
    config stress the identical underlying traffic.  Fault semantics
    follow :mod:`repro.sim.unslotted`: dropout silences a frame,
    brownout truncates it, drift time-stretches it, and the
    jammer/ADC-clip faults hit the shared buffer one window at a time.
    """
    if stream is None or tags is None:
        tags, stream = build_soak_stack(cfg)
    hop = stream.hop_samples
    n_samples = (cfg.n_windows + 2) * hop
    rng = np.random.default_rng(np.random.SeedSequence(entropy=(cfg.seed, 1)))
    buffer = cfg.noise_sigma * (
        rng.normal(size=n_samples) + 1j * rng.normal(size=n_samples)
    )
    plan = plan if (plan is not None and not plan.empty) else None

    offered: List[SoakTransmission] = []
    for r in range(cfg.n_windows):
        rf = plan.resolve(r, cfg.n_tags) if plan is not None else None
        for i, tag in enumerate(tags):
            if rng.random() >= cfg.traffic_rate:
                continue
            start = r * hop + rng.uniform(0.0, hop - 1)
            payload = bytes(rng.integers(0, 256, cfg.payload_bytes, dtype=np.uint8))
            phase = np.exp(1j * rng.uniform(0.0, 2.0 * np.pi))
            fault = None
            keep = None
            ppm = 0.0
            if rf is not None:
                if i in rf.silent:
                    fault = "fault.dropout"
                else:
                    keep = rf.brownout.get(i)
                    if keep is not None:
                        fault = "fault.brownout"
                    ppm = rf.drift_ppm.get(i, 0.0)
                    if ppm and fault is None:
                        fault = "fault.clock_drift"
            offered.append(SoakTransmission(r, i, start, payload, fault))
            if fault == "fault.dropout":
                continue
            signal = ook_baseband(
                tag.chip_stream(payload, cfg.samples_per_chip),
                amplitude=cfg.amplitude * phase,
            )
            if keep is not None:
                signal = signal.copy()
                signal[int(round(keep * signal.size)) :] = 0.0
            if ppm:
                signal = _stretch(signal, ppm)
            buffer += fractional_delay(signal, start, total_length=n_samples)

    if plan is not None:
        for r in range(cfg.n_windows):
            rf = plan.resolve(r, cfg.n_tags)
            lo, hi = r * hop, (r + 1) * hop
            jam = rf.jammer_samples(hi - lo, 1.0)
            if jam is not None:
                buffer[lo:hi] += jam
            if rf.clip_level is not None:
                buffer[lo:hi] = rf.clip(buffer[lo:hi])
    return buffer, offered


def check_invariants(
    cfg: SoakConfig,
    stream: StreamingReceiver,
    session: SessionSupervisor,
    frames: List[StreamFrame],
) -> List[InvariantViolation]:
    """Every machine-verifiable invariant of a finished session.

    Module-level (rather than a method) so chaos tests can substitute
    a stricter or deliberately-tripping checker.
    """
    out: List[InvariantViolation] = []
    tolerance = stream.frame_samples // 2

    last_by_key: Dict[Tuple[int, bytes], int] = {}
    prev_start = None
    for k, f in enumerate(frames):
        key = (f.user_id, f.payload)
        prev = last_by_key.get(key)
        if prev is not None and abs(f.start_sample - prev) < tolerance:
            out.append(
                InvariantViolation(
                    "duplicate_frame",
                    f"frame #{k} user {f.user_id} payload {f.payload.hex()} at "
                    f"{f.start_sample} duplicates one at {prev}",
                )
            )
        last_by_key[key] = f.start_sample
        if prev_start is not None and f.start_sample < prev_start:
            out.append(
                InvariantViolation(
                    "order",
                    f"frame #{k} start {f.start_sample} emitted after start {prev_start}",
                )
            )
        prev_start = f.start_sample

    bound = cfg.dedup_bound_factor * cfg.n_tags
    if session.dedup.peak_size > bound:
        out.append(
            InvariantViolation(
                "dedup_bound",
                f"dedup high-water mark {session.dedup.peak_size} exceeds bound {bound}",
            )
        )
    if session.peak_backlog_windows > session.config.max_backlog_windows:
        out.append(
            InvariantViolation(
                "backlog_bound",
                f"peak backlog {session.peak_backlog_windows} exceeds "
                f"max {session.config.max_backlog_windows}",
            )
        )

    s = session.stats
    walked = s["windows"] + s["windows_shed"]
    if walked * stream.hop_samples != session.position:
        out.append(
            InvariantViolation(
                "window_accounting",
                f"processed {s['windows']} + shed {s['windows_shed']} windows "
                f"!= position {session.position} / hop {stream.hop_samples}",
            )
        )
    if s["windows_live"] + s["windows_skipped"] != s["windows"]:
        out.append(
            InvariantViolation(
                "window_accounting",
                f"live {s['windows_live']} + skipped {s['windows_skipped']} "
                f"!= processed {s['windows']}",
            )
        )
    if len(frames) + session.pending_frames != s["frames"]:
        out.append(
            InvariantViolation(
                "frame_accounting",
                f"emitted {len(frames)} + pending {session.pending_frames} "
                f"!= decoded {s['frames']}",
            )
        )
    return out


def run_soak(
    cfg: SoakConfig,
    plan: Optional[FaultPlan] = None,
    session_config: Optional[SessionConfig] = None,
    tracer=None,
) -> SoakResult:
    """One full soak: synthesize, feed chunk by chunk, verify.

    Deterministic for a given ``(cfg, plan, session_config)``; the
    wall-clock field is the only thing that varies between runs.
    """
    t0 = time.perf_counter()
    tags, stream = build_soak_stack(cfg)
    buffer, offered = build_soak_stream(cfg, plan, stream=stream, tags=tags)
    session = SessionSupervisor(stream, config=session_config, tracer=tracer)
    chunk = cfg.chunk_hops * stream.hop_samples
    frames: List[StreamFrame] = []
    for lo in range(0, buffer.size, chunk):
        frames.extend(session.feed(buffer[lo : lo + chunk]))
    frames.extend(session.finish())

    outstanding: Dict[Tuple[int, bytes], int] = {}
    for tx in offered:
        if tx.fault != "fault.dropout":
            key = (tx.tag, tx.payload)
            outstanding[key] = outstanding.get(key, 0) + 1
    delivered = 0
    for f in frames:
        key = (f.user_id, f.payload)
        if outstanding.get(key, 0) > 0:
            outstanding[key] -= 1
            delivered += 1

    violations = check_invariants(cfg, stream, session, frames)
    return SoakResult(
        config=cfg,
        frames=frames,
        offered=len(offered),
        delivered=delivered,
        stats=dict(session.stats),
        final_state=session.state.value,
        health_history=list(session.health_history),
        peak_dedup=session.dedup.peak_size,
        peak_backlog=session.peak_backlog_windows,
        violations=violations,
        wall_time_s=time.perf_counter() - t0,
    )


# ----------------------------------------------------------------------
# Randomized campaigns and plan shrinking
# ----------------------------------------------------------------------

def random_fault_plan(seed: int, n_windows: int, n_tags: int) -> FaultPlan:
    """A randomized (but fully seed-determined) chaos fault schedule.

    Draws 1-4 fault models from the catalog, each over a random round
    window with moderate severity -- rough enough to exercise every
    degradation path, bounded enough that a healthy session should
    survive it.
    """
    rng = np.random.default_rng(np.random.SeedSequence(entropy=(int(seed), 2)))

    catalog: List[Callable[[int, int], object]] = [
        lambda lo, hi: TagDropout(
            probability=float(rng.uniform(0.2, 0.8)), start_round=lo, end_round=hi
        ),
        lambda lo, hi: TagBrownout(
            probability=float(rng.uniform(0.2, 0.6)), start_round=lo, end_round=hi
        ),
        # 2k-6k ppm is the nasty regime for this geometry: small
        # enough that the spread preamble still correlates (the tag is
        # detected), large enough that payload chips walk off the grid
        # (the decode fails) -- the exact signature the session's
        # RESYNC path exists for.  Far larger drifts just make the tag
        # invisible, which dropout already covers.
        lambda lo, hi: OscillatorDrift(
            probability=float(rng.uniform(0.3, 0.8)),
            drift_ppm=float(rng.uniform(2_000.0, 6_000.0)),
            start_round=lo,
            end_round=hi,
        ),
        lambda lo, hi: BurstInterferer(
            duty=float(rng.uniform(0.2, 0.7)),
            power_dbm=float(rng.uniform(20.0, 35.0)),
            start_round=lo,
            end_round=hi,
        ),
        lambda lo, hi: AdcSaturation(
            full_scale=float(rng.uniform(0.3, 0.9)), start_round=lo, end_round=hi
        ),
    ]
    n_faults = int(rng.integers(1, 5))
    picks = rng.choice(len(catalog), size=n_faults, replace=True)
    faults = []
    for p in picks:
        lo = int(rng.integers(0, max(n_windows - 2, 1)))
        length = int(rng.integers(2, max(n_windows // 4, 3)))
        hi = max(min(lo + length, n_windows), lo + 1)
        faults.append(catalog[int(p)](lo, hi))
    return FaultPlan(faults, seed=int(seed))


def shrink_fault_plan(
    plan: FaultPlan,
    reproduces: Callable[[FaultPlan], bool],
    horizon: Optional[int] = None,
) -> FaultPlan:
    """Reduce *plan* to a minimal schedule still satisfying *reproduces*.

    ddmin in spirit, specialised to fault plans: first greedily remove
    whole faults to a fixpoint (no single fault can be dropped), then
    bisect each survivor's round window as long as a half still
    reproduces.  *reproduces* must be deterministic (plans resolve
    purely from their seed, so a soak-backed predicate is); *horizon*
    bounds open-ended windows during narrowing.

    Works on any plan class with the :class:`FaultPlan` shape --
    ``plan.faults``, ``plan.seed``, ``cls(faults, seed=...)`` and
    dataclass fault models carrying ``start_round``/``end_round`` --
    which is how gateway-level plans
    (:class:`repro.gateway.soak.GatewayFaultPlan`) shrink through the
    same machinery.

    Raises ``ValueError`` when the input plan does not reproduce --
    shrinking a non-failure would "converge" on the empty plan.
    """
    if not reproduces(plan):
        raise ValueError("plan does not reproduce the violation; nothing to shrink")

    cls = type(plan)
    current = plan
    changed = True
    while changed and len(current.faults) > 1:
        changed = False
        for i in range(len(current.faults)):
            candidate = cls(
                current.faults[:i] + current.faults[i + 1 :], seed=current.seed
            )
            if reproduces(candidate):
                current = candidate
                changed = True
                break

    faults = list(current.faults)
    for i, f in enumerate(faults):
        lo = f.start_round
        hi = f.end_round if f.end_round is not None else horizon
        if hi is None:
            continue
        while hi - lo > 1:
            mid = (lo + hi) // 2
            narrowed = None
            for new_lo, new_hi in ((lo, mid), (mid, hi)):
                trial = list(faults)
                trial[i] = dataclasses.replace(
                    f, start_round=new_lo, end_round=new_hi
                )
                if reproduces(cls(trial, seed=current.seed)):
                    narrowed = (new_lo, new_hi)
                    break
            if narrowed is None:
                break
            lo, hi = narrowed
            f = dataclasses.replace(f, start_round=lo, end_round=hi)
            faults[i] = f
        faults[i] = f
    return cls(faults, seed=current.seed)


@dataclass
class CampaignOutcome:
    """One campaign of :func:`run_campaign`."""

    campaign: int
    plan: FaultPlan
    result: SoakResult
    shrunken: Optional[FaultPlan] = None
    """Minimal reproducing plan, present only when invariants broke."""


def run_campaign(
    cfg: SoakConfig,
    n_campaigns: int = 3,
    session_config: Optional[SessionConfig] = None,
    shrink: bool = True,
    tracer=None,
) -> List[CampaignOutcome]:
    """Run *n_campaigns* randomized fault campaigns over one config.

    Campaign ``k`` uses the fault plan seeded ``cfg.seed + k`` over the
    same (seed-fixed) traffic, so a red campaign is re-runnable in
    isolation.  When a campaign violates an invariant and *shrink* is
    set, the outcome carries the minimal reproducing plan.
    """
    outcomes: List[CampaignOutcome] = []
    for k in range(n_campaigns):
        plan = random_fault_plan(cfg.seed + k, cfg.n_windows, cfg.n_tags)
        result = run_soak(cfg, plan, session_config=session_config, tracer=tracer)
        outcome = CampaignOutcome(campaign=k, plan=plan, result=result)
        if result.violations and shrink:

            def reproduces(candidate: FaultPlan) -> bool:
                return bool(
                    run_soak(cfg, candidate, session_config=session_config).violations
                )

            outcome.shrunken = shrink_fault_plan(
                plan, reproduces, horizon=cfg.n_windows
            )
        outcomes.append(outcome)
    return outcomes
